// Vendored offline stub: keep clippy quiet, this is stand-in third-party code.
#![allow(clippy::all)]
//! No-op `Serialize` / `Deserialize` derive macros for the offline `serde`
//! facade (see that crate's docs for the rationale). The facade's traits
//! have blanket implementations, so the derives have nothing to emit; they
//! exist only so `#[derive(Serialize, Deserialize)]` attributes compile
//! unchanged.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
