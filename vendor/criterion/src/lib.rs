// Vendored offline stub: keep clippy quiet, this is stand-in third-party code.
#![allow(clippy::all)]
//! Offline mini benchmark harness exposing the subset of the `criterion`
//! API the calibre workspace's benches use.
//!
//! Hermetic build environments cannot fetch the real `criterion`, so this
//! crate provides [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is deliberately simple — warm up,
//! run timed samples, report mean / min / max per iteration — with none of
//! upstream's statistical machinery. Numbers are comparable run-to-run on
//! the same machine, which is all the workspace's microbenches need.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API parity, the stub treats
/// every batch size the same (one input per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: per-iteration setup is cheap.
    SmallInput,
    /// Large inputs: per-iteration setup dominates.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Benchmark runner configuration + entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API parity with upstream; the stub has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as a named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let s = &bencher.samples;
        if s.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        let mean = s.iter().copied().sum::<f64>() / s.len() as f64;
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        let max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{name:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            s.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Per-benchmark measurement driver passed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput)
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        // Measurement: collect up to sample_size samples within the budget,
        // but always at least one.
        let run_start = Instant::now();
        for done in 0..self.sample_size {
            if done > 0 && run_start.elapsed() > self.budget {
                break;
            }
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 3, "warm-up plus three samples, got {runs}");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(smoke, noop_target);

    fn noop_target(c: &mut Criterion) {
        let mut tuned = c
            .clone()
            .sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        tuned.bench_function("group_target", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_produces_runnable_fn() {
        smoke();
    }
}
