// Vendored offline stub: keep clippy quiet, this is stand-in third-party code.
#![allow(clippy::all)]
//! Offline facade over the `serde` API surface the calibre workspace uses.
//!
//! The workspace annotates config/report structs with
//! `#[derive(Serialize, Deserialize)]` so downstream users *could* plug in a
//! real serializer, but no crate in the workspace actually serializes
//! through serde (checkpoints and CSV/JSONL output are hand-rolled,
//! dependency-free text formats). In hermetic build environments with no
//! crates.io access, this facade keeps those annotations compiling:
//!
//! - [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   implementations, so bounds like `T: Serialize` are always satisfied;
//! - the derive macros (re-exported from `serde_derive`) parse and discard
//!   their input.
//!
//! Swapping the workspace back to upstream serde is a one-line change in the
//! root `Cargo.toml` and requires no source edits.

#![warn(missing_docs)]

/// Marker for types that could be serialized. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that could be deserialized. Blanket-implemented.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
