// Vendored offline stub: keep clippy quiet, this is stand-in third-party code.
#![allow(clippy::all)]
//! Offline facade over the `parking_lot` API surface the calibre workspace
//! uses, implemented on `std::sync` primitives.
//!
//! The attraction of `parking_lot` here is ergonomic, not performance:
//! `lock()` returns the guard directly instead of a `Result`, which keeps
//! telemetry call sites clean. Lock poisoning — the one semantic difference
//! from `std` — is handled by unwrapping into the inner value: a recorder
//! holding only append-only event buffers cannot be left in a torn state by
//! a panicking writer, so continuing past poison is sound for every use in
//! this workspace.
//!
//! ```
//! let m = parking_lot::Mutex::new(vec![1, 2]);
//! m.lock().push(3);
//! assert_eq!(m.lock().len(), 3);
//! ```

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert_eq!(*m.try_lock().expect("uncontended"), 5);
    }
}
