// Vendored offline stub: keep clippy quiet, this is stand-in third-party code.
#![allow(clippy::all)]
//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The calibre workspace builds in hermetic environments with no access to a
//! crates.io registry, so the handful of `rand` APIs the workspace actually
//! uses are reimplemented here as a path dependency: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] trait stack and [`rngs::StdRng`], backed by
//! xoshiro256++ seeded through SplitMix64.
//!
//! The stream of numbers differs from upstream `rand` (the workspace only
//! relies on *run-to-run* determinism, never on golden values), but the
//! generator passes the usual empirical smoke checks and is plenty for
//! seeded scientific simulation.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut a = rand::rngs::StdRng::seed_from_u64(7);
//! let mut b = rand::rngs::StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! assert!((0.0..1.0).contains(&a.gen::<f64>()));
//! assert!((0..10).contains(&a.gen_range(0..10)));
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly "at random" without extra parameters
/// (the subset of upstream's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::standard(rng) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = u128::standard(rng) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t>::standard(rng) * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but the same API and
    /// statistical quality class for simulation purposes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_integer_span() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = r.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_near_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_and_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut r = StdRng::seed_from_u64(4);
        let v = draw(&mut r);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
