// Vendored offline stub: keep clippy quiet, this is stand-in third-party code.
#![allow(clippy::all)]
//! Offline mini property-testing engine exposing the subset of the
//! `proptest` API the calibre workspace's test suites use.
//!
//! Hermetic build environments cannot fetch the real `proptest`, so this
//! crate reimplements the pieces the workspace needs: the [`Strategy`]
//! trait (ranges, tuples, [`Just`], `prop_map`, [`collection::vec`],
//! `any::<T>()`, `prop_oneof!`) and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted for a test-only stub:
//!
//! - **no shrinking** — a failing case reports the seed and case number
//!   instead of a minimized input;
//! - **fixed seeding** — each test function derives its RNG seed from its
//!   name, so failures reproduce across runs without a persistence file;
//! - strategies are simple samplers (`fn sample(&mut TestRng) -> Value`),
//!   not value trees.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {} // `#[test]` fns are stripped outside `--test` builds
//! ```

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Run-time configuration of a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each drawn `value`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// A full-range sampler for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i32, i64);

impl Strategy for AnyPrimitive<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        // Finite, roughly symmetric values; tests wanting a specific range
        // use range strategies instead.
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f32 {
    type Strategy = AnyPrimitive<f32>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// One-of combinator over same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    samplers: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.samplers.len())
    }
}

impl<V> Union<V> {
    /// Builds a union from boxed samplers; used by [`prop_oneof!`].
    pub fn new(samplers: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
        assert!(!samplers.is_empty(), "prop_oneof! needs at least one arm");
        Union { samplers }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let arm = rng.gen_range(0..self.samplers.len());
        (self.samplers[arm])(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: an exact length or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vector of values from `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `proptest::prop` (`prop::collection::…`).
pub mod prop {
    pub use crate::collection;
}

/// Derives a stable 64-bit seed from a test's module path and name, so
/// failures reproduce across runs without a persistence file.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
}

/// The everything-you-need import for tests.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// expression (and optional formatted context) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let s = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::sample(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, …) { … }`
/// expands to a normal `#[test]` that samples its inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            #[test]
            fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng: $crate::TestRng = <$crate::TestRng as $crate::__rt::SeedableRng>::
                        seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)*
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed in {} (seed {:#x})",
                            case + 1, config.cases, stringify!($name), seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f32..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(2);
        let s = (0usize..5).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7).sample(&mut rng), 7);
    }

    #[test]
    fn vec_strategy_honors_exact_and_ranged_lengths() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(3);
        assert_eq!(collection::vec(0usize..3, 4).sample(&mut rng).len(), 4);
        for _ in 0..50 {
            let v = collection::vec(0usize..3, 1..6).sample(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(4);
        let s = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(a in 0usize..10, (b, c) in (0usize..5, Just(3usize))) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            prop_assert_eq!(c, 3);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in any::<bool>()) {
            prop_assert!(x || !x);
        }
    }
}
