//! Property-based tests for clustering invariants.

use calibre_cluster::{
    assign_to_centroids, kmeans, mean_distance_to_assigned, nmi, purity, silhouette_score,
    KMeansConfig,
};
use calibre_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmeans_assignments_are_in_range(data in matrix(20, 3), k in 1usize..8, seed in 0u64..100) {
        let result = kmeans(&data, &KMeansConfig { k, seed, ..Default::default() });
        prop_assert_eq!(result.assignments.len(), 20);
        let k_eff = result.centroids.rows();
        prop_assert!(k_eff <= k);
        prop_assert!(result.assignments.iter().all(|&a| a < k_eff));
        prop_assert!(result.inertia >= 0.0);
        prop_assert!(result.centroids.all_finite());
    }

    #[test]
    fn kmeans_inertia_never_increases_with_k(data in matrix(24, 2), seed in 0u64..100) {
        let mut previous = f32::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let result = kmeans(&data, &KMeansConfig { k, seed, ..Default::default() });
            // Lloyd's algorithm is a local optimizer, so allow small
            // non-monotonicity; gross increases indicate a bug.
            prop_assert!(result.inertia <= previous * 1.05 + 1e-3,
                "k={k}: inertia {} vs previous {previous}", result.inertia);
            previous = previous.min(result.inertia);
        }
    }

    #[test]
    fn assignment_is_idempotent(data in matrix(15, 3), seed in 0u64..100) {
        let result = kmeans(&data, &KMeansConfig { k: 4, seed, ..Default::default() });
        let reassigned = assign_to_centroids(&data, &result.centroids);
        prop_assert_eq!(reassigned, result.assignments);
    }

    #[test]
    fn mean_distance_is_nonnegative_and_finite(data in matrix(12, 4), seed in 0u64..100) {
        let result = kmeans(&data, &KMeansConfig { k: 3, seed, ..Default::default() });
        let d = mean_distance_to_assigned(&data, &result.centroids, &result.assignments);
        prop_assert!(d.is_finite() && d >= 0.0);
    }

    #[test]
    fn silhouette_is_bounded(data in matrix(12, 2), assigns in prop::collection::vec(0usize..3, 12)) {
        let s = silhouette_score(&data, &assigns);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
    }

    #[test]
    fn purity_and_nmi_are_bounded(
        a in prop::collection::vec(0usize..4, 16),
        b in prop::collection::vec(0usize..4, 16),
    ) {
        let p = purity(&a, &b);
        let n = nmi(&a, &b);
        prop_assert!((0.0..=1.0).contains(&p), "purity {p}");
        prop_assert!((-1e-4..=1.0 + 1e-4).contains(&n), "nmi {n}");
    }

    #[test]
    fn nmi_is_symmetric(
        a in prop::collection::vec(0usize..4, 16),
        b in prop::collection::vec(0usize..4, 16),
    ) {
        prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn purity_of_identity_partition_is_one(labels in prop::collection::vec(0usize..5, 10)) {
        prop_assert_eq!(purity(&labels, &labels), 1.0);
    }
}
