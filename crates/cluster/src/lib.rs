//! # calibre-cluster
//!
//! KMeans clustering and cluster-quality metrics for the Calibre
//! personalized-federated-learning reproduction (ICDCS 2024).
//!
//! **Role in Algorithm 1:** the federated *training* stage only — every
//! calibrated local update clusters the current batch's encodings to mint
//! prototypes and pseudo-labels, and the resulting divergence rate steers
//! server aggregation. The personalization stage never clusters.
//!
//! Calibre generates pseudo-labels by clustering batch encodings with KMeans
//! (paper §IV-B); the resulting centroids are the *prototypes* behind the
//! `L_n` / `L_p` regularizers and the mean point-to-prototype distance is the
//! *client divergence rate* used in server aggregation. This crate provides:
//!
//! - [`kmeans`] with kmeans++ seeding and empty-cluster repair;
//! - [`assign_to_centroids`] / [`mean_distance_to_assigned`] helpers;
//! - quality metrics [`silhouette_score`], [`purity`], [`nmi`] used to
//!   quantify the paper's t-SNE figures.
//!
//! # Example
//!
//! ```
//! use calibre_cluster::{kmeans, KMeansConfig, silhouette_score};
//! use calibre_tensor::Matrix;
//!
//! let data = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![9.0, 9.0], vec![9.1, 9.0],
//! ]);
//! let result = kmeans(&data, &KMeansConfig::with_k(2));
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! assert!(silhouette_score(&data, &result.assignments) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kmeans;
mod metrics;

pub use kmeans::{
    assign_to_centroids, kmeans, mean_distance_to_assigned, KMeansConfig, KMeansResult,
};
pub use metrics::{nmi, purity, silhouette_score};
