//! KMeans clustering with kmeans++ initialization.
//!
//! This is the pseudo-label generator of Calibre's prototype machinery
//! (paper §IV-B, "Prototype generation"): batch encodings are clustered,
//! cluster means become prototypes, and assignments become pseudo-labels for
//! the `L_n` / `L_p` regularizers.

use calibre_tensor::backend::global_backend;
use calibre_tensor::{rng, Matrix};
use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f32,
    /// Seed for the kmeans++ initialization.
    pub seed: u64,
    /// Number of independent kmeans++ restarts; the run with the lowest
    /// inertia wins. Restarts guard against an unlucky initialization
    /// splitting a true cluster. Latency-sensitive callers (per-batch
    /// clustering inside a training step) set this to 1.
    pub n_init: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 50,
            tol: 1e-4,
            seed: 0,
            n_init: 4,
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor fixing the cluster count.
    pub fn with_k(k: usize) -> Self {
        KMeansConfig {
            k,
            ..KMeansConfig::default()
        }
    }
}

/// Output of a [`kmeans`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, `(k, dim)`.
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f32,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs Lloyd's algorithm with kmeans++ seeding and [`KMeansConfig::n_init`]
/// restarts, returning the restart with the lowest inertia.
///
/// If the data has fewer rows than `config.k`, the effective `k` is reduced
/// to the row count (every point its own cluster) — this matters for small
/// final batches in the Calibre local update.
///
/// Empty clusters are repaired each iteration by re-seeding them at the
/// point farthest from its assigned centroid.
///
/// # Panics
///
/// Panics if `config.k == 0` or the data is empty.
pub fn kmeans(data: &Matrix, config: &KMeansConfig) -> KMeansResult {
    let span = calibre_telemetry::span("kmeans");
    span.add_items(data.rows() as u64);
    assert!(config.k > 0, "k must be positive");
    assert!(data.rows() > 0, "cannot cluster an empty matrix");
    let restarts = config.n_init.max(1);
    let mut best: Option<KMeansResult> = None;
    for restart in 0..restarts as u64 {
        // Each restart draws a distinct deterministic seed; restart 0
        // reproduces the single-init behaviour for the same config seed.
        let result = kmeans_single(data, config, config.seed.wrapping_add(restart));
        let better = best
            .as_ref()
            .map(|b| result.inertia < b.inertia)
            .unwrap_or(true);
        if better {
            best = Some(result);
        }
    }
    // analyze:allow(no-expect) -- restarts >= 1 is asserted on entry, so
    // the loop body runs and `best` is always populated.
    best.expect("at least one restart ran")
}

/// One Lloyd run from a single kmeans++ initialization.
fn kmeans_single(data: &Matrix, config: &KMeansConfig, seed: u64) -> KMeansResult {
    let restart_span = calibre_telemetry::span("kmeans_restart");
    let k = config.k.min(data.rows());
    let mut rng_ = rng::seeded(seed);
    let mut centroids = kmeanspp_init(data, k, &mut rng_);
    let mut assignments = vec![0usize; data.rows()];
    let mut iterations = 0;

    for _ in 0..config.max_iters {
        iterations += 1;
        assignments = assign_to_centroids(data, &centroids);
        let update_span = calibre_telemetry::span("kmeans_update");
        let be = global_backend();
        let mut new_centroids = Matrix::zeros(k, data.cols());
        let mut counts = vec![0usize; k];
        for (r, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            be.axpy(new_centroids.row_mut(a), data.row(r), 1.0);
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                for o in new_centroids.row_mut(c) {
                    *o *= inv;
                }
            } else {
                // Re-seed an empty cluster at the worst-fit point.
                let far = farthest_point(data, &centroids, &assignments);
                new_centroids.row_mut(c).copy_from_slice(data.row(far));
            }
        }
        let movement: f32 = (0..k)
            .map(|c| {
                be.squared_distance(new_centroids.row(c), centroids.row(c))
                    .sqrt()
            })
            .sum();
        centroids = new_centroids;
        drop(update_span);
        if movement < config.tol {
            break;
        }
    }
    restart_span.add_items(iterations as u64);
    assignments = assign_to_centroids(data, &centroids);
    let inertia = inertia_of(data, &centroids, &assignments);
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// Assigns every row of `data` to its nearest centroid (squared Euclidean).
pub fn assign_to_centroids(data: &Matrix, centroids: &Matrix) -> Vec<usize> {
    let span = calibre_telemetry::span("kmeans_assign");
    span.add_items(data.rows() as u64);
    assert_eq!(data.cols(), centroids.cols(), "assignment dim mismatch");
    let be = global_backend();
    (0..data.rows())
        .map(|r| {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for c in 0..centroids.rows() {
                let d = be.squared_distance(data.row(r), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect()
}

/// Mean Euclidean distance of each point to its assigned centroid.
///
/// This is Calibre's *client divergence rate*: the server uses it to weight
/// encoder aggregation (paper §IV-B, aggregation guided by prototypes).
pub fn mean_distance_to_assigned(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> f32 {
    if data.rows() == 0 {
        return 0.0;
    }
    let be = global_backend();
    let total: f32 = assignments
        .iter()
        .enumerate()
        .map(|(r, &a)| be.squared_distance(data.row(r), centroids.row(a)).sqrt())
        .sum();
    total / data.rows() as f32
}

fn inertia_of(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> f32 {
    let be = global_backend();
    assignments
        .iter()
        .enumerate()
        .map(|(r, &a)| be.squared_distance(data.row(r), centroids.row(a)))
        .sum()
}

fn farthest_point(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> usize {
    let mut best = 0;
    let mut best_d = -1.0;
    for (r, &a) in assignments.iter().enumerate() {
        let d = data.row_distance_sq(r, centroids, a);
        if d > best_d {
            best_d = d;
            best = r;
        }
    }
    best
}

fn kmeanspp_init<R: Rng + ?Sized>(data: &Matrix, k: usize, rng_: &mut R) -> Matrix {
    let n = data.rows();
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = rng_.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_d: Vec<f32> = (0..n)
        .map(|r| data.row_distance_sq(r, &centroids, 0))
        .collect();
    for c in 1..k {
        let total: f32 = min_d.iter().sum();
        let chosen = if total <= 0.0 {
            rng_.gen_range(0..n)
        } else {
            let mut u = rng_.gen::<f32>() * total;
            let mut pick = n - 1;
            for (r, &d) in min_d.iter().enumerate() {
                u -= d;
                if u <= 0.0 {
                    pick = r;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
        for (r, d) in min_d.iter_mut().enumerate() {
            let nd = data.row_distance_sq(r, &centroids, c);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng::{normal_matrix, seeded};

    /// Three well-separated Gaussian blobs.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut r = seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (k, c) in centers.iter().enumerate() {
            let noise = normal_matrix(&mut r, n_per, 2, 0.5);
            for i in 0..n_per {
                rows.push(vec![c[0] + noise.get(i, 0), c[1] + noise.get(i, 1)]);
                labels.push(k);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (data, labels) = blobs(30, 1);
        let result = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        // Every true cluster should map to exactly one kmeans cluster.
        for true_k in 0..3 {
            let assigned: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == true_k)
                .map(|(i, _)| result.assignments[i])
                .collect();
            let first = assigned[0];
            assert!(
                assigned.iter().all(|&a| a == first),
                "true cluster {true_k} split across kmeans clusters"
            );
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = blobs(20, 2);
        let i1 = kmeans(&data, &KMeansConfig::with_k(1)).inertia;
        let i3 = kmeans(&data, &KMeansConfig::with_k(3)).inertia;
        assert!(i3 < i1 * 0.2, "k=3 inertia {i3} vs k=1 {i1}");
    }

    #[test]
    fn k_capped_at_row_count() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let result = kmeans(&data, &KMeansConfig::with_k(10));
        assert_eq!(result.centroids.rows(), 2);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs(15, 3);
        let a = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                seed: 9,
                ..Default::default()
            },
        );
        let b = kmeans(
            &data,
            &KMeansConfig {
                k: 3,
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let (data, _) = blobs(10, 4);
        let result = kmeans(&data, &KMeansConfig::with_k(3));
        for (r, &a) in result.assignments.iter().enumerate() {
            let d_assigned = data.row_distance_sq(r, &result.centroids, a);
            for c in 0..result.centroids.rows() {
                assert!(d_assigned <= data.row_distance_sq(r, &result.centroids, c) + 1e-5);
            }
        }
    }

    #[test]
    fn mean_distance_is_zero_for_points_on_centroids() {
        let data = Matrix::from_rows(&[vec![1.0, 1.0], vec![5.0, 5.0]]);
        let result = kmeans(&data, &KMeansConfig::with_k(2));
        let d = mean_distance_to_assigned(&data, &result.centroids, &result.assignments);
        assert!(d < 1e-6);
    }

    #[test]
    fn mean_distance_grows_with_spread() {
        let mut r = seeded(6);
        let tight = normal_matrix(&mut r, 50, 4, 0.1);
        let loose = normal_matrix(&mut r, 50, 4, 2.0);
        let kt = kmeans(&tight, &KMeansConfig::with_k(2));
        let kl = kmeans(&loose, &KMeansConfig::with_k(2));
        let dt = mean_distance_to_assigned(&tight, &kt.centroids, &kt.assignments);
        let dl = mean_distance_to_assigned(&loose, &kl.centroids, &kl.assignments);
        assert!(dl > dt * 2.0, "loose {dl} vs tight {dt}");
    }

    #[test]
    #[should_panic(expected = "cannot cluster an empty matrix")]
    fn empty_data_panics() {
        kmeans(&Matrix::zeros(0, 2), &KMeansConfig::default());
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        // All-identical data forces empty clusters; repair must handle it.
        let data = Matrix::from_rows(&vec![vec![1.0, 2.0]; 12]);
        let result = kmeans(&data, &KMeansConfig::with_k(3));
        assert_eq!(result.assignments.len(), 12);
        assert!(result.inertia < 1e-9);
    }
}
