//! Cluster-quality metrics.
//!
//! The paper argues visually (t-SNE plots) that Calibre's representations
//! form crisper clusters than plain pFL-SSL. These metrics quantify that
//! claim so the figure reproductions are checkable by a machine:
//!
//! - [`silhouette_score`] measures boundary crispness without labels;
//! - [`purity`] and [`nmi`] measure agreement between cluster structure and
//!   ground-truth classes.

use calibre_tensor::Matrix;

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// Higher is better: ~1 means tight, well-separated clusters; ~0 means
/// overlapping clusters; negative means many points sit in the wrong
/// cluster. Points in singleton clusters contribute 0, matching the common
/// scikit-learn convention.
///
/// Returns 0 when there are fewer than 2 clusters or fewer than 3 points.
///
/// # Panics
///
/// Panics if `assignments.len()` differs from the number of rows.
pub fn silhouette_score(data: &Matrix, assignments: &[usize]) -> f32 {
    assert_eq!(
        assignments.len(),
        data.rows(),
        "one assignment per row required"
    );
    let n = data.rows();
    if n < 3 {
        return 0.0;
    }
    let k = match assignments.iter().max() {
        Some(&m) => m + 1,
        None => return 0.0,
    };
    let mut counts = vec![0usize; k];
    for &a in assignments {
        counts[a] += 1;
    }
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return 0.0;
    }

    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if counts[own] <= 1 {
            continue; // singleton clusters contribute 0
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f32; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assignments[j]] += data.row_distance_sq(i, data, j).sqrt();
        }
        let a = sums[own] / (counts[own] - 1) as f32;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f32)
            .fold(f32::INFINITY, f32::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f32
}

/// Cluster purity in `[0, 1]`: the fraction of points whose cluster's
/// majority label matches their own label.
///
/// # Panics
///
/// Panics if the two slices have different lengths or are empty.
pub fn purity(assignments: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(assignments.len(), labels.len(), "length mismatch");
    assert!(
        !assignments.is_empty(),
        "purity of an empty clustering is undefined"
    );
    let k = assignments.iter().max().copied().unwrap_or(0) + 1;
    let c = labels.iter().max().copied().unwrap_or(0) + 1;
    let mut table = vec![vec![0usize; c]; k];
    for (&a, &l) in assignments.iter().zip(labels) {
        table[a][l] += 1;
    }
    let correct: usize = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    correct as f32 / assignments.len() as f32
}

/// Normalized mutual information between a clustering and ground-truth
/// labels, in `[0, 1]` (arithmetic-mean normalization).
///
/// # Panics
///
/// Panics if the two slices have different lengths or are empty.
pub fn nmi(assignments: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(assignments.len(), labels.len(), "length mismatch");
    assert!(
        !assignments.is_empty(),
        "NMI of an empty clustering is undefined"
    );
    let n = assignments.len() as f64;
    let k = assignments.iter().max().copied().unwrap_or(0) + 1;
    let c = labels.iter().max().copied().unwrap_or(0) + 1;
    let mut joint = vec![vec![0f64; c]; k];
    let mut pa = vec![0f64; k];
    let mut pl = vec![0f64; c];
    for (&a, &l) in assignments.iter().zip(labels) {
        joint[a][l] += 1.0;
        pa[a] += 1.0;
        pl[l] += 1.0;
    }
    for row in &mut joint {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    for v in pa.iter_mut() {
        *v /= n;
    }
    for v in pl.iter_mut() {
        *v /= n;
    }
    let mut mi = 0.0;
    for (a, row) in joint.iter().enumerate() {
        for (l, &p) in row.iter().enumerate() {
            if p > 0.0 {
                mi += p * (p / (pa[a] * pl[l])).ln();
            }
        }
    }
    let ha: f64 = -pa
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>();
    let hl: f64 = -pl
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>();
    let denom = (ha + hl) / 2.0;
    if denom <= 0.0 {
        // Either side constant: perfect agreement iff both are constant.
        return if ha == hl { 1.0 } else { 0.0 };
    }
    (mi / denom) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn separated_blobs() -> (Matrix, Vec<usize>) {
        let mut r = seeded(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (k, center) in [[0.0f32, 0.0], [20.0, 0.0]].iter().enumerate() {
            let noise = normal_matrix(&mut r, 20, 2, 0.3);
            for i in 0..20 {
                rows.push(vec![
                    center[0] + noise.get(i, 0),
                    center[1] + noise.get(i, 1),
                ]);
                labels.push(k);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (data, labels) = separated_blobs();
        let s = silhouette_score(&data, &labels);
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn silhouette_near_zero_for_random_assignment() {
        let mut r = seeded(2);
        let data = normal_matrix(&mut r, 60, 4, 1.0);
        let assignments: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let s = silhouette_score(&data, &assignments);
        assert!(s.abs() < 0.15, "silhouette {s} should be near zero");
    }

    #[test]
    fn silhouette_negative_for_swapped_labels() {
        let (data, labels) = separated_blobs();
        // Assign everything to the *wrong* blob.
        let wrong: Vec<usize> = labels.iter().map(|&l| 1 - l).collect();
        let s = silhouette_score(&data, &wrong);
        // Swapping the labels wholesale keeps clusters internally consistent,
        // so instead corrupt half of one blob.
        let mut half_wrong = labels;
        for item in half_wrong.iter_mut().take(10) {
            *item = 1;
        }
        let s2 = silhouette_score(&data, &half_wrong);
        assert!(s2 < s, "corrupted labels should reduce silhouette");
    }

    #[test]
    fn silhouette_degenerate_cases_return_zero() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(silhouette_score(&data, &[0, 1]), 0.0); // too few points
        let data3 = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(silhouette_score(&data3, &[0, 0, 0]), 0.0); // single cluster
    }

    #[test]
    fn purity_perfect_for_matching_partition() {
        assert_eq!(purity(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
    }

    #[test]
    fn purity_half_for_random_two_way() {
        let p = purity(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!((p - 0.5).abs() < 1e-6);
    }

    #[test]
    fn nmi_is_one_for_identical_partitions_up_to_relabel() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nmi_is_zero_for_independent_partitions() {
        // Every cluster contains every label in equal proportion.
        let a = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b) < 1e-6);
    }

    #[test]
    fn nmi_between_zero_and_one() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![0, 1, 1, 1, 2, 0, 0, 1];
        let v = nmi(&a, &b);
        assert!((0.0..=1.0).contains(&v), "nmi {v}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn purity_rejects_mismatched_lengths() {
        purity(&[0, 1], &[0]);
    }
}
