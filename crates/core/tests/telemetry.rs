//! End-to-end telemetry integration: an instrumented Calibre training run
//! plus personalization must produce a well-ordered event stream with
//! per-client wall-clock and loss payloads.

use calibre::{train_calibre_encoder_observed, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::personalize_cohort_observed;
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;
use calibre_telemetry::{Event, MemoryRecorder, MetricsHub};
use calibre_tensor::nn::Module;

fn tiny_fed() -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 4,
            train_per_client: 30,
            test_per_client: 15,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed: 11,
        },
    )
}

fn tiny_cfg() -> FlConfig {
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 3;
    cfg.clients_per_round = 2;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg
}

#[test]
fn instrumented_run_emits_ordered_round_and_personalize_events() {
    let fed = tiny_fed();
    let cfg = tiny_cfg();
    let rec = MemoryRecorder::new();

    let (encoder, round_losses, _) = train_calibre_encoder_observed(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
        None,
        &rec,
    );
    personalize_cohort_observed(&encoder, &fed, 10, &cfg.probe, &rec);

    let events = rec.events();
    // Per round: round_start, clients_per_round client_updates, aggregate,
    // round_end. Then one personalize event per client.
    let per_round = 1 + cfg.clients_per_round + 1 + 1;
    assert_eq!(
        events.len(),
        cfg.rounds * per_round + fed.num_clients(),
        "unexpected event count: {events:#?}"
    );

    #[allow(clippy::needless_range_loop)] // `round` indexes event *positions*, not one slice
    for round in 0..cfg.rounds {
        let base = round * per_round;
        match &events[base] {
            Event::RoundStart { round: r, selected } => {
                assert_eq!(*r, round);
                assert_eq!(selected.len(), cfg.clients_per_round);
            }
            other => panic!("round {round}: expected RoundStart, got {other:?}"),
        }
        for slot in 0..cfg.clients_per_round {
            match &events[base + 1 + slot] {
                Event::ClientUpdate {
                    round: r,
                    wall_ms,
                    losses,
                    ..
                } => {
                    assert_eq!(*r, round);
                    assert!(*wall_ms > 0.0, "client update must take measurable time");
                    assert!(losses.total.is_finite());
                    assert!(losses.ssl.is_finite());
                }
                other => panic!("round {round}: expected ClientUpdate, got {other:?}"),
            }
        }
        match &events[base + 1 + cfg.clients_per_round] {
            Event::Aggregate {
                round: r,
                num_clients,
                total_weight,
            } => {
                assert_eq!(*r, round);
                assert_eq!(*num_clients, cfg.clients_per_round);
                assert!(*total_weight > 0.0);
            }
            other => panic!("round {round}: expected Aggregate, got {other:?}"),
        }
        match &events[base + per_round - 1] {
            Event::RoundEnd {
                round: r,
                mean_loss,
                client_wall_ms,
                client_loss,
                planned_bytes,
                observed_bytes,
            } => {
                assert_eq!(*r, round);
                assert!((mean_loss - round_losses[round]).abs() < 1e-6);
                assert_eq!(client_wall_ms.len(), cfg.clients_per_round);
                assert_eq!(client_loss.len(), cfg.clients_per_round);
                assert!(client_wall_ms.iter().all(|&ms| ms > 0.0));
                // Every client exchanges the full encoder both ways, so the
                // communication model's plan matches what actually moved.
                assert!(*planned_bytes > 0);
                assert_eq!(planned_bytes, observed_bytes);
            }
            other => panic!("round {round}: expected RoundEnd, got {other:?}"),
        }
    }

    let tail = &events[cfg.rounds * per_round..];
    for (client, event) in tail.iter().enumerate() {
        match event {
            Event::Personalize {
                client: c,
                accuracy,
            } => {
                assert_eq!(*c, client);
                assert!((0.0..=1.0).contains(accuracy));
            }
            other => panic!("expected Personalize for client {client}, got {other:?}"),
        }
    }
}

#[test]
fn hub_summarizes_instrumented_run() {
    let fed = tiny_fed();
    let cfg = tiny_cfg();
    let hub = MetricsHub::new();

    let (encoder, _, _) = train_calibre_encoder_observed(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
        None,
        &hub,
    );
    personalize_cohort_observed(&encoder, &fed, 10, &cfg.probe, &hub);

    let rounds = hub.round_summaries();
    assert_eq!(rounds.len(), cfg.rounds);
    for (i, summary) in rounds.iter().enumerate() {
        assert_eq!(summary.round, i);
        assert_eq!(summary.num_clients, cfg.clients_per_round);
        assert!(summary.mean_wall_ms > 0.0);
        assert!(summary.max_wall_ms >= summary.mean_wall_ms);
        assert_eq!(
            summary.wall_histogram.total() as usize,
            cfg.clients_per_round
        );
    }
    let fairness = hub.fairness_summary().expect("personalize events recorded");
    assert_eq!(fairness.num_clients, fed.num_clients());
    assert!(fairness.worst_10pct <= fairness.mean);
}

#[test]
fn observed_training_matches_unobserved() {
    // Telemetry must be a pure observer: same seeds, same encoder.
    let fed = tiny_fed();
    let cfg = tiny_cfg();
    let rec = MemoryRecorder::new();
    let (a, _, _) = train_calibre_encoder_observed(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
        None,
        &rec,
    );
    let (b, _, _) = calibre::train_calibre_encoder(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
    );
    assert_eq!(a.to_flat(), b.to_flat());
    assert!(!rec.is_empty());
}
