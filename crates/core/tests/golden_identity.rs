//! Golden checksums pinning training bit-for-bit across refactors.
//!
//! The values below were recorded from a known-good build. Any change to the
//! numerics of the local step (graph ops, optimizer, aggregation) under the
//! default `Scalar` backend shows up here as a checksum mismatch, which is
//! exactly what the arena/backend refactor must not cause.

use calibre::{train_calibre_encoder, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::FlConfig;
use calibre_ssl::{ssl_step, SimClr, SslConfig, SslKind, TwoViewBatch};
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// FNV-1a over the exact bit patterns of the parameters: equal checksums
/// mean bit-identical training (modulo +0.0 / -0.0, which f32 `==` already
/// treats as equal but the bit hash would not — so the flats are canonicalized
/// first).
fn flat_checksum(flat: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in flat {
        let canonical = if v == 0.0 { 0.0f32 } else { v };
        for b in canonical.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn tiny_fed() -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 3,
            train_per_client: 40,
            test_per_client: 10,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 11,
        },
    )
}

#[test]
fn calibre_training_checksum_is_stable() {
    let fed = tiny_fed();
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 2;
    cfg.clients_per_round = 3;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    let (encoder, losses, _) = train_calibre_encoder(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
    );
    let checksum = flat_checksum(&encoder.to_flat());
    eprintln!("calibre checksum: {checksum:#018x} losses {losses:?}");
    assert_eq!(checksum, GOLDEN_CALIBRE, "Calibre training drifted");
}

#[test]
fn simclr_multi_step_checksum_is_stable() {
    let mut r = rng::seeded(33);
    let base = rng::normal_matrix(&mut r, 24, 64, 1.0);
    let ve = base.map(|v| v + 0.04);
    let vo = base.map(|v| v - 0.04);
    let mut m = SimClr::new(SslConfig::for_input(64));
    let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
    for _ in 0..8 {
        ssl_step(&mut m, &TwoViewBatch::new(&ve, &vo), &mut opt);
    }
    let checksum = flat_checksum(&m.to_flat());
    eprintln!("simclr checksum: {checksum:#018x}");
    assert_eq!(checksum, GOLDEN_SIMCLR, "SimCLR stepping drifted");
}

const GOLDEN_CALIBRE: u64 = 0xf693_2ed4_aed3_569c;
const GOLDEN_SIMCLR: u64 = 0x45bc_4e68_002f_c982;
