//! Golden checksums pinning training bit-for-bit across refactors.
//!
//! The values below were recorded from a known-good build. Any change to the
//! numerics of the local step (graph ops, optimizer, aggregation) under the
//! default `Scalar` backend shows up here as a checksum mismatch, which is
//! exactly what the arena/backend refactor must not cause.

use calibre::{train_calibre_encoder, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::FlConfig;
use calibre_ssl::{ssl_step, SimClr, SslConfig, SslKind, TwoViewBatch};
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// FNV-1a over the exact bit patterns of the parameters: equal checksums
/// mean bit-identical training (modulo +0.0 / -0.0, which f32 `==` already
/// treats as equal but the bit hash would not — so the flats are canonicalized
/// first).
fn flat_checksum(flat: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in flat {
        let canonical = if v == 0.0 { 0.0f32 } else { v };
        for b in canonical.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn tiny_fed() -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 3,
            train_per_client: 40,
            test_per_client: 10,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 11,
        },
    )
}

#[test]
fn calibre_training_checksum_is_stable() {
    let fed = tiny_fed();
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 2;
    cfg.clients_per_round = 3;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    let (encoder, losses, _) = train_calibre_encoder(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
    );
    let checksum = flat_checksum(&encoder.to_flat());
    eprintln!("calibre checksum: {checksum:#018x} losses {losses:?}");
    assert_eq!(checksum, GOLDEN_CALIBRE, "Calibre training drifted");
}

#[test]
fn simclr_multi_step_checksum_is_stable() {
    let mut r = rng::seeded(33);
    let base = rng::normal_matrix(&mut r, 24, 64, 1.0);
    let ve = base.map(|v| v + 0.04);
    let vo = base.map(|v| v - 0.04);
    let mut m = SimClr::new(SslConfig::for_input(64));
    let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
    for _ in 0..8 {
        ssl_step(&mut m, &TwoViewBatch::new(&ve, &vo), &mut opt);
    }
    let checksum = flat_checksum(&m.to_flat());
    eprintln!("simclr checksum: {checksum:#018x}");
    assert_eq!(checksum, GOLDEN_SIMCLR, "SimCLR stepping drifted");
}

const GOLDEN_CALIBRE: u64 = 0xf693_2ed4_aed3_569c;
const GOLDEN_SIMCLR: u64 = 0x45bc_4e68_002f_c982;

#[test]
fn killed_and_resumed_training_matches_the_uninterrupted_run() {
    // Crash-safe resume must be bit-identical: training 2 rounds, "dying",
    // and resuming to 4 rounds from the checkpoint store must produce the
    // exact parameters of an uninterrupted 4-round run. This leans on the
    // selection schedule's prefix stability and on SimCLR state being fully
    // parameter-backed.
    use calibre_fl::checkpoint::CheckpointStore;
    use calibre_fl::pfl_ssl::{train_pfl_ssl_encoder, train_pfl_ssl_encoder_resumable};
    use calibre_telemetry::NullRecorder;

    let fed = tiny_fed();
    let aug = AugmentConfig::default();
    let mut cfg = FlConfig::for_input(64);
    cfg.clients_per_round = 2;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.rounds = 4;
    let (straight, straight_losses) = train_pfl_ssl_encoder(&fed, &cfg, SslKind::SimClr, &aug);

    let dir = std::env::temp_dir().join(format!("calibre-resume-{}", std::process::id()));
    let store = CheckpointStore::new(dir.join("trainer.txt"));

    // Phase 1: run only 2 rounds, checkpointing every round — then "crash".
    let mut short = cfg.clone();
    short.rounds = 2;
    train_pfl_ssl_encoder_resumable(
        &fed,
        &short,
        SslKind::SimClr,
        &aug,
        None,
        &NullRecorder,
        Some(&store),
    );

    // Phase 2: restart with the full 4-round config; rounds 0-1 come from
    // the checkpoint, rounds 2-3 train live.
    let (resumed, resumed_losses) = train_pfl_ssl_encoder_resumable(
        &fed,
        &cfg,
        SslKind::SimClr,
        &aug,
        None,
        &NullRecorder,
        Some(&store),
    );
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        flat_checksum(&resumed.to_flat()),
        flat_checksum(&straight.to_flat()),
        "resumed run diverged from the uninterrupted run"
    );
    assert_eq!(resumed.to_flat(), straight.to_flat());
    assert_eq!(resumed_losses, straight_losses);
}
