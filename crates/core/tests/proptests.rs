//! Property-based tests for the Calibre loss composition.

use calibre::{calibre_loss, divergence_rate, CalibreConfig};
use calibre_ssl::{SimClr, SslConfig, SslMethod, TwoViewBatch};
use calibre_tensor::nn::gradients;
use calibre_tensor::{rng, Matrix};
use proptest::prelude::*;

fn toy_graph(seed: u64, n: usize) -> calibre_ssl::SslGraph {
    let method = SimClr::new(SslConfig::for_input(64));
    let mut r = rng::seeded(seed);
    let base = rng::normal_matrix(&mut r, n, 64, 1.0);
    let va = base.map(|v| v + 0.05);
    let vb = base.map(|v| v - 0.05);
    method.build_graph(&TwoViewBatch::new(&va, &vb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn total_loss_is_exact_composition(
        seed in 0u64..200,
        alpha in 0.0f32..2.0,
        k in 2usize..12,
        kmeans_seed in 0u64..50,
    ) {
        let mut ssl_graph = toy_graph(seed, 12);
        let config = CalibreConfig { alpha, num_prototypes: k, ..Default::default() };
        let loss = calibre_loss(&mut ssl_graph, &config, kmeans_seed);
        let total = ssl_graph.graph.value(loss.total).get(0, 0);
        let expected = loss.ssl_loss + alpha * (loss.l_n + loss.l_p);
        prop_assert!((total - expected).abs() < 1e-3,
            "total {total} != l_s {} + α({} + {})", loss.ssl_loss, loss.l_n, loss.l_p);
        prop_assert!(loss.divergence >= 0.0 && loss.divergence.is_finite());
    }

    #[test]
    fn gradients_are_finite_for_any_configuration(
        seed in 0u64..100,
        use_ln in any::<bool>(),
        use_lp in any::<bool>(),
        ln_contrastive in any::<bool>(),
        adaptive_k in any::<bool>(),
    ) {
        let mut ssl_graph = toy_graph(seed, 10);
        let config = CalibreConfig {
            use_ln,
            use_lp,
            ln_contrastive,
            adaptive_k,
            ..Default::default()
        };
        let loss = calibre_loss(&mut ssl_graph, &config, 7);
        ssl_graph.graph.backward(loss.total);
        let grads = gradients(&ssl_graph.graph, &ssl_graph.binding);
        prop_assert!(grads.iter().all(Matrix::all_finite));
    }

    #[test]
    fn disabled_terms_report_zero(seed in 0u64..100) {
        let mut ssl_graph = toy_graph(seed, 8);
        let config = CalibreConfig::ablation(false, false);
        let loss = calibre_loss(&mut ssl_graph, &config, 7);
        prop_assert_eq!(loss.l_n, 0.0);
        prop_assert_eq!(loss.l_p, 0.0);
    }

    #[test]
    fn divergence_rate_scales_with_dispersion(seed in 0u64..100, scale in 1.5f32..10.0) {
        let mut r = rng::seeded(seed);
        let tight = rng::normal_matrix(&mut r, 30, 8, 1.0);
        let loose = tight.scale(scale);
        let dt = divergence_rate(&tight, 5, 0);
        let dl = divergence_rate(&loose, 5, 0);
        prop_assert!(dl > dt, "scaling up dispersion must raise divergence: {dt} vs {dl}");
    }
}

// The full Calibre loop under fault injection is far slower than the loss
// properties above, so it runs with a tiny case count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn calibre_training_survives_chaos(seed in 0u64..1_000) {
        use calibre::train_calibre_encoder;
        use calibre_data::{
            AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec,
        };
        use calibre_fl::{FaultPlan, FlConfig, RoundPolicy};
        use calibre_ssl::SslKind;
        use calibre_tensor::nn::Module;

        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 3,
                train_per_client: 40,
                test_per_client: 10,
                unlabeled_per_client: 0,
                non_iid: NonIid::Dirichlet { alpha: 0.3 },
                seed: 11,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 1;
        cfg.batch_size = 16;
        cfg.seed = seed;
        cfg.chaos = FaultPlan {
            drop_prob: 0.3,
            corrupt_prob: 0.2,
            panic_prob: 0.1,
            seed,
            ..FaultPlan::default()
        };
        cfg.policy = RoundPolicy {
            min_quorum: 2,
            max_retries: 2,
            ..RoundPolicy::default()
        };
        let (encoder, losses, divergences) = train_calibre_encoder(
            &fed,
            &cfg,
            SslKind::SimClr,
            &CalibreConfig::default(),
            &AugmentConfig::default(),
        );
        prop_assert_eq!(losses.len(), cfg.rounds);
        prop_assert!(losses.iter().all(|l| l.is_finite()), "loss went non-finite: {:?}", losses);
        prop_assert!(divergences.iter().all(|d| d.is_finite()));
        prop_assert!(encoder.to_flat().iter().all(|v| v.is_finite()));
    }
}
