//! The Calibre federated framework: calibrated local updates plus
//! divergence-aware server aggregation (paper §IV).
//!
//! Training stage: like pFL-SSL, but every local step extends the SSL loss
//! graph with the prototype regularizers ([`crate::calibre_loss`]) and every
//! client reports its divergence rate — the mean distance between its
//! encodings and their prototypes — which the server turns into aggregation
//! weights (lower divergence ⇒ higher weight). Personalization stage:
//! identical to the paper's common protocol (frozen encoder + 10-epoch
//! linear probe).

use crate::loss::{calibre_loss, CalibreConfig, CalibreLoss};
use calibre_data::batch::batches;
use calibre_data::{AugmentConfig, ClientData, FederatedDataset, SynthVision};
use calibre_fl::aggregate::{divergence_weights, sample_count_weights, StreamingWeightedSink};
use calibre_fl::baselines::BaselineResult;
use calibre_fl::comm::CommReport;
use calibre_fl::pfl_ssl::RoundObserver;
use calibre_fl::resilient::ClientOutcome;
use calibre_fl::scheduler::{RoundContext, RoundScheduler};
use calibre_fl::transport::StreamUpdate;
use calibre_fl::FlConfig;
use calibre_ssl::{create_method, SslKind, SslMethod, TwoViewBatch};
use calibre_telemetry::{ClientLosses, NullRecorder, Recorder};
use calibre_tensor::nn::{Mlp, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::pool::report_arena_stats;
use calibre_tensor::{rng, StepArena};
use rand::Rng;

/// One Calibre optimization step: SSL graph → prototype regularizers →
/// backward on the combined loss → optimizer step → method bookkeeping.
///
/// Returns the loss decomposition and batch divergence. Allocates a fresh
/// tape; step loops should prefer [`calibre_step_in`] with a reused
/// [`StepArena`].
pub fn calibre_step(
    method: &mut dyn SslMethod,
    batch: &TwoViewBatch<'_>,
    config: &CalibreConfig,
    opt: &mut Sgd,
    kmeans_seed: u64,
) -> CalibreLoss {
    let mut arena = StepArena::new();
    calibre_step_in(method, batch, config, opt, kmeans_seed, &mut arena)
}

/// Like [`calibre_step`], building the loss graph on the arena's recycled
/// tape and returning it afterwards so the next step reuses its buffers.
/// Bit-identical to [`calibre_step`].
pub fn calibre_step_in(
    method: &mut dyn SslMethod,
    batch: &TwoViewBatch<'_>,
    config: &CalibreConfig,
    opt: &mut Sgd,
    kmeans_seed: u64,
    arena: &mut StepArena,
) -> CalibreLoss {
    let forward = calibre_telemetry::span("ssl_forward");
    forward.add_items(batch.len() as u64);
    let mut ssl_graph = method.build_graph_with(batch, arena.take());
    drop(forward);
    let loss = calibre_loss(&mut ssl_graph, config, kmeans_seed);
    ssl_graph.graph.backward(loss.total);
    opt.step_graph(method, &ssl_graph.graph, &ssl_graph.binding);
    method.post_step(&ssl_graph);
    arena.put(ssl_graph.graph);
    loss
}

/// Final-epoch mean losses of one calibrated local update, decomposed into
/// the terms of the Calibre objective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LocalUpdate {
    /// Mean total loss `L_ssl + alpha * (L_n + L_p)`.
    pub loss: f32,
    /// Mean self-supervised term `L_ssl`.
    pub ssl: f32,
    /// Mean prototype-noise regularizer `L_n`.
    pub l_n: f32,
    /// Mean prototype-alignment regularizer `L_p`.
    pub l_p: f32,
    /// Mean divergence rate — what the client reports to the server.
    pub divergence: f32,
}

/// Runs `epochs` of calibrated two-view training over a client's SSL pool.
///
/// Returns `(mean_total_loss, mean_divergence)` of the final epoch — the
/// divergence is what the client reports to the server. Use
/// [`calibre_local_update_detailed`] to also get the loss decomposition.
#[allow(clippy::too_many_arguments)]
pub fn calibre_local_update<R: Rng + ?Sized>(
    method: &mut dyn SslMethod,
    data: &ClientData,
    generator: &SynthVision,
    aug: &AugmentConfig,
    epochs: usize,
    batch_size: usize,
    config: &CalibreConfig,
    opt: &mut Sgd,
    rng_: &mut R,
) -> (f32, f32) {
    let update = calibre_local_update_detailed(
        method, data, generator, aug, epochs, batch_size, config, opt, rng_,
    );
    (update.loss, update.divergence)
}

/// Like [`calibre_local_update`], returning the full final-epoch loss
/// decomposition (the per-client telemetry payload).
#[allow(clippy::too_many_arguments)]
pub fn calibre_local_update_detailed<R: Rng + ?Sized>(
    method: &mut dyn SslMethod,
    data: &ClientData,
    generator: &SynthVision,
    aug: &AugmentConfig,
    epochs: usize,
    batch_size: usize,
    config: &CalibreConfig,
    opt: &mut Sgd,
    rng_: &mut R,
) -> LocalUpdate {
    let pool = data.ssl_pool();
    if pool.len() < 2 {
        return LocalUpdate::default();
    }
    let mut last = LocalUpdate::default();
    let mut arena = StepArena::new();
    for epoch in 0..epochs {
        let mut sums = LocalUpdate::default();
        let mut seen = 0u64;
        for (b, batch) in batches(pool.len(), batch_size, true, rng_)
            .into_iter()
            .enumerate()
        {
            let samples = batch.iter().map(|&i| pool[i]);
            let (view_e, view_o) = generator.render_two_views(samples, aug, rng_);
            let kmeans_seed = (epoch as u64) << 32 | b as u64;
            let outcome = calibre_step_in(
                method,
                &TwoViewBatch::new(&view_e, &view_o),
                config,
                opt,
                kmeans_seed,
                &mut arena,
            );
            sums.loss += outcome.ssl_loss + config.alpha * (outcome.l_n + outcome.l_p);
            sums.ssl += outcome.ssl_loss;
            sums.l_n += outcome.l_n;
            sums.l_p += outcome.l_p;
            sums.divergence += outcome.divergence;
            seen += 1;
        }
        let inv = 1.0 / seen.max(1) as f32;
        last = LocalUpdate {
            loss: sums.loss * inv,
            ssl: sums.ssl * inv,
            l_n: sums.l_n * inv,
            l_p: sums.l_p * inv,
            divergence: sums.divergence * inv,
        };
    }
    report_arena_stats(&arena);
    last
}

/// Trains the global encoder with the full Calibre framework.
///
/// Returns the encoder, the per-round mean losses, and the per-round mean
/// client divergences (diagnostics for the ablation benches).
pub fn train_calibre_encoder(
    fed: &FederatedDataset,
    fl: &FlConfig,
    kind: SslKind,
    config: &CalibreConfig,
    aug: &AugmentConfig,
) -> (Mlp, Vec<f32>, Vec<f32>) {
    train_calibre_encoder_with(fed, fl, kind, config, aug, None)
}

/// Like [`train_calibre_encoder`], with an optional observer invoked after
/// every aggregation with `(round, global_encoder)` — used by the
/// convergence-tracking bench to evaluate the personalization quality of
/// intermediate encoders.
pub fn train_calibre_encoder_with(
    fed: &FederatedDataset,
    fl: &FlConfig,
    kind: SslKind,
    config: &CalibreConfig,
    aug: &AugmentConfig,
    round_observer: Option<RoundObserver<'_>>,
) -> (Mlp, Vec<f32>, Vec<f32>) {
    train_calibre_encoder_observed(fed, fl, kind, config, aug, round_observer, &NullRecorder)
}

/// Like [`train_calibre_encoder_with`], additionally reporting the round
/// lifecycle to a telemetry [`Recorder`].
///
/// Each `client_update` event carries the full Calibre loss decomposition
/// (`L_ssl`, `L_n`, `L_p`) and divergence rate from
/// [`calibre_local_update_detailed`], with wall-clock measured inside the
/// worker thread that ran the client.
#[allow(clippy::too_many_arguments)]
pub fn train_calibre_encoder_observed(
    fed: &FederatedDataset,
    fl: &FlConfig,
    kind: SslKind,
    config: &CalibreConfig,
    aug: &AugmentConfig,
    mut round_observer: Option<RoundObserver<'_>>,
    recorder: &dyn Recorder,
) -> (Mlp, Vec<f32>, Vec<f32>) {
    let reference = create_method(kind, fl.ssl.clone());
    let mut global_encoder = reference.encoder().clone();
    let mut states: Vec<Option<Box<dyn SslMethod>>> =
        (0..fed.num_clients()).map(|_| None).collect();
    let scheduler = RoundScheduler::from_config(fl, fed.num_clients());
    let mut round_losses = Vec::with_capacity(scheduler.rounds());
    let mut round_divergences = Vec::with_capacity(scheduler.rounds());

    for round in 0..scheduler.rounds() {
        let selected = scheduler.select(round, None);
        let round_span = calibre_telemetry::span("round");
        round_span.add_items(selected.len() as u64);
        let global_flat = global_encoder.to_flat();
        // Linear α warmup (see CalibreConfig::warmup_rounds): pseudo-labels
        // from an untrained encoder are noise, so the regularizers fade in.
        let ramp = if config.warmup_rounds > 0 {
            ((round + 1) as f32 / config.warmup_rounds as f32).min(1.0)
        } else {
            1.0
        };
        let round_config = CalibreConfig {
            alpha: config.alpha * ramp,
            ..*config
        };
        // Streaming path (above the cohort threshold or forced via
        // `--round-path streaming`): fold wave by wave into a
        // constant-memory sink with fresh per-client state each round.
        // Divergence-aware aggregation is approximated per client as
        // `count × 1/(divergence + 1e-3)` — the sink's deferred
        // normalization divides by the folded weight sum, standing in for
        // the collect path's cohort-wide weight normalization.
        if fl.streaming.use_streaming(selected.len()) {
            recorder.round_start(round, &selected);
            let mut sink = StreamingWeightedSink::new();
            let streamed = scheduler.run_round_streaming_with(
                round,
                &selected,
                fl.streaming.wave,
                &mut sink,
                |id| {
                    let mut method =
                        create_method(kind, fl.ssl.clone().with_seed(fl.seed ^ (id as u64) << 8));
                    method.encoder_mut().load_flat(&global_flat);
                    let mut opt =
                        Sgd::new(SgdConfig::with_lr_momentum(fl.local_lr, fl.local_momentum));
                    let mut r = rng::seeded(
                        fl.seed
                            ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ (id as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                    );
                    let data = fed.client(id);
                    let update = calibre_local_update_detailed(
                        method.as_mut(),
                        data,
                        fed.generator(),
                        aug,
                        fl.local_epochs,
                        fl.batch_size,
                        &round_config,
                        &mut opt,
                        &mut r,
                    );
                    let count = data.ssl_pool().len().max(1) as f32;
                    let weight = if config.divergence_aware_aggregation {
                        count / (update.divergence.max(0.0) + 1e-3)
                    } else {
                        count
                    };
                    StreamUpdate {
                        update: method.encoder().to_flat(),
                        weight,
                        loss: update.loss,
                        divergence: update.divergence,
                    }
                },
                recorder,
            );
            if let Some(aggregated) = &streamed.aggregated {
                global_encoder.load_flat(aggregated);
            }
            if streamed.skipped {
                round_losses.push(round_losses.last().copied().unwrap_or(0.0));
                round_divergences.push(round_divergences.last().copied().unwrap_or(0.0));
            } else {
                round_losses.push(streamed.mean_loss);
                round_divergences.push(streamed.mean_divergence);
            }
            if let Some(observer) = round_observer.as_deref_mut() {
                observer(round, &global_encoder);
            }
            continue;
        }

        let ctx = RoundContext {
            recorder,
            downlink_params: global_flat.len(),
            // Shape-derived, so computable before the aggregate lands.
            planned_bytes: CommReport::for_module(&global_encoder, 1, selected.len()).total as u64,
            // Skipped round: repeat the previous values so histories stay
            // finite and plottable.
            fallback_loss: round_losses.last().copied().unwrap_or(0.0),
            fallback_divergence: round_divergences.last().copied().unwrap_or(0.0),
        };

        let outcome = scheduler.run_round(
            round,
            &selected,
            &ctx,
            |id| {
                states[id].take().unwrap_or_else(|| {
                    create_method(kind, fl.ssl.clone().with_seed(fl.seed ^ (id as u64) << 8))
                })
            },
            |id, mut method: Box<dyn SslMethod>| {
                method.encoder_mut().load_flat(&global_flat);
                let mut opt = Sgd::new(SgdConfig::with_lr_momentum(fl.local_lr, fl.local_momentum));
                let mut r = rng::seeded(
                    fl.seed
                        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (id as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                let data = fed.client(id);
                let update = calibre_local_update_detailed(
                    method.as_mut(),
                    data,
                    fed.generator(),
                    aug,
                    fl.local_epochs,
                    fl.batch_size,
                    &round_config,
                    &mut opt,
                    &mut r,
                );
                let flat = method.encoder().to_flat();
                let count = data.ssl_pool().len();
                ClientOutcome {
                    state: method,
                    flat,
                    count,
                    payload: update,
                }
            },
            |accepted| {
                // Divergence-aware aggregation (§IV-B): sample-count
                // weights are modulated by inverse divergence so clients
                // whose representations already form tight prototypes
                // anchor the global model.
                let counts: Vec<usize> = accepted.iter().map(|a| a.count).collect();
                if config.divergence_aware_aggregation {
                    let divergences: Vec<f32> =
                        accepted.iter().map(|a| a.payload.divergence).collect();
                    sample_count_weights(&counts)
                        .iter()
                        .zip(divergence_weights(&divergences).iter())
                        .map(|(s, d)| s * d)
                        .collect()
                } else {
                    sample_count_weights(&counts)
                }
            },
            |update| {
                (
                    ClientLosses {
                        total: update.loss,
                        ssl: update.ssl,
                        l_n: update.l_n,
                        l_p: update.l_p,
                    },
                    update.divergence,
                )
            },
        );

        if let Some(aggregated) = &outcome.round.aggregated {
            global_encoder.load_flat(aggregated);
        }
        for a in outcome.round.accepted {
            states[a.id] = Some(a.state);
        }
        for (id, state) in outcome.round.rejected_states {
            states[id] = Some(state);
        }
        round_losses.push(outcome.mean_loss);
        round_divergences.push(outcome.mean_divergence);
        if let Some(observer) = round_observer.as_deref_mut() {
            observer(round, &global_encoder);
        }
    }
    (global_encoder, round_losses, round_divergences)
}

/// Runs Calibre end to end: calibrated federated training stage followed by
/// the standard personalization stage.
pub fn run_calibre(
    fed: &FederatedDataset,
    fl: &FlConfig,
    kind: SslKind,
    config: &CalibreConfig,
    aug: &AugmentConfig,
) -> BaselineResult {
    run_calibre_observed(fed, fl, kind, config, aug, &NullRecorder)
}

/// Like [`run_calibre`], reporting both stages to a telemetry [`Recorder`].
pub fn run_calibre_observed(
    fed: &FederatedDataset,
    fl: &FlConfig,
    kind: SslKind,
    config: &CalibreConfig,
    aug: &AugmentConfig,
    recorder: &dyn Recorder,
) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let (encoder, round_losses, _) =
        train_calibre_encoder_observed(fed, fl, kind, config, aug, None, recorder);
    let seen =
        calibre_fl::personalize_cohort_observed(&encoder, fed, num_classes, &fl.probe, recorder);
    BaselineResult {
        name: format!("Calibre ({})", kind.name()),
        seen,
        encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    fn tiny_fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 59,
            },
        )
    }

    fn tiny_cfg() -> FlConfig {
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 5;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 1;
        cfg.batch_size = 16;
        cfg
    }

    #[test]
    fn calibre_simclr_trains_and_personalizes() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let result = run_calibre(
            &fed,
            &cfg,
            SslKind::SimClr,
            &CalibreConfig::default(),
            &AugmentConfig::default(),
        );
        assert_eq!(result.name, "Calibre (SimCLR)");
        assert_eq!(result.seen.accuracies.len(), 4);
        assert!(
            result.stats().mean > 0.5,
            "Calibre accuracy {:?}",
            result.stats()
        );
        assert!(result.round_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn divergence_falls_as_training_progresses() {
        let fed = tiny_fed();
        let mut cfg = tiny_cfg();
        cfg.rounds = 8;
        let (_, _, divergences) = train_calibre_encoder(
            &fed,
            &cfg,
            SslKind::SimClr,
            &CalibreConfig::default(),
            &AugmentConfig::default(),
        );
        let early = divergences[0];
        let late = *divergences.last().unwrap();
        // Prototype regularization compacts clusters over rounds. Allow some
        // slack for stochasticity; require a non-increase.
        assert!(
            late <= early * 1.2,
            "divergence should not grow: {divergences:?}"
        );
    }

    #[test]
    fn forced_streaming_path_trains_deterministically() {
        let fed = tiny_fed();
        let mut cfg = tiny_cfg();
        cfg.streaming.path = calibre_fl::RoundPath::Streaming;
        cfg.streaming.wave = 2;
        let aug = AugmentConfig::default();
        let ccfg = CalibreConfig::default();
        let (a, losses_a, div_a) = train_calibre_encoder(&fed, &cfg, SslKind::SimClr, &ccfg, &aug);
        let (b, losses_b, div_b) = train_calibre_encoder(&fed, &cfg, SslKind::SimClr, &ccfg, &aug);
        assert_eq!(a.to_flat(), b.to_flat(), "streaming path must replay");
        assert_eq!(losses_a, losses_b);
        assert_eq!(div_a, div_b);
        assert!(losses_a.iter().all(|l| l.is_finite()));
        assert!(div_a.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let aug = AugmentConfig::default();
        let ccfg = CalibreConfig::default();
        let (a, _, _) = train_calibre_encoder(&fed, &cfg, SslKind::SimClr, &ccfg, &aug);
        let (b, _, _) = train_calibre_encoder(&fed, &cfg, SslKind::SimClr, &ccfg, &aug);
        assert_eq!(a.to_flat(), b.to_flat());
    }

    #[test]
    fn all_six_ssl_backends_run_under_calibre() {
        let fed = tiny_fed();
        let mut cfg = tiny_cfg();
        cfg.rounds = 2;
        for kind in SslKind::ALL {
            let result = run_calibre(
                &fed,
                &cfg,
                kind,
                &CalibreConfig::default(),
                &AugmentConfig::default(),
            );
            assert!(
                result.stats().mean.is_finite(),
                "{kind}: non-finite accuracy"
            );
            assert!(result.round_losses.iter().all(|l| l.is_finite()), "{kind}");
        }
    }
}
