//! # calibre
//!
//! Reproduction of **Calibre: Towards Fair and Accurate Personalized
//! Federated Learning with Self-Supervised Learning** (Chen, Su, Li —
//! ICDCS 2024).
//!
//! Calibre trains a global encoder with self-supervised learning — so the
//! representation is label-free and fair under label-skewed non-i.i.d. data
//! — and *calibrates* it with a contrastive prototype adaptation mechanism
//! so that, unlike plain pFL-SSL, the representation also carries the
//! cluster structure a lightweight personalized classifier needs:
//!
//! - pseudo-labels via KMeans over batch encodings (prototype generation);
//! - `L_n`, a prototypical-network pull of each encoding toward its
//!   prototype (Algorithm 1, lines 13–17);
//! - `L_p`, an NT-Xent loss over per-view prototypes that makes prototypes
//!   augmentation-stable (lines 8–12);
//! - combined local objective `L = l_s + α (L_p + L_n)` with `α = 0.3`;
//! - divergence-aware server aggregation: clients report the mean distance
//!   of their encodings to their prototypes, and the server up-weights
//!   low-divergence encoders.
//!
//! The crate composes with any of the six SSL methods in `calibre-ssl`
//! (SimCLR, BYOL, SimSiam, MoCoV2, SwAV, SMoG) — exactly the *Calibre (X)*
//! variants of the paper — and with the full baseline zoo in `calibre-fl`.
//!
//! **Role in Algorithm 1:** the whole algorithm, end to end. The federated
//! *training* stage is [`train_calibre_encoder`] (calibrated local updates +
//! divergence-aware aggregation); the *personalization* stage is delegated
//! to `calibre_fl::personalize`; [`run_calibre`] chains the two. The
//! `_observed` variants stream both stages to a
//! `calibre_telemetry::Recorder`.
//!
//! # Example: Calibre (SimCLR) on a small federation
//!
//! ```no_run
//! use calibre::{run_calibre, CalibreConfig};
//! use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
//! use calibre_fl::FlConfig;
//! use calibre_ssl::SslKind;
//!
//! let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &PartitionConfig {
//!     num_clients: 10, train_per_client: 100, test_per_client: 40,
//!     unlabeled_per_client: 0, non_iid: NonIid::Dirichlet { alpha: 0.3 }, seed: 1,
//! });
//! let result = run_calibre(
//!     &fed,
//!     &FlConfig::for_input(64),
//!     SslKind::SimClr,
//!     &CalibreConfig::default(),
//!     &AugmentConfig::default(),
//! );
//! println!("mean {:.3} variance {:.5}", result.stats().mean, result.stats().variance);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod framework;
mod loss;

pub use framework::{
    calibre_local_update, calibre_local_update_detailed, calibre_step, calibre_step_in,
    run_calibre, run_calibre_observed, train_calibre_encoder, train_calibre_encoder_observed,
    train_calibre_encoder_with, LocalUpdate,
};
pub use loss::{calibre_loss, divergence_rate, CalibreConfig, CalibreLoss};
