//! Calibre's contrastive prototype adaptation loss (paper §IV-B,
//! Algorithm 1).
//!
//! Given the loss graph of *any* SSL method (its `l_s`, encoder outputs `z`
//! and projector outputs `h` for both views), this module extends the graph
//! with the two prototype regularizers and combines them into the Calibre
//! objective:
//!
//! ```text
//! L = l_s + α · (L_p + L_n)
//! ```
//!
//! - **Prototype generation**: KMeans over the (detached) encoder outputs of
//!   view `I_e` produces `K_r` prototypes and pseudo-labels.
//! - **`L_n`** (prototype meta regularizer, lines 13–17): view `I_o`'s
//!   encodings are assigned to those prototypes and pulled toward them.
//!   Two readings of the paper's formula are implemented
//!   ([`CalibreConfig::ln_contrastive`]): the default *pull-only* form
//!   (mean cosine distance to the assigned prototype, §IV-B's
//!   `softmax(−d(z, v_k))` text) and the InfoNCE form of Algorithm 1
//!   line 17, which additionally repels non-assigned prototypes.
//! - **`L_p`** (prototype-oriented contrastive regularizer, lines 8–12):
//!   per-view prototypes of the projector outputs, matched by cluster id,
//!   act as positive pairs in an NT-Xent loss — reducing the variance of the
//!   same prototype across augmented views.
//!
//! The paper's `l_c` term is a *conditional classification loss* that
//! requires labels; in the unsupervised training stage its role is played by
//! the divergence-aware aggregation weight (§IV-B "aggregation algorithm
//! guided by prototypes"), which [`divergence_rate`] computes.

use calibre_cluster::{assign_to_centroids, kmeans, mean_distance_to_assigned, KMeansConfig};
use calibre_ssl::{nt_xent, SslGraph};
use calibre_tensor::{Graph, Matrix, Node};
use serde::{Deserialize, Serialize};

/// Configuration of the Calibre calibration terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibreConfig {
    /// Weight `α` of the prototype regularizers (0.3 in the paper, §V-A).
    pub alpha: f32,
    /// Number of KMeans prototypes `K_r` per batch.
    pub num_prototypes: usize,
    /// Temperature `τ` for both regularizers.
    pub tau: f32,
    /// Include the `L_n` prototype meta regularizer (ablation toggle,
    /// Table I).
    pub use_ln: bool,
    /// Include the `L_p` prototype contrastive regularizer (ablation
    /// toggle, Table I).
    pub use_lp: bool,
    /// Weight encoder aggregation by inverse client divergence
    /// (§IV-B; disable to ablate to plain FedAvg aggregation).
    pub divergence_aware_aggregation: bool,
    /// Use the contrastive (cross-entropy) form of `L_n`. The default is the
    /// pull-only form — mean cosine distance to the assigned prototype —
    /// which compacts clusters without repelling same-class samples that
    /// KMeans split across prototypes (a real hazard when `K_r` exceeds the
    /// local class count; see EXPERIMENTS.md, "L_n form"). The paper's text
    /// is ambiguous between the two (§IV-B gives `softmax(−d(z_j, v_k))`
    /// without a log; Algorithm 1 line 17 gives the InfoNCE form).
    pub ln_contrastive: bool,
    /// Cap `K_r` adaptively at `batch/8` (min 2). Small batches cannot
    /// support many meaningful prototypes.
    pub adaptive_k: bool,
    /// Rounds over which `α` ramps linearly from 0 to its full value.
    ///
    /// KMeans pseudo-labels on an untrained encoder are noise; reinforcing
    /// them with `L_n`/`L_p` from round 0 actively damages the
    /// representation at our scaled-down round budgets. The paper's 200
    /// rounds amortize this warmup implicitly; with 0 the ramp is disabled.
    pub warmup_rounds: usize,
}

impl Default for CalibreConfig {
    fn default() -> Self {
        CalibreConfig {
            alpha: 0.3,
            num_prototypes: 10,
            tau: 0.5,
            use_ln: true,
            use_lp: true,
            divergence_aware_aggregation: true,
            ln_contrastive: false,
            adaptive_k: false,
            warmup_rounds: 0,
        }
    }
}

impl CalibreConfig {
    /// The Table I ablation variants: (use_ln, use_lp).
    pub fn ablation(use_ln: bool, use_lp: bool) -> Self {
        CalibreConfig {
            use_ln,
            use_lp,
            ..CalibreConfig::default()
        }
    }
}

/// The pieces of one Calibre loss computation.
#[derive(Debug, Clone, Copy)]
pub struct CalibreLoss {
    /// The combined scalar loss node `l_s + α(L_p + L_n)` to backpropagate.
    pub total: Node,
    /// Value of the underlying SSL loss `l_s`.
    pub ssl_loss: f32,
    /// Value of `L_n` (0 when disabled or degenerate).
    pub l_n: f32,
    /// Value of `L_p` (0 when disabled or degenerate).
    pub l_p: f32,
    /// The client divergence rate of this batch: mean distance of encodings
    /// to their assigned prototype (aggregation weight input).
    pub divergence: f32,
}

/// Extends an SSL method's loss graph with the Calibre regularizers.
///
/// `kmeans_seed` must vary across steps (e.g. derived from the round and
/// batch index) so prototype initialization does not correlate between
/// batches.
pub fn calibre_loss(
    ssl_graph: &mut SslGraph,
    config: &CalibreConfig,
    kmeans_seed: u64,
) -> CalibreLoss {
    let ssl_loss_value = ssl_graph.graph.value(ssl_graph.ssl_loss).get(0, 0);

    // ---- Prototype generation (Algorithm 1, line 13): cluster the
    // detached encoder outputs of view e.
    // Cluster in *normalized* encoder space: L_n scores encodings against
    // prototypes by cosine similarity, so the pseudo-labels must come from
    // the same geometry (raw-space KMeans is dominated by norm variation).
    let z_e_val = ssl_graph.graph.value(ssl_graph.z_e).row_l2_normalized();
    let z_o_val = ssl_graph.graph.value(ssl_graph.z_o).row_l2_normalized();
    let n = z_e_val.rows();
    if n < 2 {
        // Degenerate batch: fall back to the raw SSL loss.
        return CalibreLoss {
            total: ssl_graph.ssl_loss,
            ssl_loss: ssl_loss_value,
            l_n: 0.0,
            l_p: 0.0,
            divergence: 0.0,
        };
    }
    let k_r = if config.adaptive_k {
        config.num_prototypes.min((n / 8).max(2))
    } else {
        config.num_prototypes
    };
    let proto_span = calibre_telemetry::span("prototype_generation");
    proto_span.add_items(n as u64);
    let km = kmeans(
        &z_e_val,
        &KMeansConfig {
            k: k_r.min(n),
            max_iters: 20,
            tol: 1e-3,
            seed: kmeans_seed,
            n_init: 1,
        },
    );
    let assignments_e = &km.assignments;
    let assignments_o = assign_to_centroids(&z_o_val, &km.centroids);
    let divergence = {
        let _span = calibre_telemetry::span("divergence");
        mean_distance_to_assigned(&z_e_val, &km.centroids, assignments_e)
    };
    drop(proto_span);

    let mut l_n_value = 0.0;
    let mut l_p_value = 0.0;
    let mut total = ssl_graph.ssl_loss;
    let g = &mut ssl_graph.graph;

    // ---- L_n: prototypical-network pull of view-o encodings toward the
    // view-e prototypes (lines 14-17). Gradient flows through z_o only; the
    // prototypes are constants of this step.
    if config.use_ln {
        let _span = calibre_telemetry::span("l_n");
        let ln_node = if config.ln_contrastive {
            prototype_meta_loss(g, ssl_graph.z_o, &km.centroids, &assignments_o, config.tau)
        } else {
            prototype_pull_loss(g, ssl_graph.z_o, &km.centroids, &assignments_o)
        };
        l_n_value = g.value(ln_node).get(0, 0);
        let scaled = g.scale(ln_node, config.alpha);
        total = g.add(total, scaled);
    }

    // ---- L_p: NT-Xent between per-view prototypes of the projector
    // outputs (lines 8-12), differentiable through both views' h via the
    // grouped-mean op. Only clusters populated in BOTH views participate.
    if config.use_lp {
        let _span = calibre_telemetry::span("l_p");
        if let Some(lp_node) = prototype_contrastive_loss(
            g,
            ssl_graph.h_e,
            ssl_graph.h_o,
            assignments_e,
            &assignments_o,
            km.centroids.rows(),
            config.tau,
        ) {
            l_p_value = g.value(lp_node).get(0, 0);
            let scaled = g.scale(lp_node, config.alpha);
            total = g.add(total, scaled);
        }
    }

    CalibreLoss {
        total,
        ssl_loss: ssl_loss_value,
        l_n: l_n_value,
        l_p: l_p_value,
        divergence,
    }
}

/// `L_n`: cross-entropy of `softmax(z̄·v̄_k / τ)` against the assigned
/// prototype, differentiable through `z`.
///
/// Algorithm 1 (line 17) scores encodings against prototypes with
/// `exp(z_j · v_k / τ)`; both sides are L2-normalized here so the logits
/// live in `[−1/τ, 1/τ]`. (Raw squared-Euclidean logits saturate the
/// softmax at our feature scale — the assigned prototype's probability
/// pins to 1 and the gradient vanishes.)
fn prototype_meta_loss(
    g: &mut Graph,
    z: Node,
    prototypes: &Matrix,
    assignments: &[usize],
    tau: f32,
) -> Node {
    let zn = g.row_l2_normalize(z);
    let v = g.constant(prototypes.row_l2_normalized().transpose());
    let sims = g.matmul(zn, v);
    let logits = g.scale(sims, 1.0 / tau);
    g.cross_entropy(logits, assignments)
}

/// Pull-only `L_n` variant: `mean_j (1 − cos(z_j, v_{a(j)}))`, compacting
/// each cluster without any repulsion term.
fn prototype_pull_loss(g: &mut Graph, z: Node, prototypes: &Matrix, assignments: &[usize]) -> Node {
    let zn = g.row_l2_normalize(z);
    let assigned = prototypes.row_l2_normalized().gather_rows(assignments);
    let v = g.constant(assigned);
    let dots = g.rowwise_dot(zn, v);
    let mean = g.mean_all(dots);
    let neg = g.scale(mean, -1.0);
    g.add_scalar(neg, 1.0)
}

/// `L_p`: NT-Xent over the per-view prototype pairs. Returns `None` when
/// fewer than two clusters are populated in both views (NT-Xent needs a
/// negative).
fn prototype_contrastive_loss(
    g: &mut Graph,
    h_e: Node,
    h_o: Node,
    assignments_e: &[usize],
    assignments_o: &[usize],
    k: usize,
    tau: f32,
) -> Option<Node> {
    // Clusters populated in both views, remapped to a compact range.
    let mut count_e = vec![0usize; k];
    let mut count_o = vec![0usize; k];
    for &a in assignments_e {
        count_e[a] += 1;
    }
    for &a in assignments_o {
        count_o[a] += 1;
    }
    let shared: Vec<usize> = (0..k)
        .filter(|&c| count_e[c] > 0 && count_o[c] > 0)
        .collect();
    if shared.len() < 2 {
        return None;
    }
    let remap: Vec<Option<usize>> = {
        let mut m = vec![None; k];
        for (compact, &orig) in shared.iter().enumerate() {
            m[orig] = Some(compact);
        }
        m
    };
    // Rows whose cluster survives, with compacted assignments, per view.
    let build = |g: &mut Graph, h: Node, assignments: &[usize]| -> Node {
        let keep: Vec<usize> = (0..assignments.len())
            .filter(|&i| remap[assignments[i]].is_some())
            .collect();
        let compact: Vec<usize> = keep
            .iter()
            // analyze:allow(no-expect) -- `keep` retains exactly the rows
            // whose remap entry is Some, checked two lines above.
            .map(|&i| remap[assignments[i]].expect("filtered above"))
            .collect();
        let kept = g.gather_rows(h, &keep);
        g.group_mean_rows(kept, &compact, shared.len())
    };
    let nu_e = build(g, h_e, assignments_e);
    let nu_o = build(g, h_o, assignments_o);
    Some(nt_xent(g, nu_e, nu_o, tau))
}

/// The divergence rate of a whole client dataset under the current encoder:
/// cluster the encodings, return the mean distance to assigned prototypes.
/// Used by the server-side aggregation weighting in
/// [`train_calibre_encoder`](crate::train_calibre_encoder).
pub fn divergence_rate(encodings: &Matrix, num_prototypes: usize, seed: u64) -> f32 {
    if encodings.rows() < 2 {
        return 0.0;
    }
    let km = kmeans(
        encodings,
        &KMeansConfig {
            k: num_prototypes.min(encodings.rows()),
            max_iters: 20,
            tol: 1e-3,
            seed,
            n_init: 1,
        },
    );
    mean_distance_to_assigned(encodings, &km.centroids, &km.assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_ssl::{SimClr, SslConfig, SslMethod, TwoViewBatch};
    use calibre_tensor::nn::gradients;
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn toy_graph(seed: u64) -> SslGraph {
        let method = SimClr::new(SslConfig::for_input(64));
        let mut r = seeded(seed);
        let base = normal_matrix(&mut r, 16, 64, 1.0);
        let va = base.map(|v| v + 0.05);
        let vb = base.map(|v| v - 0.05);
        method.build_graph(&TwoViewBatch::new(&va, &vb))
    }

    #[test]
    fn full_calibre_loss_includes_both_regularizers() {
        let mut sslg = toy_graph(1);
        let loss = calibre_loss(&mut sslg, &CalibreConfig::default(), 7);
        assert!(loss.l_n > 0.0, "L_n should be positive: {loss:?}");
        assert!(loss.l_p > 0.0, "L_p should be positive: {loss:?}");
        assert!(loss.divergence > 0.0);
        let total = sslg.graph.value(loss.total).get(0, 0);
        assert!(
            (total - (loss.ssl_loss + 0.3 * (loss.l_n + loss.l_p))).abs() < 1e-4,
            "total {total} should be l_s + α(L_n + L_p)"
        );
    }

    #[test]
    fn ablation_toggles_zero_out_terms() {
        let mut a = toy_graph(2);
        let only_ln = calibre_loss(&mut a, &CalibreConfig::ablation(true, false), 7);
        assert!(only_ln.l_n > 0.0);
        assert_eq!(only_ln.l_p, 0.0);

        let mut b = toy_graph(2);
        let only_lp = calibre_loss(&mut b, &CalibreConfig::ablation(false, true), 7);
        assert_eq!(only_lp.l_n, 0.0);
        assert!(only_lp.l_p > 0.0);

        let mut c = toy_graph(2);
        let neither = calibre_loss(&mut c, &CalibreConfig::ablation(false, false), 7);
        let total = c.graph.value(neither.total).get(0, 0);
        assert!(
            (total - neither.ssl_loss).abs() < 1e-6,
            "pure SSL when both off"
        );
    }

    #[test]
    fn total_loss_backpropagates_to_encoder() {
        let mut sslg = toy_graph(3);
        let loss = calibre_loss(&mut sslg, &CalibreConfig::default(), 7);
        sslg.graph.backward(loss.total);
        let grads = gradients(&sslg.graph, &sslg.binding);
        assert!(grads.iter().all(|g| g.all_finite()));
        assert!(
            grads.iter().any(|g| g.max_abs() > 0.0),
            "calibre loss must produce gradients"
        );
    }

    #[test]
    fn regularizer_gradients_differ_from_pure_ssl() {
        // The calibration must actually change the training signal.
        let mut a = toy_graph(4);
        let pure = calibre_loss(&mut a, &CalibreConfig::ablation(false, false), 7);
        a.graph.backward(pure.total);
        let pure_grads = gradients(&a.graph, &a.binding);

        let mut b = toy_graph(4);
        let full = calibre_loss(&mut b, &CalibreConfig::default(), 7);
        b.graph.backward(full.total);
        let full_grads = gradients(&b.graph, &b.binding);

        let diff: f32 = pure_grads
            .iter()
            .zip(full_grads.iter())
            .map(|(x, y)| x.sub(y).max_abs())
            .fold(0.0, f32::max);
        assert!(diff > 1e-6, "regularizers should alter gradients");
    }

    #[test]
    fn tight_clusters_have_lower_divergence() {
        let mut r = seeded(5);
        let tight = normal_matrix(&mut r, 40, 8, 0.05);
        let loose = normal_matrix(&mut r, 40, 8, 2.0);
        let dt = divergence_rate(&tight, 4, 0);
        let dl = divergence_rate(&loose, 4, 0);
        assert!(dt < dl, "tight {dt} vs loose {dl}");
    }

    #[test]
    fn degenerate_single_sample_batch_falls_back() {
        let method = SimClr::new(SslConfig::for_input(64));
        let mut r = seeded(6);
        let base = normal_matrix(&mut r, 2, 64, 1.0);
        let mut sslg = method.build_graph(&TwoViewBatch::new(&base, &base));
        // 2 samples is the minimum; verify no panic and finite values.
        let loss = calibre_loss(&mut sslg, &CalibreConfig::default(), 7);
        assert!(sslg.graph.value(loss.total).get(0, 0).is_finite());
    }

    #[test]
    fn divergence_rate_of_tiny_input_is_zero() {
        let m = Matrix::zeros(1, 4);
        assert_eq!(divergence_rate(&m, 4, 0), 0.0);
    }
}
