//! Property-based tests for the SSL losses and methods.

use calibre_ssl::{
    create_method, neg_cosine, nt_xent, sinkhorn, ssl_step, ssl_step_in, SslConfig, SslKind,
    TwoViewBatch,
};
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, Graph, Matrix, StepArena};
use proptest::prelude::*;

fn views(n: usize, d: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (
        prop::collection::vec(-2.0f32..2.0, n * d),
        prop::collection::vec(-2.0f32..2.0, n * d),
    )
        .prop_map(move |(a, b)| (Matrix::from_vec(n, d, a), Matrix::from_vec(n, d, b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nt_xent_is_finite_and_nonnegative((a, b) in views(6, 8), tau in 0.1f32..2.0) {
        let mut g = Graph::new();
        let an = g.leaf(a);
        let bn = g.constant(b);
        let loss = nt_xent(&mut g, an, bn, tau);
        let v = g.value(loss).get(0, 0);
        prop_assert!(v.is_finite() && v >= 0.0, "loss {v}");
        g.backward(loss);
        prop_assert!(g.grad(an).unwrap().all_finite());
    }

    #[test]
    fn nt_xent_perfect_alignment_approaches_lower_bound((a, _) in views(8, 8)) {
        // With identical views the positive has maximal similarity; the loss
        // must be below the uniform-distribution level ln(2N-1).
        let mut g = Graph::new();
        let an = g.constant(a.clone());
        let bn = g.constant(a.map(|v| v + 1e-4));
        let loss = nt_xent(&mut g, an, bn, 0.5);
        let v = g.value(loss).get(0, 0);
        let uniform = (2.0f32 * 8.0 - 1.0).ln();
        prop_assert!(v < uniform, "aligned loss {v} >= uniform {uniform}");
    }

    #[test]
    fn neg_cosine_is_bounded((a, b) in views(5, 6)) {
        let mut g = Graph::new();
        let an = g.leaf(a);
        let bn = g.constant(b);
        let loss = neg_cosine(&mut g, an, bn);
        let v = g.value(loss).get(0, 0);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&v), "neg cosine {v}");
    }

    #[test]
    fn sinkhorn_output_is_row_stochastic(
        scores in prop::collection::vec(-3.0f32..3.0, 10 * 4),
        eps in 0.05f32..1.0,
        iters in 1usize..8,
    ) {
        let m = Matrix::from_vec(10, 4, scores);
        let q = sinkhorn(&m, eps, iters);
        for r in 0..10 {
            let sum: f32 = q.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-2, "row {r} sums to {sum}");
            prop_assert!(q.row(r).iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn every_method_step_is_finite_and_moves_params(
        kind_idx in 0usize..SslKind::ALL.len(),
        seed in 0u64..200,
    ) {
        let kind = SslKind::ALL[kind_idx];
        let mut method = create_method(kind, SslConfig::for_input(64).with_seed(seed));
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let mut r = rng::seeded(seed);
        let base = rng::normal_matrix(&mut r, 8, 64, 1.0);
        let va = base.map(|v| v + 0.05);
        let vb = base.map(|v| v - 0.05);
        let before = method.encoder().to_flat();
        let loss = ssl_step(method.as_mut(), &TwoViewBatch::new(&va, &vb), &mut opt);
        prop_assert!(loss.is_finite(), "{kind}: loss {loss}");
        prop_assert!(method.encoder().to_flat() != before, "{kind}: frozen encoder");
        prop_assert!(method.parameters().iter().all(|p| p.all_finite()), "{kind}: NaN params");
    }

    #[test]
    fn arena_recycled_simclr_training_is_bit_identical((va, vb) in views(8, 64), seed in 0u64..100) {
        // A loop of ssl_step_in on one persistent arena must reproduce the
        // fresh-graph ssl_step loop bit for bit: the recycled tape storage is
        // an allocation optimization, never a numeric one.
        let cfg = SslConfig::for_input(64).with_seed(seed);
        let mut fresh = create_method(SslKind::SimClr, cfg.clone());
        let mut pooled = create_method(SslKind::SimClr, cfg);
        let mut opt_fresh = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut opt_pooled = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut arena = StepArena::new();
        let batch = TwoViewBatch::new(&va, &vb);
        for step in 0..3 {
            let lf = ssl_step(fresh.as_mut(), &batch, &mut opt_fresh);
            let lp = ssl_step_in(pooled.as_mut(), &batch, &mut opt_pooled, &mut arena);
            prop_assert_eq!(lf.to_bits(), lp.to_bits(), "loss diverged at step {}", step);
        }
        let fresh_flat = fresh.to_flat();
        let pooled_flat = pooled.to_flat();
        prop_assert_eq!(fresh_flat.len(), pooled_flat.len());
        for (a, b) in fresh_flat.iter().zip(pooled_flat.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "params diverged: {} vs {}", a, b);
        }
    }

    #[test]
    fn encoder_width_is_architecture_invariant(kind_idx in 0usize..SslKind::ALL.len()) {
        let kind = SslKind::ALL[kind_idx];
        let cfg = SslConfig::for_input(64);
        let method = create_method(kind, cfg.clone());
        prop_assert_eq!(method.encoder().input_dim(), 64);
        prop_assert_eq!(method.encoder().output_dim(), cfg.repr_dim());
    }
}
