//! SimCLR (Chen et al., ICML 2020): contrastive learning with the NT-Xent
//! objective over in-batch negatives.
//!
//! This is the SSL backbone behind the paper's strongest variant,
//! *Calibre (SimCLR)* — §V-E argues NT-Xent's inter/intra-sample structure is
//! what cooperates best with the prototype regularizers.

use crate::losses::nt_xent;
use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};

/// The SimCLR method: encoder + projector trained with NT-Xent.
#[derive(Debug, Clone)]
pub struct SimClr {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
}

impl SimClr {
    /// Creates a SimCLR model from a configuration (deterministic in
    /// `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        SimClr {
            config,
            encoder,
            projector,
        }
    }

    /// The projector head (not exchanged with the server).
    pub fn projector(&self) -> &Mlp {
        &self.projector
    }
}

impl Module for SimClr {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p
    }
}

impl SslMethod for SimClr {
    fn name(&self) -> &'static str {
        "SimCLR"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("simclr_forward");
        let mut binding = Binding::new();
        // Bind each parameter once; both views share the leaves so their
        // gradients accumulate (matches Module::parameters order).
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);
        let ssl_loss = nt_xent(&mut graph, h_e, h_o, self.config.tau);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: Vec::new(),
        }
    }

    fn post_step(&mut self, _ssl_graph: &SslGraph) {
        // SimCLR has no auxiliary state.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn toy_batch(seed: u64) -> (Matrix, Matrix) {
        let mut r = seeded(seed);
        let base = normal_matrix(&mut r, 16, 64, 1.0);
        let va = base.map(|v| v + 0.05);
        let vb = base.map(|v| v - 0.05);
        (va, vb)
    }

    #[test]
    fn construction_is_deterministic() {
        let a = SimClr::new(SslConfig::for_input(64));
        let b = SimClr::new(SslConfig::for_input(64));
        assert_eq!(a.to_flat(), b.to_flat());
    }

    #[test]
    fn graph_exposes_expected_shapes() {
        let m = SimClr::new(SslConfig::for_input(64));
        let (va, vb) = toy_batch(1);
        let batch = TwoViewBatch::new(&va, &vb);
        let sslg = m.build_graph(&batch);
        assert_eq!(sslg.graph.value(sslg.z_e).shape(), (16, 32));
        assert_eq!(sslg.graph.value(sslg.h_e).shape(), (16, 16));
        assert_eq!(sslg.graph.value(sslg.ssl_loss).shape(), (1, 1));
        assert_eq!(sslg.binding.len(), m.parameters().len());
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = SimClr::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let (va, vb) = toy_batch(2);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..20 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(
            last < first,
            "SimCLR loss should decrease: {first} -> {last}"
        );
    }

    #[test]
    fn step_changes_encoder_and_projector() {
        let mut m = SimClr::new(SslConfig::for_input(64));
        let before_enc = m.encoder().to_flat();
        let before_proj = m.projector().to_flat();
        let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
        let (va, vb) = toy_batch(3);
        ssl_step(&mut m, &TwoViewBatch::new(&va, &vb), &mut opt);
        assert_ne!(m.encoder().to_flat(), before_enc);
        assert_ne!(m.projector().to_flat(), before_proj);
    }
}
