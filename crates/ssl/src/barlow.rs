//! Barlow Twins (Zbontar et al., ICML 2021): redundancy reduction.
//!
//! The two views' projections are standardized per feature dimension across
//! the batch; their cross-correlation matrix `C` is pushed toward the
//! identity — diagonal terms toward 1 (invariance) and off-diagonal terms
//! toward 0 (decorrelation). No negatives, no momentum encoder, no
//! stop-gradient.
//!
//! Not part of the paper's method set — included as a library extension
//! (the `SslMethod` trait makes it a drop-in Calibre backbone like the
//! other six).
//!
//! Implementation note: per-column standardization is expressed with tape
//! primitives as `transpose → layer_norm → transpose`, which normalizes
//! each feature across the batch exactly as the original method requires.

use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};

/// Off-diagonal weight λ of the Barlow Twins loss (the original paper's
/// 5e-3 is tuned for 8192-d projections; this is the standard re-scaling
/// for small projectors).
const LAMBDA: f32 = 0.05;

/// The Barlow Twins method: encoder + projector trained to make the
/// cross-correlation of the two views' standardized projections equal to
/// the identity.
#[derive(Debug, Clone)]
pub struct BarlowTwins {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
}

impl BarlowTwins {
    /// Creates a Barlow Twins model (deterministic in `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        BarlowTwins {
            config,
            encoder,
            projector,
        }
    }

    /// The off-diagonal loss weight λ.
    pub fn lambda() -> f32 {
        LAMBDA
    }
}

impl Module for BarlowTwins {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p
    }
}

impl SslMethod for BarlowTwins {
    fn name(&self) -> &'static str {
        "BarlowTwins"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("barlow_forward");
        let n = batch.len();
        let d = self.config.projection_dim;
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);

        // Standardize each feature dimension across the batch:
        // transpose → per-row layer norm → transpose.
        let he_t = graph.transpose(h_e);
        let he_std_t = graph.layer_norm(he_t);
        let he_std = graph.transpose(he_std_t);
        let ho_t = graph.transpose(h_o);
        let ho_std_t = graph.layer_norm(ho_t);
        let ho_std = graph.transpose(ho_std_t);

        // Cross-correlation C = (Âᵀ B̂) / N, (d, d).
        let he_std_t2 = graph.transpose(he_std);
        let cross = graph.matmul(he_std_t2, ho_std);
        let c = graph.scale(cross, 1.0 / n as f32);

        // Loss = Σᵢ (1 − Cᵢᵢ)² + λ Σ_{i≠j} Cᵢⱼ².
        let identity = graph.constant(Matrix::identity(d));
        let diff = graph.sub(c, identity);
        let sq = graph.mul(diff, diff);
        // Off-diagonal part: zero the diagonal of the squared deviations.
        let off_diag_sq = graph.mask_diagonal(sq, 0.0);
        let off_sum = graph.sum_all(off_diag_sq);
        let all_sum = graph.sum_all(sq);
        // Diagonal sum = total − off-diagonal.
        let neg_off = graph.scale(off_sum, -1.0);
        let diag_sum = graph.add(all_sum, neg_off);
        let weighted_off = graph.scale(off_sum, LAMBDA);
        let ssl_loss = graph.add(diag_sum, weighted_off);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: Vec::new(),
        }
    }

    fn post_step(&mut self, _ssl_graph: &SslGraph) {
        // Barlow Twins has no auxiliary state.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn batch_pair(seed: u64, n: usize) -> (Matrix, Matrix) {
        let mut r = seeded(seed);
        let base = normal_matrix(&mut r, n, 64, 1.0);
        (base.map(|v| v + 0.04), base.map(|v| v - 0.04))
    }

    #[test]
    fn loss_is_finite_and_nonnegative() {
        let m = BarlowTwins::new(SslConfig::for_input(64));
        let (va, vb) = batch_pair(1, 16);
        let sslg = m.build_graph(&TwoViewBatch::new(&va, &vb));
        let v = sslg.graph.value(sslg.ssl_loss).get(0, 0);
        assert!(v.is_finite() && v >= 0.0, "loss {v}");
    }

    #[test]
    fn identical_views_have_lower_loss_than_independent_views() {
        let m = BarlowTwins::new(SslConfig::for_input(64));
        let mut r = seeded(2);
        let base = normal_matrix(&mut r, 16, 64, 1.0);
        let noise = normal_matrix(&mut r, 16, 64, 1.0);

        let aligned = m.build_graph(&TwoViewBatch::new(&base, &base));
        let aligned_loss = aligned.graph.value(aligned.ssl_loss).get(0, 0);

        let independent = m.build_graph(&TwoViewBatch::new(&base, &noise));
        let independent_loss = independent.graph.value(independent.ssl_loss).get(0, 0);

        assert!(
            aligned_loss < independent_loss,
            "aligned {aligned_loss} should beat independent {independent_loss}"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = BarlowTwins::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.02, 0.9));
        let (va, vb) = batch_pair(3, 16);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..25 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(
            last < first,
            "Barlow loss should decrease: {first} -> {last}"
        );
    }

    #[test]
    fn has_no_extra_state_beyond_encoder_and_projector() {
        let m = BarlowTwins::new(SslConfig::for_input(64));
        assert_eq!(
            m.num_scalars(),
            m.encoder.num_scalars() + m.projector.num_scalars()
        );
    }
}
