//! Differentiable loss primitives shared by the SSL methods and Calibre's
//! prototype regularizers.
//!
//! - [`nt_xent`]: the normalized-temperature cross-entropy of SimCLR
//!   (Chen et al., 2020) — also reused by Calibre's `L_p` regularizer on
//!   prototype pairs (Algorithm 1, line 12).
//! - [`neg_cosine`]: negative cosine similarity, the BYOL/SimSiam objective.
//! - [`sinkhorn`]: the Sinkhorn-Knopp balanced-assignment iteration of SwAV,
//!   computed on detached score matrices.

use calibre_tensor::{Graph, Matrix, Node};

/// NT-Xent (InfoNCE) loss over two aligned views.
///
/// `h_e` and `h_o` are `(N, d)` projection nodes where row `i` of each is a
/// view of the same underlying sample. Rows are L2-normalized internally;
/// similarities are scaled by `1/tau`; self-similarity is masked out; each
/// row's positive is its partner row in the other view.
///
/// Returns a scalar loss node.
///
/// # Panics
///
/// Panics if the two views have different shapes or fewer than 2 rows
/// (a contrastive loss needs at least one negative).
pub fn nt_xent(g: &mut Graph, h_e: Node, h_o: Node, tau: f32) -> Node {
    let span = calibre_telemetry::span("nt_xent");
    let (n, d) = g.value(h_e).shape();
    span.add_items(n as u64);
    assert_eq!(g.value(h_o).shape(), (n, d), "view shape mismatch");
    assert!(n >= 2, "NT-Xent needs at least 2 samples, got {n}");
    let h = g.concat_rows(h_e, h_o);
    let hn = g.row_l2_normalize(h);
    let hnt = g.transpose(hn);
    let sims = g.matmul(hn, hnt);
    let scaled = g.scale(sims, 1.0 / tau);
    let masked = g.mask_diagonal(scaled, -1e9);
    // Row i's positive is row i+N; row N+i's positive is row i.
    let targets: Vec<usize> = (0..2 * n).map(|i| (i + n) % (2 * n)).collect();
    g.cross_entropy(masked, &targets)
}

/// Negative mean cosine similarity between aligned rows of `p` and `t`
/// (both L2-normalized internally). Standard BYOL/SimSiam objective; the
/// caller is responsible for detaching / EMA-copying `t`.
///
/// Returns a scalar loss node in `[-1, 1]` (lower is better).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn neg_cosine(g: &mut Graph, p: Node, t: Node) -> Node {
    assert_eq!(
        g.value(p).shape(),
        g.value(t).shape(),
        "neg_cosine shape mismatch"
    );
    let pn = g.row_l2_normalize(p);
    let tn = g.row_l2_normalize(t);
    let dots = g.rowwise_dot(pn, tn);
    let mean = g.mean_all(dots);
    g.scale(mean, -1.0)
}

/// Sinkhorn-Knopp balanced assignment (SwAV, Caron et al. 2020).
///
/// Given a detached score matrix `(N, K)`, returns soft assignments `Q` of
/// the same shape whose rows sum to 1 and whose columns are (approximately)
/// balanced at `N/K` mass each.
///
/// # Panics
///
/// Panics if `scores` is empty or `iterations == 0`.
pub fn sinkhorn(scores: &Matrix, epsilon: f32, iterations: usize) -> Matrix {
    assert!(scores.rows() > 0 && scores.cols() > 0, "empty score matrix");
    assert!(iterations > 0, "need at least one Sinkhorn iteration");
    let (n, k) = scores.shape();
    // Stabilize per row: Sinkhorn's row-normalization step absorbs any
    // per-row multiplicative factor, so subtracting each row's max is
    // semantics-preserving and prevents whole rows underflowing to zero
    // when epsilon is small.
    let mut q = scores.clone();
    for r in 0..n {
        let row_max = q.row(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in q.row_mut(r) {
            *v = ((*v - row_max) / epsilon).exp();
        }
    }

    for _ in 0..iterations {
        // Normalize columns to total 1/K.
        for c in 0..k {
            let sum: f32 = (0..n).map(|r| q.get(r, c)).sum();
            if sum > 1e-12 {
                let scale = 1.0 / (k as f32 * sum);
                for r in 0..n {
                    q.set(r, c, q.get(r, c) * scale);
                }
            }
        }
        // Normalize rows to total 1/N.
        for r in 0..n {
            let sum: f32 = q.row(r).iter().sum();
            if sum > 1e-12 {
                let scale = 1.0 / (n as f32 * sum);
                for v in q.row_mut(r) {
                    *v *= scale;
                }
            }
        }
    }
    // Return per-row distributions (multiply by N).
    q.scale(n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng::{normal_matrix, seeded};

    #[test]
    fn nt_xent_lower_for_aligned_views() {
        let mut r = seeded(1);
        let base = normal_matrix(&mut r, 8, 16, 1.0);
        // Aligned: both views nearly identical per row.
        let mut g = Graph::new();
        let a = g.constant(base.clone());
        let b = g.constant(base.map(|v| v + 0.01));
        let aligned = nt_xent(&mut g, a, b, 0.5);
        let aligned_val = g.value(aligned).get(0, 0);

        // Misaligned: second view is unrelated noise.
        let noise = normal_matrix(&mut r, 8, 16, 1.0);
        let mut g2 = Graph::new();
        let a2 = g2.constant(base);
        let b2 = g2.constant(noise);
        let misaligned = nt_xent(&mut g2, a2, b2, 0.5);
        let misaligned_val = g2.value(misaligned).get(0, 0);

        assert!(
            aligned_val < misaligned_val,
            "aligned {aligned_val} should beat misaligned {misaligned_val}"
        );
    }

    #[test]
    fn nt_xent_gradient_pulls_views_together() {
        let mut r = seeded(2);
        let e = normal_matrix(&mut r, 4, 8, 1.0);
        let o = normal_matrix(&mut r, 4, 8, 1.0);
        let mut g = Graph::new();
        let en = g.leaf(e.clone());
        let on = g.constant(o.clone());
        let loss = nt_xent(&mut g, en, on, 0.5);
        g.backward(loss);
        let grad = g.grad(en).unwrap();
        // A gradient step must reduce the loss.
        let stepped = e.add(&grad.scale(-0.5));
        let mut g2 = Graph::new();
        let en2 = g2.constant(stepped);
        let on2 = g2.constant(o);
        let loss2 = nt_xent(&mut g2, en2, on2, 0.5);
        assert!(g2.value(loss2).get(0, 0) < g.value(loss).get(0, 0));
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn nt_xent_rejects_single_sample() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::zeros(1, 4));
        let b = g.constant(Matrix::zeros(1, 4));
        nt_xent(&mut g, a, b, 0.5);
    }

    #[test]
    fn neg_cosine_is_minus_one_for_identical_rows() {
        let mut r = seeded(3);
        let x = normal_matrix(&mut r, 5, 7, 1.0);
        let mut g = Graph::new();
        let a = g.constant(x.clone());
        let b = g.constant(x);
        let loss = neg_cosine(&mut g, a, b);
        assert!((g.value(loss).get(0, 0) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn neg_cosine_is_plus_one_for_opposite_rows() {
        let mut r = seeded(4);
        let x = normal_matrix(&mut r, 5, 7, 1.0);
        let mut g = Graph::new();
        let a = g.constant(x.clone());
        let b = g.constant(x.scale(-1.0));
        let loss = neg_cosine(&mut g, a, b);
        assert!((g.value(loss).get(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn neg_cosine_gradient_aligns_predictor() {
        let mut r = seeded(5);
        let p = normal_matrix(&mut r, 6, 4, 1.0);
        let t = normal_matrix(&mut r, 6, 4, 1.0);
        let mut g = Graph::new();
        let pn = g.leaf(p.clone());
        let tn = g.constant(t.clone());
        let loss = neg_cosine(&mut g, pn, tn);
        g.backward(loss);
        let stepped = p.add(&g.grad(pn).unwrap().scale(-1.0));
        let mut g2 = Graph::new();
        let pn2 = g2.constant(stepped);
        let tn2 = g2.constant(t);
        let loss2 = neg_cosine(&mut g2, pn2, tn2);
        assert!(g2.value(loss2).get(0, 0) < g.value(loss).get(0, 0));
    }

    #[test]
    fn sinkhorn_rows_are_distributions() {
        let mut r = seeded(6);
        let scores = normal_matrix(&mut r, 12, 4, 1.0);
        let q = sinkhorn(&scores, 0.05, 3);
        for row in 0..12 {
            let sum: f32 = q.row(row).iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "row {row} sums to {sum}");
            assert!(q.row(row).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn sinkhorn_balances_columns() {
        let mut r = seeded(7);
        // Scores biased toward column 0 (cosine-similarity scale, as in SwAV).
        let scores = normal_matrix(&mut r, 20, 4, 0.1)
            .add_row_vec(&Matrix::row_vector(&[1.0, 0.0, 0.0, 0.0]));
        let q = sinkhorn(&scores, 0.5, 10);
        // Column masses should approach N/K = 5 despite the bias.
        for c in 0..4 {
            let mass: f32 = (0..20).map(|r_| q.get(r_, c)).sum();
            assert!((mass - 5.0).abs() < 1.0, "column {c} mass {mass}");
        }
    }

    #[test]
    fn sinkhorn_prefers_high_scores() {
        // With mild balancing, each row's argmax should follow its score.
        let scores = Matrix::from_rows(&[
            vec![4.0, 0.0, 0.0],
            vec![0.0, 4.0, 0.0],
            vec![0.0, 0.0, 4.0],
        ]);
        let q = sinkhorn(&scores, 0.1, 3);
        for i in 0..3 {
            let row = q.row(i);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax, i);
        }
    }
}
