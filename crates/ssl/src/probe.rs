//! Linear probing: train a linear classifier on frozen features.
//!
//! This is the paper's entire personalization stage — "the utilization of a
//! lightweight personalized model, specifically a linear classifier, would
//! be sufficient" (§I). Every client runs exactly this on features extracted
//! by the frozen global encoder: 10 epochs of SGD, lr 0.05, batch size 32
//! (§V-A, learning settings).

use calibre_data::batch::batches;
use calibre_tensor::nn::{Binding, Linear};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, Matrix, StepArena};
use serde::{Deserialize, Serialize};

/// Hyperparameters of the linear probe (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Training epochs (10 in the paper).
    pub epochs: usize,
    /// SGD learning rate (0.05 in the paper).
    pub lr: f32,
    /// Mini-batch size (32 in the paper).
    pub batch_size: usize,
    /// Shuffling/initialization seed.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            epochs: 10,
            lr: 0.05,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Trains a linear head on frozen `features` with cross-entropy.
///
/// Returns the trained head.
///
/// # Panics
///
/// Panics if `features` is empty, or label/feature counts disagree, or any
/// label is `>= num_classes`.
pub fn train_linear_probe(
    features: &Matrix,
    labels: &[usize],
    num_classes: usize,
    config: &ProbeConfig,
) -> Linear {
    let mut rng_ = rng::seeded(config.seed);
    let head = Linear::new(features.cols(), num_classes, &mut rng_);
    train_linear_probe_from(head, features, labels, num_classes, config)
}

/// Trains a linear head starting from an existing head (fine-tuning — the
/// `-FT` evaluation mode of FedAvg-FT / SCAFFOLD-FT, and the local-head
/// refinement of FedRep / FedPer).
///
/// # Panics
///
/// Panics under the same conditions as [`train_linear_probe`], or if the
/// initial head's shape does not match `(features.cols(), num_classes)`.
pub fn train_linear_probe_from(
    mut head: Linear,
    features: &Matrix,
    labels: &[usize],
    num_classes: usize,
    config: &ProbeConfig,
) -> Linear {
    assert!(features.rows() > 0, "cannot probe zero samples");
    assert_eq!(features.rows(), labels.len(), "one label per feature row");
    assert!(
        labels.iter().all(|&l| l < num_classes),
        "labels must be < num_classes"
    );
    assert_eq!(
        head.input_dim(),
        features.cols(),
        "head input width mismatch"
    );
    assert_eq!(head.output_dim(), num_classes, "head output width mismatch");
    let mut rng_ = rng::seeded(config.seed);
    let mut opt = Sgd::new(SgdConfig::with_lr(config.lr));

    let mut arena = StepArena::new();
    for _ in 0..config.epochs {
        for batch in batches(features.rows(), config.batch_size, false, &mut rng_) {
            let x = features.gather_rows(&batch);
            let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            let mut g = arena.take();
            let xn = g.constant(x);
            let mut binding = Binding::new();
            let logits = head.forward(&mut g, xn, &mut binding);
            let loss = g.cross_entropy(logits, &y);
            g.backward(loss);
            opt.step_graph(&mut head, &g, &binding);
            arena.put(g);
        }
    }
    head
}

/// Classification accuracy of a linear head on frozen features.
///
/// Returns a value in `[0, 1]`; returns 0 for an empty test set.
///
/// # Panics
///
/// Panics if label/feature counts disagree.
pub fn probe_accuracy(head: &Linear, features: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(features.rows(), labels.len(), "one label per feature row");
    if features.rows() == 0 {
        return 0.0;
    }
    let logits = head.infer(features);
    let correct = (0..logits.rows())
        .filter(|&r| {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                // analyze:allow(no-expect) -- a logits row always has at
                // least one class column.
                .expect("non-empty row");
            pred == labels[r]
        })
        .count();
    correct as f32 / features.rows() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::nn::Module;
    use calibre_tensor::rng::{normal_matrix, seeded};

    /// Linearly separable two-class features.
    fn separable(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut r = seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2 {
            let noise = normal_matrix(&mut r, n_per, 4, 0.3);
            for i in 0..n_per {
                let mut row: Vec<f32> = noise.row(i).to_vec();
                row[0] += if class == 0 { -2.0 } else { 2.0 };
                rows.push(row);
                labels.push(class);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn probe_learns_separable_data() {
        let (x, y) = separable(40, 1);
        let head = train_linear_probe(&x, &y, 2, &ProbeConfig::default());
        let acc = probe_accuracy(&head, &x, &y);
        assert!(acc > 0.95, "train accuracy {acc} on separable data");
    }

    #[test]
    fn probe_generalizes_to_fresh_samples() {
        let (x_train, y_train) = separable(40, 2);
        let (x_test, y_test) = separable(20, 3);
        let head = train_linear_probe(&x_train, &y_train, 2, &ProbeConfig::default());
        let acc = probe_accuracy(&head, &x_test, &y_test);
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn probe_is_deterministic_in_seed() {
        let (x, y) = separable(20, 4);
        let cfg = ProbeConfig::default();
        let a = train_linear_probe(&x, &y, 2, &cfg);
        let b = train_linear_probe(&x, &y, 2, &cfg);
        assert_eq!(a.to_flat(), b.to_flat());
    }

    #[test]
    fn accuracy_on_random_features_is_chance_level() {
        let mut r = seeded(5);
        let x = normal_matrix(&mut r, 400, 8, 1.0);
        let y: Vec<usize> = (0..400).map(|i| i % 4).collect();
        let head = train_linear_probe(
            &x,
            &y,
            4,
            &ProbeConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let acc = probe_accuracy(&head, &x, &y);
        assert!(
            acc < 0.5,
            "random features should stay near chance, got {acc}"
        );
    }

    #[test]
    fn empty_test_set_scores_zero() {
        let (x, y) = separable(10, 6);
        let head = train_linear_probe(&x, &y, 2, &ProbeConfig::default());
        assert_eq!(probe_accuracy(&head, &Matrix::zeros(0, 4), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be < num_classes")]
    fn probe_rejects_out_of_range_labels() {
        let (x, _) = separable(5, 7);
        let bad = vec![9; 10];
        train_linear_probe(&x, &bad, 2, &ProbeConfig::default());
    }
}
