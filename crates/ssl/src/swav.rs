//! SwAV (Caron et al., NeurIPS 2020): online clustering with learnable
//! prototypes and Sinkhorn-balanced swapped assignments.

use crate::losses::sinkhorn;
use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};

/// The SwAV method: encoder + projector + a learnable prototype bank.
///
/// Each view's normalized projection is scored against the prototypes; the
/// *other* view's Sinkhorn-balanced assignment is the soft target ("swapped
/// prediction").
#[derive(Debug, Clone)]
pub struct SwAv {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
    /// Prototype bank, `(projection_dim, K)`, columns kept unit-norm.
    prototypes: Matrix,
}

impl SwAv {
    /// Creates a SwAV model (deterministic in `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        let prototypes =
            rng::normal_matrix(&mut r, config.projection_dim, config.num_prototypes, 1.0);
        let mut swav = SwAv {
            config,
            encoder,
            projector,
            prototypes,
        };
        swav.normalize_prototypes();
        swav
    }

    /// The prototype bank.
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Renormalizes prototype columns to unit length (SwAV does this after
    /// every optimizer step).
    fn normalize_prototypes(&mut self) {
        let k = self.prototypes.cols();
        for c in 0..k {
            let norm: f32 = (0..self.prototypes.rows())
                .map(|r| self.prototypes.get(r, c).powi(2))
                .sum::<f32>()
                .sqrt();
            if norm > 1e-12 {
                for r in 0..self.prototypes.rows() {
                    let v = self.prototypes.get(r, c) / norm;
                    self.prototypes.set(r, c, v);
                }
            }
        }
    }
}

impl Module for SwAv {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p.push(&self.prototypes);
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p.push(&mut self.prototypes);
        p
    }
}

impl SslMethod for SwAv {
    fn name(&self) -> &'static str {
        "SwAV"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("swav_forward");
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);
        let protos = graph.leaf_from(&self.prototypes);
        binding.push(protos);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);

        let hn_e = graph.row_l2_normalize(h_e);
        let hn_o = graph.row_l2_normalize(h_o);
        let scores_e = graph.matmul(hn_e, protos);
        let scores_o = graph.matmul(hn_o, protos);

        // Sinkhorn targets from the *detached* scores of the other view.
        let q_e = sinkhorn(
            graph.value(scores_e),
            self.config.sinkhorn_epsilon,
            self.config.sinkhorn_iterations,
        );
        let q_o = sinkhorn(
            graph.value(scores_o),
            self.config.sinkhorn_epsilon,
            self.config.sinkhorn_iterations,
        );

        let logits_e = graph.scale(scores_e, 1.0 / self.config.tau);
        let logits_o = graph.scale(scores_o, 1.0 / self.config.tau);
        let ce_e = graph.cross_entropy_soft(logits_e, q_o);
        let ce_o = graph.cross_entropy_soft(logits_o, q_e);
        let sum = graph.add(ce_e, ce_o);
        let ssl_loss = graph.scale(sum, 0.5);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: Vec::new(),
        }
    }

    fn post_step(&mut self, _ssl_graph: &SslGraph) {
        self.normalize_prototypes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    #[test]
    fn prototype_columns_are_unit_norm() {
        let m = SwAv::new(SslConfig::for_input(64));
        for c in 0..m.prototypes().cols() {
            let norm: f32 = m
                .prototypes()
                .col(c)
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "column {c} norm {norm}");
        }
    }

    #[test]
    fn prototypes_stay_normalized_after_steps() {
        let mut m = SwAv::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
        let mut r = seeded(1);
        let base = normal_matrix(&mut r, 12, 64, 1.0);
        let batch_a = base.map(|v| v + 0.05);
        let batch_b = base.map(|v| v - 0.05);
        for _ in 0..3 {
            ssl_step(&mut m, &TwoViewBatch::new(&batch_a, &batch_b), &mut opt);
        }
        for c in 0..m.prototypes().cols() {
            let norm: f32 = m
                .prototypes()
                .col(c)
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = SwAv::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut r = seeded(2);
        let base = normal_matrix(&mut r, 16, 64, 1.0);
        let va = base.map(|v| v + 0.03);
        let vb = base.map(|v| v - 0.03);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..25 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(last < first, "SwAV loss should decrease: {first} -> {last}");
    }

    #[test]
    fn prototypes_are_trainable_parameters() {
        let m = SwAv::new(SslConfig::for_input(64));
        let expected = m.encoder.num_scalars() + m.projector.num_scalars() + m.prototypes.len();
        assert_eq!(m.num_scalars(), expected);
    }
}
