//! VICReg (Bardes, Ponce & LeCun, ICLR 2022): variance-invariance-covariance
//! regularization.
//!
//! Three terms over the two views' projections:
//!
//! - **invariance**: mean squared error between the views;
//! - **variance**: a hinge keeping every feature's batch standard deviation
//!   above 1 (collapse prevention);
//! - **covariance**: off-diagonal entries of each view's covariance matrix
//!   pushed to zero (decorrelation).
//!
//! Library extension (not in the paper's method set); like Barlow Twins it
//! needs no negatives, momentum encoder or stop-gradient.

use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Graph, Matrix, Node};

/// Invariance weight (λ). The original paper uses 25 with LARS at large
/// batch; at our scale and plain SGD that diverges, so the standard ratios
/// are kept at a 5× smaller magnitude.
const INVARIANCE: f32 = 5.0;
/// Variance-hinge weight (μ).
const VARIANCE: f32 = 5.0;
/// Covariance weight (ν).
const COVARIANCE: f32 = 0.2;

/// The VICReg method: encoder + projector with the three-term objective.
#[derive(Debug, Clone)]
pub struct VicReg {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
}

impl VicReg {
    /// Creates a VICReg model (deterministic in `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        VicReg {
            config,
            encoder,
            projector,
        }
    }

    /// The three loss weights `(invariance, variance, covariance)`.
    pub fn weights() -> (f32, f32, f32) {
        (INVARIANCE, VARIANCE, COVARIANCE)
    }
}

/// Variance hinge `mean_d max(0, 1 − std_d)` over the batch, plus the
/// covariance penalty `Σ_{i≠j} Cov_{ij}² / d`, both differentiable.
fn variance_covariance_terms(g: &mut Graph, h: Node, n: usize, d: usize) -> (Node, Node) {
    // Center the features: h − column means. `group_mean_rows` with a single
    // all-zero group averages over the batch dimension, giving `(1, d)`.
    let all_one_group = vec![0usize; n];
    let col_means = g.group_mean_rows(h, &all_one_group, 1);
    let neg_means = g.scale(col_means, -1.0);
    let centered = g.add_row(h, neg_means);

    // Per-feature variance: mean of squared centered values over the batch.
    let sq = g.mul(centered, centered);
    let var_row = g.group_mean_rows(sq, &all_one_group, 1); // (1, d)
                                                            // std = sqrt(var + eps); hinge = mean(max(0, 1 - std)).
    let eps = g.add_scalar(var_row, 1e-4);
    let log_var = g.log(eps);
    let half_log = g.scale(log_var, 0.5);
    let std = g.exp(half_log); // sqrt via exp(0.5 ln x)
    let neg_std = g.scale(std, -1.0);
    let one_minus = g.add_scalar(neg_std, 1.0);
    let hinge = g.relu(one_minus);
    let variance_term = g.mean_all(hinge);

    // Covariance: C = centeredᵀ centered / (n − 1); penalize off-diagonal.
    let centered_t = g.transpose(centered);
    let cov = g.matmul(centered_t, centered);
    let cov = g.scale(cov, 1.0 / (n.max(2) as f32 - 1.0));
    let off = g.mask_diagonal(cov, 0.0);
    let off_sq = g.mul(off, off);
    let off_sum = g.sum_all(off_sq);
    let covariance_term = g.scale(off_sum, 1.0 / d as f32);

    (variance_term, covariance_term)
}

impl Module for VicReg {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p
    }
}

impl SslMethod for VicReg {
    fn name(&self) -> &'static str {
        "VICReg"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(&self, batch: &TwoViewBatch<'_>, mut graph: Graph) -> SslGraph {
        let _span = calibre_telemetry::span("vicreg_forward");
        let n = batch.len();
        let d = self.config.projection_dim;
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);

        // Invariance: MSE between the two views.
        let diff = graph.sub(h_e, h_o);
        let diff_sq = graph.mul(diff, diff);
        let invariance = graph.mean_all(diff_sq);

        // Variance + covariance terms per view.
        let (var_e, cov_e) = variance_covariance_terms(&mut graph, h_e, n, d);
        let (var_o, cov_o) = variance_covariance_terms(&mut graph, h_o, n, d);

        let inv_w = graph.scale(invariance, INVARIANCE);
        let var_sum = graph.add(var_e, var_o);
        let var_w = graph.scale(var_sum, VARIANCE / 2.0);
        let cov_sum = graph.add(cov_e, cov_o);
        let cov_w = graph.scale(cov_sum, COVARIANCE / 2.0);
        let partial = graph.add(inv_w, var_w);
        let ssl_loss = graph.add(partial, cov_w);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: Vec::new(),
        }
    }

    fn post_step(&mut self, _ssl_graph: &SslGraph) {
        // VICReg has no auxiliary state.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn batch_pair(seed: u64, n: usize) -> (Matrix, Matrix) {
        let mut r = seeded(seed);
        let base = normal_matrix(&mut r, n, 64, 1.0);
        (base.map(|v| v + 0.04), base.map(|v| v - 0.04))
    }

    #[test]
    fn loss_is_finite_and_nonnegative() {
        let m = VicReg::new(SslConfig::for_input(64));
        let (va, vb) = batch_pair(1, 24);
        let sslg = m.build_graph(&TwoViewBatch::new(&va, &vb));
        let v = sslg.graph.value(sslg.ssl_loss).get(0, 0);
        assert!(v.is_finite() && v >= 0.0, "loss {v}");
    }

    #[test]
    fn identical_views_zero_the_invariance_term() {
        // With identical views only variance + covariance remain; a batch of
        // identical *rows* would maximize the variance hinge instead.
        let m = VicReg::new(SslConfig::for_input(64));
        let mut r = seeded(2);
        let base = normal_matrix(&mut r, 24, 64, 1.0);
        let same = m.build_graph(&TwoViewBatch::new(&base, &base));
        let same_loss = same.graph.value(same.ssl_loss).get(0, 0);
        let noise = normal_matrix(&mut r, 24, 64, 1.0);
        let diff = m.build_graph(&TwoViewBatch::new(&base, &noise));
        let diff_loss = diff.graph.value(diff.ssl_loss).get(0, 0);
        assert!(
            same_loss < diff_loss,
            "identical views {same_loss} should beat independent {diff_loss}"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = VicReg::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.01, 0.9));
        let (va, vb) = batch_pair(3, 24);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..30 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(
            last < first,
            "VICReg loss should decrease: {first} -> {last}"
        );
    }

    #[test]
    fn collapsed_projections_trigger_the_variance_hinge() {
        // Feed a batch of identical samples: every feature's std is 0, so
        // the variance term must be ≈ 1 per view (hinge fully active).
        let m = VicReg::new(SslConfig::for_input(64));
        let row = normal_matrix(&mut seeded(4), 1, 64, 1.0);
        let collapsed = Matrix::from_rows(&vec![row.row(0).to_vec(); 16]);
        let sslg = m.build_graph(&TwoViewBatch::new(&collapsed, &collapsed));
        let v = sslg.graph.value(sslg.ssl_loss).get(0, 0);
        // invariance = 0, covariance = 0 → loss ≈ VARIANCE · 1.
        assert!(
            (v - VARIANCE).abs() < VARIANCE * 0.1,
            "collapse should cost ≈{VARIANCE}, got {v}"
        );
    }
}
