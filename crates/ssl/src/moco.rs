//! MoCo v2 (He et al., CVPR 2020; Chen et al., 2020): momentum contrast with
//! a queue of negative keys and an EMA key encoder.

use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{ema_update, Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};
use std::collections::VecDeque;

/// The MoCoV2 method: query encoder/projector (trainable), key
/// encoder/projector (EMA), and a FIFO queue of negative keys.
#[derive(Debug, Clone)]
pub struct MoCoV2 {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
    key_encoder: Mlp,
    key_projector: Mlp,
    queue: VecDeque<Vec<f32>>,
}

impl MoCoV2 {
    /// Creates a MoCoV2 model; key networks start as copies of the query
    /// networks and the queue starts empty.
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        let key_encoder = encoder.clone();
        let key_projector = projector.clone();
        MoCoV2 {
            config,
            encoder,
            projector,
            key_encoder,
            key_projector,
            queue: VecDeque::new(),
        }
    }

    /// Current number of queued negative keys.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The queued negatives as a matrix (empty ⇒ zero rows).
    fn queue_matrix(&self) -> Matrix {
        if self.queue.is_empty() {
            return Matrix::zeros(0, self.config.projection_dim);
        }
        let rows: Vec<Vec<f32>> = self.queue.iter().cloned().collect();
        Matrix::from_rows(&rows)
    }

    fn push_keys(&mut self, keys: &Matrix) {
        for r in 0..keys.rows() {
            self.queue.push_back(keys.row(r).to_vec());
            while self.queue.len() > self.config.queue_size {
                self.queue.pop_front();
            }
        }
    }
}

impl Module for MoCoV2 {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p
    }
}

impl SslMethod for MoCoV2 {
    fn name(&self) -> &'static str {
        "MoCoV2"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("moco_forward");
        let n = batch.len();
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        // Queries from both views through the trainable networks.
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);

        // Keys from the EMA networks, normalized, as constants.
        let k_e = self
            .key_projector
            .infer(&self.key_encoder.infer(batch.view_e))
            .row_l2_normalized();
        let k_o = self
            .key_projector
            .infer(&self.key_encoder.infer(batch.view_o))
            .row_l2_normalized();

        // Symmetric InfoNCE: query view e vs key view o and vice versa.
        let queue = self.queue_matrix();
        let q_e = graph.row_l2_normalize(h_e);
        let q_o = graph.row_l2_normalize(h_o);
        let build_logits = |graph: &mut calibre_tensor::Graph, q, keys: &Matrix| {
            // Positive logit: rowwise dot with the aligned key.
            let keys_node = graph.constant_from(keys);
            let l_pos = graph.rowwise_dot(q, keys_node);
            if queue.is_empty() {
                // Fall back to in-batch negatives: q × all keysᵀ with the
                // positive in column 0 handled below via concat ordering.
                let keys_t = graph.constant(keys.transpose());
                let l_all = graph.matmul(q, keys_t);
                let cat = graph.concat_cols(l_pos, l_all);
                graph.scale(cat, 1.0 / self.config.tau)
            } else {
                let queue_t = graph.constant(queue.transpose());
                let l_neg = graph.matmul(q, queue_t);
                let cat = graph.concat_cols(l_pos, l_neg);
                graph.scale(cat, 1.0 / self.config.tau)
            }
        };
        let logits_e = build_logits(&mut graph, q_e, &k_o);
        let logits_o = build_logits(&mut graph, q_o, &k_e);
        let targets = vec![0usize; n];
        let ce_e = graph.cross_entropy(logits_e, &targets);
        let ce_o = graph.cross_entropy(logits_o, &targets);
        let sum = graph.add(ce_e, ce_o);
        let ssl_loss = graph.scale(sum, 0.5);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            // Keys of view o enqueue after the step (one view is enough; this
            // matches the original MoCo bookkeeping).
            aux: vec![k_o],
        }
    }

    fn post_step(&mut self, ssl_graph: &SslGraph) {
        let m = self.config.ema_momentum;
        ema_update(&mut self.key_encoder, &self.encoder, m);
        ema_update(&mut self.key_projector, &self.projector, m);
        if let Some(keys) = ssl_graph.aux.first() {
            self.push_keys(keys);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn batch_pair(seed: u64, n: usize) -> (Matrix, Matrix) {
        let mut r = seeded(seed);
        let base = normal_matrix(&mut r, n, 64, 1.0);
        (base.map(|v| v + 0.04), base.map(|v| v - 0.04))
    }

    #[test]
    fn queue_fills_and_caps() {
        let mut cfg = SslConfig::for_input(64);
        cfg.queue_size = 20;
        let mut m = MoCoV2::new(cfg);
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let (va, vb) = batch_pair(1, 8);
        let batch = TwoViewBatch::new(&va, &vb);
        assert_eq!(m.queue_len(), 0);
        ssl_step(&mut m, &batch, &mut opt);
        assert_eq!(m.queue_len(), 8);
        for _ in 0..5 {
            ssl_step(&mut m, &batch, &mut opt);
        }
        assert_eq!(m.queue_len(), 20, "queue must cap at queue_size");
    }

    #[test]
    fn training_reduces_loss_on_fresh_batches() {
        // MoCo's queue stores keys of *previous* batches as negatives, so a
        // realistic test must feed distinct samples per step (a repeated
        // batch would put the current positives into the queue and make the
        // task degenerate).
        // The CE loss scale grows with the negative count, so the trend is
        // only meaningful once the queue has reached its capacity.
        let mut m = MoCoV2::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut step = 0u64;
        while m.queue_len() < m.config.queue_size {
            let (va, vb) = batch_pair(100 + step, 16);
            ssl_step(&mut m, &TwoViewBatch::new(&va, &vb), &mut opt);
            step += 1;
        }
        let mut losses = Vec::new();
        for _ in 0..25 {
            let (va, vb) = batch_pair(100 + step, 16);
            losses.push(ssl_step(&mut m, &TwoViewBatch::new(&va, &vb), &mut opt));
            step += 1;
        }
        let early: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            late < early,
            "MoCoV2 loss should trend down after queue warmup: {early} -> {late} ({losses:?})"
        );
        // And the full-queue loss must beat the chance level ln(queue+1).
        let chance = ((m.config.queue_size + 1) as f32).ln();
        assert!(
            late < chance,
            "late loss {late} should beat chance {chance}"
        );
    }

    #[test]
    fn key_encoder_is_not_a_trainable_parameter() {
        let m = MoCoV2::new(SslConfig::for_input(64));
        assert_eq!(
            m.num_scalars(),
            m.encoder.num_scalars() + m.projector.num_scalars()
        );
    }

    #[test]
    fn key_networks_track_query_networks() {
        let mut m = MoCoV2::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr(0.2));
        let (va, vb) = batch_pair(3, 8);
        let before_key = m.key_encoder.to_flat();
        ssl_step(&mut m, &TwoViewBatch::new(&va, &vb), &mut opt);
        assert_ne!(m.key_encoder.to_flat(), before_key, "EMA must move keys");
        assert_ne!(
            m.key_encoder.to_flat(),
            m.encoder.to_flat(),
            "keys must lag queries"
        );
    }
}
