//! Shared architecture/hyperparameter configuration for the SSL methods.

use serde::{Deserialize, Serialize};

/// Architecture and hyperparameters shared by all SSL methods.
///
/// The paper uses a ResNet-18 encoder with 512-d representations; this
/// reproduction substitutes an MLP encoder (DESIGN.md §2). Dimensions are
/// scaled down accordingly, but every method reads them from here so all
/// comparisons stay architecture-matched — the same fairness discipline the
/// paper applies ("the fully-connected layers of both networks are
/// substituted with a linear classifier").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SslConfig {
    /// Observation dimensionality (encoder input width).
    pub input_dim: usize,
    /// Encoder hidden widths; the last entry is the representation width
    /// (the paper's 512, scaled down).
    pub encoder_dims: Vec<usize>,
    /// Projector hidden width.
    pub projection_hidden: usize,
    /// Projector output width (contrastive space).
    pub projection_dim: usize,
    /// Predictor hidden width (BYOL / SimSiam).
    pub prediction_hidden: usize,
    /// Softmax temperature for contrastive losses (`τ`, 0.5 in SimCLR).
    pub tau: f32,
    /// EMA momentum for target/key encoders (BYOL / MoCoV2).
    pub ema_momentum: f32,
    /// Negative-queue length (MoCoV2).
    pub queue_size: usize,
    /// Number of learnable prototypes (SwAV) / groups (SMoG).
    pub num_prototypes: usize,
    /// Sinkhorn entropy regularizer (SwAV).
    pub sinkhorn_epsilon: f32,
    /// Sinkhorn iterations (SwAV).
    pub sinkhorn_iterations: usize,
    /// Group-update momentum (SMoG).
    pub group_momentum: f32,
    /// Steps between SMoG group resets (fresh KMeans over recent features).
    pub group_reset_interval: usize,
    /// Seed for parameter initialization.
    pub seed: u64,
}

impl SslConfig {
    /// Default configuration for a given observation width.
    pub fn for_input(input_dim: usize) -> Self {
        SslConfig {
            input_dim,
            encoder_dims: vec![96, 32],
            projection_hidden: 32,
            projection_dim: 16,
            prediction_hidden: 16,
            tau: 0.5,
            ema_momentum: 0.99,
            queue_size: 256,
            num_prototypes: 10,
            sinkhorn_epsilon: 0.05,
            sinkhorn_iterations: 3,
            group_momentum: 0.99,
            group_reset_interval: 50,
            seed: 0,
        }
    }

    /// Representation width (encoder output; the personalized head's input).
    pub fn repr_dim(&self) -> usize {
        *self
            .encoder_dims
            .last()
            // analyze:allow(no-expect) -- an empty encoder_dims is a
            // malformed config; every constructor in this module seeds at
            // least one width, so this is the documented failure surface.
            .expect("encoder needs at least one layer width")
    }

    /// Full encoder layer dimensions including the input width.
    pub fn encoder_layer_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.encoder_dims.len() + 1);
        dims.push(self.input_dim);
        dims.extend_from_slice(&self.encoder_dims);
        dims
    }

    /// Projector layer dimensions (`repr → hidden → projection`).
    pub fn projector_layer_dims(&self) -> Vec<usize> {
        vec![self.repr_dim(), self.projection_hidden, self.projection_dim]
    }

    /// Predictor layer dimensions (`projection → hidden → projection`).
    pub fn predictor_layer_dims(&self) -> Vec<usize> {
        vec![
            self.projection_dim,
            self.prediction_hidden,
            self.projection_dim,
        ]
    }

    /// Returns a copy with a different seed (used to give every federated
    /// client an independently-initialized local model where appropriate).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_dims_are_consistent() {
        let cfg = SslConfig::for_input(64);
        assert_eq!(cfg.encoder_layer_dims(), vec![64, 96, 32]);
        assert_eq!(cfg.repr_dim(), 32);
        assert_eq!(cfg.projector_layer_dims(), vec![32, 32, 16]);
        assert_eq!(cfg.predictor_layer_dims(), vec![16, 16, 16]);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let a = SslConfig::for_input(64);
        let b = a.clone().with_seed(99);
        assert_eq!(a.encoder_dims, b.encoder_dims);
        assert_ne!(a.seed, b.seed);
    }
}
