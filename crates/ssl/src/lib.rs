//! # calibre-ssl
//!
//! Self-supervised learning methods on the `calibre-tensor` autograd
//! substrate, for the Calibre personalized-federated-learning reproduction
//! (ICDCS 2024).
//!
//! **Role in Algorithm 1:** both stages. The federated *training* stage
//! optimizes one of these SSL objectives inside every client's local update;
//! the *personalization* stage is this crate's linear probe
//! ([`train_linear_probe`]) fit on the frozen encoder.
//!
//! Implements the six two-view SSL methods the paper builds on —
//! [`SimClr`], [`Byol`], [`SimSiam`], [`MoCoV2`], [`SwAv`] and [`Smog`] —
//! behind the common [`SslMethod`] trait, plus:
//!
//! - shared loss primitives ([`nt_xent`], [`neg_cosine`], [`sinkhorn`]);
//! - the linear-probe personalization stage ([`train_linear_probe`],
//!   [`probe_accuracy`]);
//! - a string-keyed factory ([`SslKind`], [`create_method`]) used by the
//!   experiment harness.
//!
//! The trait's split between graph construction and parameter update is what
//! lets Calibre splice its prototype regularizers into any method's loss —
//! see the `calibre` crate.
//!
//! # Example: a few SimCLR steps
//!
//! ```
//! use calibre_ssl::{SimClr, SslConfig, TwoViewBatch, ssl_step};
//! use calibre_tensor::optim::{Sgd, SgdConfig};
//! use calibre_tensor::rng;
//!
//! let mut method = SimClr::new(SslConfig::for_input(64));
//! let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
//! let mut r = rng::seeded(0);
//! let base = rng::normal_matrix(&mut r, 8, 64, 1.0);
//! let (va, vb) = (base.map(|v| v + 0.05), base.map(|v| v - 0.05));
//! let loss = ssl_step(&mut method, &TwoViewBatch::new(&va, &vb), &mut opt);
//! assert!(loss.is_finite());
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod barlow;
mod byol;
mod config;
mod losses;
mod method;
mod moco;
mod probe;
mod simclr;
mod simsiam;
mod smog;
mod swav;
mod vicreg;

pub use barlow::BarlowTwins;
pub use byol::Byol;
pub use config::SslConfig;
pub use losses::{neg_cosine, nt_xent, sinkhorn};
pub use method::{extract_features, ssl_step, ssl_step_in, SslGraph, SslMethod, TwoViewBatch};
pub use moco::MoCoV2;
pub use probe::{probe_accuracy, train_linear_probe, train_linear_probe_from, ProbeConfig};
pub use simclr::SimClr;
pub use simsiam::SimSiam;
pub use smog::Smog;
pub use swav::SwAv;
pub use vicreg::VicReg;

use serde::{Deserialize, Serialize};

/// Identifier of an SSL method, used by the experiment harness and the
/// federated runtime's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SslKind {
    /// SimCLR (NT-Xent contrastive).
    SimClr,
    /// BYOL (EMA target + predictor).
    Byol,
    /// SimSiam (stop-gradient predictor).
    SimSiam,
    /// MoCo v2 (momentum encoder + negative queue).
    MoCoV2,
    /// SwAV (learnable prototypes + Sinkhorn).
    SwAv,
    /// SMoG (synchronous momentum grouping).
    Smog,
    /// Barlow Twins (redundancy reduction; library extension, not in the
    /// paper's method set).
    BarlowTwins,
    /// VICReg (variance-invariance-covariance; library extension).
    VicReg,
}

impl SslKind {
    /// All methods: the paper's six, then extensions.
    pub const ALL: [SslKind; 8] = [
        SslKind::SimClr,
        SslKind::Byol,
        SslKind::SimSiam,
        SslKind::MoCoV2,
        SslKind::SwAv,
        SslKind::Smog,
        SslKind::BarlowTwins,
        SslKind::VicReg,
    ];

    /// The six methods the paper evaluates (Fig. 3 / Table I), in its order.
    pub const PAPER: [SslKind; 6] = [
        SslKind::SimClr,
        SslKind::Byol,
        SslKind::SimSiam,
        SslKind::MoCoV2,
        SslKind::SwAv,
        SslKind::Smog,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            SslKind::SimClr => "SimCLR",
            SslKind::Byol => "BYOL",
            SslKind::SimSiam => "SimSiam",
            SslKind::MoCoV2 => "MoCoV2",
            SslKind::SwAv => "SwAV",
            SslKind::Smog => "SMoG",
            SslKind::BarlowTwins => "BarlowTwins",
            SslKind::VicReg => "VICReg",
        }
    }
}

impl std::fmt::Display for SslKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates an SSL method by kind.
pub fn create_method(kind: SslKind, config: SslConfig) -> Box<dyn SslMethod> {
    match kind {
        SslKind::SimClr => Box::new(SimClr::new(config)),
        SslKind::Byol => Box::new(Byol::new(config)),
        SslKind::SimSiam => Box::new(SimSiam::new(config)),
        SslKind::MoCoV2 => Box::new(MoCoV2::new(config)),
        SslKind::SwAv => Box::new(SwAv::new(config)),
        SslKind::Smog => Box::new(Smog::new(config)),
        SslKind::BarlowTwins => Box::new(BarlowTwins::new(config)),
        SslKind::VicReg => Box::new(VicReg::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    #[test]
    fn factory_builds_every_method() {
        for kind in SslKind::ALL {
            let m = create_method(kind, SslConfig::for_input(64));
            assert_eq!(m.name(), kind.name());
            assert!(m.num_scalars() > 0);
        }
    }

    #[test]
    fn every_method_trains_through_the_trait_object() {
        for kind in SslKind::ALL {
            // MoCo's loss scale depends on its queue occupancy, so keep its
            // queue tiny here; the dedicated MoCo tests cover full-queue
            // dynamics.
            let mut config = SslConfig::for_input(64);
            config.queue_size = 12;
            let mut m = create_method(kind, config);
            // Conservative learning rate: Barlow Twins' correlation targets
            // move with every fresh batch and destabilize at higher rates.
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.02, 0.9));
            // Fresh samples per step, as in real training: MoCo in
            // particular needs previous batches (its queued negatives) to
            // differ from the current positives.
            let mut losses = Vec::new();
            for step in 0..30u64 {
                let mut r = seeded(1000 + step);
                let base = normal_matrix(&mut r, 24, 64, 1.0);
                let va = base.map(|v| v + 0.04);
                let vb = base.map(|v| v - 0.04);
                losses.push(ssl_step(m.as_mut(), &TwoViewBatch::new(&va, &vb), &mut opt));
            }
            // Skip the first few steps (queue/EMA warmup) when judging the
            // trend, and average 7-step windows against batch noise.
            let early: f32 = losses[3..10].iter().sum::<f32>() / 7.0;
            let late: f32 = losses[losses.len() - 7..].iter().sum::<f32>() / 7.0;
            assert!(
                late <= early,
                "{kind}: loss did not trend down ({early} -> {late}): {losses:?}"
            );
            assert!(
                losses.iter().all(|l| l.is_finite()),
                "{kind}: non-finite loss"
            );
        }
    }

    #[test]
    fn extract_features_uses_encoder_width() {
        let m = create_method(SslKind::SimClr, SslConfig::for_input(64));
        let mut r = seeded(1);
        let x = normal_matrix(&mut r, 5, 64, 1.0);
        let f = extract_features(m.as_ref(), &x);
        assert_eq!(f.shape(), (5, 32));
    }
}
