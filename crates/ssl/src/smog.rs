//! SMoG (Pang et al., ECCV 2022): synchronous momentum grouping.
//!
//! Group centers play the role of instance-level negatives: each sample is
//! assigned to its nearest group (from one view) and classified into that
//! group from the other view. Groups are *not* learned by gradient — they
//! are momentum-updated from assigned features and periodically reset by a
//! fresh KMeans over recently-seen features, which is the "synchronous
//! grouping" of the original method (scaled to this reproduction's batch
//! regime).

use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_cluster::{assign_to_centroids, kmeans, KMeansConfig};
use calibre_tensor::nn::{Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};

/// The SMoG method: encoder + projector with momentum-updated group centers.
#[derive(Debug, Clone)]
pub struct Smog {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
    /// Group centers, `(K, projection_dim)`, rows kept unit-norm.
    groups: Matrix,
    /// Recently seen (normalized) projections, used for group resets.
    feature_buffer: Vec<Vec<f32>>,
    steps: usize,
}

impl Smog {
    /// Creates a SMoG model (deterministic in `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        let groups = rng::normal_matrix(&mut r, config.num_prototypes, config.projection_dim, 1.0)
            .row_l2_normalized();
        Smog {
            config,
            encoder,
            projector,
            groups,
            feature_buffer: Vec::new(),
            steps: 0,
        }
    }

    /// The current group centers.
    pub fn groups(&self) -> &Matrix {
        &self.groups
    }

    /// Number of optimizer steps taken (group resets happen every
    /// `config.group_reset_interval` steps).
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl Module for Smog {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p
    }
}

impl SslMethod for Smog {
    fn name(&self) -> &'static str {
        "SMoG"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("smog_forward");
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);

        let hn_e = graph.row_l2_normalize(h_e);
        let hn_o = graph.row_l2_normalize(h_o);

        // Assignments from view e's (detached) features, classification from
        // view o's logits against the group bank — and symmetrically.
        let assign_e = assign_to_centroids(graph.value(hn_e), &self.groups);
        let assign_o = assign_to_centroids(graph.value(hn_o), &self.groups);
        let groups_t = graph.constant(self.groups.transpose());
        let logits_o = graph.matmul(hn_o, groups_t);
        let logits_o = graph.scale(logits_o, 1.0 / self.config.tau);
        let groups_t2 = graph.constant(self.groups.transpose());
        let logits_e = graph.matmul(hn_e, groups_t2);
        let logits_e = graph.scale(logits_e, 1.0 / self.config.tau);
        let ce_o = graph.cross_entropy(logits_o, &assign_e);
        let ce_e = graph.cross_entropy(logits_e, &assign_o);
        let sum = graph.add(ce_e, ce_o);
        let ssl_loss = graph.scale(sum, 0.5);

        // Post-step needs the normalized features and their assignments to
        // momentum-update the groups.
        let feats = graph.value(hn_e).clone();
        let assign_matrix = Matrix::from_vec(
            assign_e.len(),
            1,
            assign_e.iter().map(|&a| a as f32).collect(),
        );

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: vec![feats, assign_matrix],
        }
    }

    fn post_step(&mut self, ssl_graph: &SslGraph) {
        self.steps += 1;
        let feats = &ssl_graph.aux[0];
        let assigns: Vec<usize> = ssl_graph.aux[1].iter().map(|&v| v as usize).collect();

        // Momentum update of group centers from their assigned features.
        let k = self.groups.rows();
        let mut sums = Matrix::zeros(k, self.groups.cols());
        let mut counts = vec![0usize; k];
        for (r, &a) in assigns.iter().enumerate() {
            counts[a] += 1;
            for (o, &v) in sums.row_mut(a).iter_mut().zip(feats.row(r)) {
                *o += v;
            }
        }
        let m = self.config.group_momentum;
        for (g, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let inv = 1.0 / count as f32;
            for (c, s) in sums.row(g).iter().enumerate() {
                let mean = s * inv;
                let old = self.groups.get(g, c);
                self.groups.set(g, c, m * old + (1.0 - m) * mean);
            }
        }
        self.groups = self.groups.row_l2_normalized();

        // Buffer features; periodically reset groups with a fresh KMeans.
        for r in 0..feats.rows() {
            self.feature_buffer.push(feats.row(r).to_vec());
        }
        let cap = (self.config.num_prototypes * 32).max(256);
        if self.feature_buffer.len() > cap {
            let excess = self.feature_buffer.len() - cap;
            self.feature_buffer.drain(0..excess);
        }
        if self.steps.is_multiple_of(self.config.group_reset_interval)
            && self.feature_buffer.len() >= self.config.num_prototypes
        {
            let data = Matrix::from_rows(&self.feature_buffer);
            let result = kmeans(
                &data,
                &KMeansConfig {
                    k: self.config.num_prototypes,
                    max_iters: 20,
                    tol: 1e-3,
                    seed: self.config.seed ^ self.steps as u64,
                    n_init: 1,
                },
            );
            // Pad (rare: fewer distinct points than groups) by keeping old rows.
            if result.centroids.rows() == self.groups.rows() {
                self.groups = result.centroids.row_l2_normalized();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn batch_pair(seed: u64, n: usize) -> (Matrix, Matrix) {
        let mut r = seeded(seed);
        let base = normal_matrix(&mut r, n, 64, 1.0);
        (base.map(|v| v + 0.04), base.map(|v| v - 0.04))
    }

    #[test]
    fn groups_are_unit_rows() {
        let m = Smog::new(SslConfig::for_input(64));
        for norm in m.groups().row_norms() {
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn groups_move_with_momentum_updates() {
        let mut m = Smog::new(SslConfig::for_input(64));
        let before = m.groups().clone();
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let (va, vb) = batch_pair(1, 16);
        ssl_step(&mut m, &TwoViewBatch::new(&va, &vb), &mut opt);
        assert_ne!(m.groups(), &before, "groups should momentum-update");
    }

    #[test]
    fn group_reset_fires_at_interval() {
        let mut cfg = SslConfig::for_input(64);
        cfg.group_reset_interval = 3;
        cfg.num_prototypes = 4;
        let mut m = Smog::new(cfg);
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let (va, vb) = batch_pair(2, 16);
        for _ in 0..4 {
            ssl_step(&mut m, &TwoViewBatch::new(&va, &vb), &mut opt);
        }
        assert_eq!(m.steps(), 4);
        // After the reset the groups are kmeans centroids of buffered
        // features: all unit rows still.
        for norm in m.groups().row_norms() {
            assert!((norm - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = Smog::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let (va, vb) = batch_pair(3, 16);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..20 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(last < first, "SMoG loss should decrease: {first} -> {last}");
    }
}
