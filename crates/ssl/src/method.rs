//! The [`SslMethod`] trait: a uniform interface over SimCLR, BYOL, SimSiam,
//! MoCoV2, SwAV and SMoG.
//!
//! The interface is deliberately split into *graph construction*
//! ([`SslMethod::build_graph`]) and *parameter update* ([`ssl_step`]):
//! Calibre hooks in between the two, extending the method's loss graph with
//! its prototype regularizers before `backward` runs. This is exactly the
//! structure of Algorithm 1 in the paper, where `l_s` "depends on which SSL
//! approach is used".

use crate::SslConfig;
use calibre_tensor::nn::{Binding, Mlp, Module};
use calibre_tensor::optim::Sgd;
use calibre_tensor::{Graph, Matrix, Node, StepArena};

/// A two-view augmented batch (`I_e`, `I_o` in Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct TwoViewBatch<'a> {
    /// First augmented view, `(N, input_dim)`.
    pub view_e: &'a Matrix,
    /// Second augmented view, `(N, input_dim)`.
    pub view_o: &'a Matrix,
}

impl<'a> TwoViewBatch<'a> {
    /// Creates a batch, validating that views are aligned.
    ///
    /// # Panics
    ///
    /// Panics if the views have different shapes.
    pub fn new(view_e: &'a Matrix, view_o: &'a Matrix) -> Self {
        assert_eq!(view_e.shape(), view_o.shape(), "views must be aligned");
        TwoViewBatch { view_e, view_o }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.view_e.rows()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.view_e.rows() == 0
    }
}

/// The loss graph a method built for one two-view batch.
///
/// Exposes the intermediate nodes Calibre's regularizers need: encoder
/// outputs `z` and projector outputs `h` for both views, plus the method's
/// own loss `l_s`.
#[derive(Debug)]
pub struct SslGraph {
    /// The autograd tape.
    pub graph: Graph,
    /// Trainable-parameter leaves, in the same order as
    /// [`Module::parameters`] of the method.
    pub binding: Binding,
    /// Encoder output for view e, `(N, repr_dim)`.
    pub z_e: Node,
    /// Encoder output for view o, `(N, repr_dim)`.
    pub z_o: Node,
    /// Projector output for view e, `(N, projection_dim)`.
    pub h_e: Node,
    /// Projector output for view o, `(N, projection_dim)`.
    pub h_o: Node,
    /// The method's own SSL loss `l_s` (scalar node).
    pub ssl_loss: Node,
    /// Method-specific side data consumed by `post_step` (e.g. MoCo keys,
    /// SMoG assignments).
    pub aux: Vec<Matrix>,
}

/// A self-supervised learning method with a two-view objective.
///
/// Implementors are [`Module`]s whose parameter order matches the binding
/// produced by [`SslMethod::build_graph`]; [`ssl_step`] relies on this to
/// route gradients.
pub trait SslMethod: Module + Send {
    /// Method name as used in the paper's tables (e.g. `"SimCLR"`).
    fn name(&self) -> &'static str;

    /// The shared configuration.
    fn config(&self) -> &SslConfig;

    /// The encoder backbone (the *global model* exchanged in federated
    /// training).
    fn encoder(&self) -> &Mlp;

    /// Mutable encoder access (the federated runtime overwrites this with
    /// the aggregated global encoder at the start of each round).
    fn encoder_mut(&mut self) -> &mut Mlp;

    /// Builds the loss graph for one batch without updating any state.
    fn build_graph(&self, batch: &TwoViewBatch<'_>) -> SslGraph {
        self.build_graph_with(batch, Graph::new())
    }

    /// Builds the loss graph for one batch onto a caller-provided tape —
    /// typically one recycled through a [`calibre_tensor::StepArena`], so the
    /// step reuses the previous step's buffers instead of allocating fresh
    /// ones. The tape must be empty (freshly created or [`Graph::reset`]).
    fn build_graph_with(&self, batch: &TwoViewBatch<'_>, graph: Graph) -> SslGraph;

    /// Post-gradient bookkeeping: EMA target updates, negative-queue pushes,
    /// prototype renormalization, group refreshes. Called by [`ssl_step`]
    /// after the optimizer update.
    fn post_step(&mut self, ssl_graph: &SslGraph);
}

/// Runs one full SSL optimization step: build graph → backward on `l_s` →
/// SGD update → method bookkeeping. Returns the loss value.
///
/// Calibre does *not* use this function — it builds on
/// [`SslMethod::build_graph`] directly and backpropagates its augmented
/// loss instead (see the `calibre` crate).
pub fn ssl_step<M: SslMethod + ?Sized>(
    method: &mut M,
    batch: &TwoViewBatch<'_>,
    opt: &mut Sgd,
) -> f32 {
    let forward = calibre_telemetry::span("ssl_forward");
    forward.add_items(batch.len() as u64);
    let mut ssl_graph = method.build_graph(batch);
    drop(forward);
    let loss_value = ssl_graph.graph.value(ssl_graph.ssl_loss).get(0, 0);
    ssl_graph.graph.backward(ssl_graph.ssl_loss);
    opt.step_graph(method, &ssl_graph.graph, &ssl_graph.binding);
    method.post_step(&ssl_graph);
    loss_value
}

/// Like [`ssl_step`], but builds each step's graph on a recycled tape from
/// `arena` and returns it afterwards, so a loop of steps performs almost no
/// heap allocation once the arena's pool is warm. Bit-identical to
/// [`ssl_step`].
pub fn ssl_step_in<M: SslMethod + ?Sized>(
    method: &mut M,
    batch: &TwoViewBatch<'_>,
    opt: &mut Sgd,
    arena: &mut StepArena,
) -> f32 {
    let forward = calibre_telemetry::span("ssl_forward");
    forward.add_items(batch.len() as u64);
    let mut ssl_graph = method.build_graph_with(batch, arena.take());
    drop(forward);
    let loss_value = ssl_graph.graph.value(ssl_graph.ssl_loss).get(0, 0);
    ssl_graph.graph.backward(ssl_graph.ssl_loss);
    opt.step_graph(method, &ssl_graph.graph, &ssl_graph.binding);
    method.post_step(&ssl_graph);
    arena.put(ssl_graph.graph);
    loss_value
}

/// Extracts frozen features from a method's encoder (inference path, no
/// gradients). This is the personalization-stage feature extractor.
pub fn extract_features<M: SslMethod + ?Sized>(method: &M, observations: &Matrix) -> Matrix {
    method.encoder().infer(observations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "views must be aligned")]
    fn batch_rejects_mismatched_views() {
        let a = Matrix::zeros(2, 4);
        let b = Matrix::zeros(3, 4);
        TwoViewBatch::new(&a, &b);
    }

    #[test]
    fn batch_len_reports_rows() {
        let a = Matrix::zeros(5, 4);
        let b = Matrix::zeros(5, 4);
        let batch = TwoViewBatch::new(&a, &b);
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
    }
}
