//! BYOL (Grill et al., NeurIPS 2020): bootstrap your own latent — an online
//! network predicts the projection of an EMA *target* network; no negatives.

use crate::losses::neg_cosine;
use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{ema_update, Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};

/// The BYOL method: online encoder/projector/predictor plus EMA target
/// encoder/projector.
#[derive(Debug, Clone)]
pub struct Byol {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
    predictor: Mlp,
    target_encoder: Mlp,
    target_projector: Mlp,
}

impl Byol {
    /// Creates a BYOL model; the target network starts as a copy of the
    /// online network (deterministic in `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        let predictor = Mlp::new(&config.predictor_layer_dims(), Activation::Relu, &mut r);
        let target_encoder = encoder.clone();
        let target_projector = projector.clone();
        Byol {
            config,
            encoder,
            projector,
            predictor,
            target_encoder,
            target_projector,
        }
    }

    /// The EMA target encoder (used by FedEMA's divergence-aware updates).
    pub fn target_encoder(&self) -> &Mlp {
        &self.target_encoder
    }

    /// Mutable access to the EMA target encoder.
    pub fn target_encoder_mut(&mut self) -> &mut Mlp {
        &mut self.target_encoder
    }
}

impl Module for Byol {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p.extend(self.predictor.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p.extend(self.predictor.parameters_mut());
        p
    }
}

impl SslMethod for Byol {
    fn name(&self) -> &'static str {
        "BYOL"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("byol_forward");
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);
        let pred = self.predictor.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);
        let p_e = self.predictor.forward_with(&mut graph, h_e, &pred);
        let p_o = self.predictor.forward_with(&mut graph, h_o, &pred);

        // Target projections: plain inference, inserted as constants —
        // gradients never reach the target network (BYOL's stop-gradient).
        let t_e = self
            .target_projector
            .infer(&self.target_encoder.infer(batch.view_e));
        let t_o = self
            .target_projector
            .infer(&self.target_encoder.infer(batch.view_o));
        let t_e = graph.constant(t_e);
        let t_o = graph.constant(t_o);

        let l1 = neg_cosine(&mut graph, p_e, t_o);
        let l2 = neg_cosine(&mut graph, p_o, t_e);
        let sum = graph.add(l1, l2);
        let ssl_loss = graph.scale(sum, 0.5);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: Vec::new(),
        }
    }

    fn post_step(&mut self, _ssl_graph: &SslGraph) {
        let m = self.config.ema_momentum;
        ema_update(&mut self.target_encoder, &self.encoder, m);
        ema_update(&mut self.target_projector, &self.projector, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    #[test]
    fn target_starts_as_copy_of_online() {
        let m = Byol::new(SslConfig::for_input(64));
        assert_eq!(m.encoder().to_flat(), m.target_encoder().to_flat());
    }

    #[test]
    fn target_lags_online_after_steps() {
        let mut m = Byol::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
        let mut r = seeded(1);
        let base = normal_matrix(&mut r, 8, 64, 1.0);
        let batch_a = base.map(|v| v + 0.05);
        let batch_b = base.map(|v| v - 0.05);
        ssl_step(&mut m, &TwoViewBatch::new(&batch_a, &batch_b), &mut opt);
        let online = m.encoder().to_flat();
        let target = m.target_encoder().to_flat();
        assert_ne!(online, target, "target must lag the online network");
        // Target moved a little toward online (not frozen).
        let m2 = Byol::new(SslConfig::for_input(64));
        let init = m2.encoder().to_flat();
        let moved: f32 = target
            .iter()
            .zip(init.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(moved > 0.0, "target should have moved from init");
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = Byol::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut r = seeded(2);
        let base = normal_matrix(&mut r, 16, 64, 1.0);
        let va = base.map(|v| v + 0.03);
        let vb = base.map(|v| v - 0.03);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..20 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(last < first, "BYOL loss should decrease: {first} -> {last}");
    }

    #[test]
    fn trainable_parameters_exclude_target_network() {
        let m = Byol::new(SslConfig::for_input(64));
        let enc = m.encoder.num_scalars();
        let proj = m.projector.num_scalars();
        let pred = m.predictor.num_scalars();
        assert_eq!(m.num_scalars(), enc + proj + pred);
    }
}
