//! SimSiam (Chen & He, CVPR 2021): Siamese representation learning with a
//! predictor head and a stop-gradient — no negatives, no momentum encoder.

use crate::losses::neg_cosine;
use crate::method::{SslGraph, SslMethod, TwoViewBatch};
use crate::SslConfig;
use calibre_tensor::nn::{Activation, Binding, Mlp, Module};
use calibre_tensor::{rng, Matrix};

/// The SimSiam method: encoder + projector + predictor, symmetric
/// stop-gradient loss `D(p_e, sg(h_o))/2 + D(p_o, sg(h_e))/2`.
#[derive(Debug, Clone)]
pub struct SimSiam {
    config: SslConfig,
    encoder: Mlp,
    projector: Mlp,
    predictor: Mlp,
}

impl SimSiam {
    /// Creates a SimSiam model (deterministic in `config.seed`).
    pub fn new(config: SslConfig) -> Self {
        let mut r = rng::seeded(config.seed);
        let encoder = Mlp::new(&config.encoder_layer_dims(), Activation::Relu, &mut r);
        let projector = Mlp::new(&config.projector_layer_dims(), Activation::Relu, &mut r);
        let predictor = Mlp::new(&config.predictor_layer_dims(), Activation::Relu, &mut r);
        SimSiam {
            config,
            encoder,
            projector,
            predictor,
        }
    }

    /// The predictor head.
    pub fn predictor(&self) -> &Mlp {
        &self.predictor
    }
}

impl Module for SimSiam {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.projector.parameters());
        p.extend(self.predictor.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.projector.parameters_mut());
        p.extend(self.predictor.parameters_mut());
        p
    }
}

impl SslMethod for SimSiam {
    fn name(&self) -> &'static str {
        "SimSiam"
    }

    fn config(&self) -> &SslConfig {
        &self.config
    }

    fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    fn build_graph_with(
        &self,
        batch: &TwoViewBatch<'_>,
        mut graph: calibre_tensor::Graph,
    ) -> SslGraph {
        let _span = calibre_telemetry::span("simsiam_forward");
        let mut binding = Binding::new();
        let enc = self.encoder.bind(&mut graph, &mut binding);
        let proj = self.projector.bind(&mut graph, &mut binding);
        let pred = self.predictor.bind(&mut graph, &mut binding);

        let xe = graph.constant_from(batch.view_e);
        let xo = graph.constant_from(batch.view_o);
        let z_e = self.encoder.forward_with(&mut graph, xe, &enc);
        let z_o = self.encoder.forward_with(&mut graph, xo, &enc);
        let h_e = self.projector.forward_with(&mut graph, z_e, &proj);
        let h_o = self.projector.forward_with(&mut graph, z_o, &proj);
        let p_e = self.predictor.forward_with(&mut graph, h_e, &pred);
        let p_o = self.predictor.forward_with(&mut graph, h_o, &pred);

        // Stop-gradient on the projection targets: the asymmetry that keeps
        // SimSiam from collapsing.
        let t_o = graph.detach(h_o);
        let t_e = graph.detach(h_e);
        let l1 = neg_cosine(&mut graph, p_e, t_o);
        let l2 = neg_cosine(&mut graph, p_o, t_e);
        let sum = graph.add(l1, l2);
        let ssl_loss = graph.scale(sum, 0.5);

        SslGraph {
            graph,
            binding,
            z_e,
            z_o,
            h_e,
            h_o,
            ssl_loss,
            aux: Vec::new(),
        }
    }

    fn post_step(&mut self, _ssl_graph: &SslGraph) {
        // SimSiam has no auxiliary state.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ssl_step;
    use calibre_tensor::optim::{Sgd, SgdConfig};
    use calibre_tensor::rng::{normal_matrix, seeded};

    #[test]
    fn loss_is_bounded_by_cosine_range() {
        let m = SimSiam::new(SslConfig::for_input(64));
        let mut r = seeded(1);
        let va = normal_matrix(&mut r, 8, 64, 1.0);
        let vb = normal_matrix(&mut r, 8, 64, 1.0);
        let sslg = m.build_graph(&TwoViewBatch::new(&va, &vb));
        let v = sslg.graph.value(sslg.ssl_loss).get(0, 0);
        assert!((-1.0..=1.0).contains(&v), "loss {v} outside cosine range");
    }

    #[test]
    fn training_reduces_loss_without_collapse_guard_tripping() {
        let mut m = SimSiam::new(SslConfig::for_input(64));
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut r = seeded(2);
        let base = normal_matrix(&mut r, 16, 64, 1.0);
        let va = base.map(|v| v + 0.03);
        let vb = base.map(|v| v - 0.03);
        let batch = TwoViewBatch::new(&va, &vb);
        let first = ssl_step(&mut m, &batch, &mut opt);
        let mut last = first;
        for _ in 0..20 {
            last = ssl_step(&mut m, &batch, &mut opt);
        }
        assert!(
            last < first,
            "SimSiam loss should decrease: {first} -> {last}"
        );
    }

    #[test]
    fn binding_covers_all_three_networks() {
        let m = SimSiam::new(SslConfig::for_input(64));
        let mut r = seeded(3);
        let v = normal_matrix(&mut r, 4, 64, 1.0);
        let sslg = m.build_graph(&TwoViewBatch::new(&v, &v));
        assert_eq!(sslg.binding.len(), m.parameters().len());
    }
}
