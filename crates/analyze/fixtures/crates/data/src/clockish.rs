//! Fixture: an ambient-time helper outside `fl`. Never compiled — only
//! scanned. `crates/fl/src/semantic_bad.rs` calls [`stamp_millis`], so the
//! determinism-taint pass must blame the fl caller (this site itself is a
//! `wallclock` violation, which the taint pass leaves to that rule).

pub fn stamp_millis() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}
