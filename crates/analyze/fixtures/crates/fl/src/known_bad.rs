//! Deliberately bad code for the analyzer's integration tests.
//!
//! This file is never compiled — it lives outside any `src/` tree that
//! cargo builds and is only *scanned* by the CLI test, which asserts that
//! `calibre-analyze check` fails on it and names every rule below.

use std::collections::HashMap;

pub fn wallclock_read() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn index_and_unwrap(xs: &[f32], v: Option<f32>) -> f32 {
    let head = xs[0];
    head + v.unwrap()
}

pub fn named_unwrap(v: Option<f32>) -> f32 {
    v.expect("always set")
}

pub fn give_up() {
    panic!("unreachable");
}

pub fn float_order(a: f32, b: f32) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn unjustified_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

// analyze:allow(not-a-rule) -- an unknown rule makes the annotation itself
// a violation, so typos cannot silently disable a check.
pub fn annotated() {}

pub fn container() -> HashMap<usize, f32> {
    HashMap::new()
}
