//! Fixture: a lossy cast in an aggregation file (the `lossy-cast` rule only
//! watches loss/aggregation code). Scanned by the CLI test, never compiled.

pub fn mean(values: &[f32]) -> f32 {
    let n = values.len() as f32;
    values.iter().sum::<f32>() / n
}
