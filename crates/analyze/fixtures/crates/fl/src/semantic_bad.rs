//! Deliberately bad code for the cross-file passes' integration tests.
//!
//! Never compiled — only scanned. Each item seeds exactly one of the
//! semantic rules, and the CLI test asserts that `calibre-analyze check`
//! names every one of them.

use std::collections::HashMap;

// schema-drift: `tag_name` is a coverage fn on `Msg` but a wildcard arm
// silently folds the `Bye` variant.
pub enum Msg {
    Hello,
    Assign,
    Bye,
}

impl Msg {
    pub fn tag_name(&self) -> &'static str {
        match self {
            Msg::Hello => "hello",
            Msg::Assign => "assign",
            _ => "?",
        }
    }
}

// rng-unseeded: RNG construction from ambient entropy in library code.
pub fn init_rng() -> StdRng {
    StdRng::from_entropy()
}

// ambient-taint: reaches `stamp_millis` (crates/data/src/clockish.rs),
// which reads `SystemTime::now` — the fl fn itself never names an
// ambient ident, so only the taint pass can catch it.
pub fn schedule_next() -> u64 {
    stamp_millis()
}

// unordered-fold: accumulates over hash iteration order.
pub fn hash_total(m: &HashMap<u32, f32>) -> f32 {
    let mut acc = 0.0;
    for v in m.values() {
        acc += v;
    }
    acc
}

// hot-path-index: `first_of` is reachable from the `RoundScheduler::
// run_round` root, so its indexing must gate instead of ratchet.
pub struct RoundScheduler;

impl RoundScheduler {
    pub fn run_round(&self, xs: &[f32]) -> f32 {
        first_of(xs)
    }
}

fn first_of(xs: &[f32]) -> f32 {
    xs[0]
}
