//! Deliberately bad socket code for the analyzer's integration tests.
//!
//! Never compiled — only scanned. A `TcpStream` is read without any
//! `set_read_timeout` in the file, so `net-read-no-timeout` must fire.

use std::io::Read;
use std::net::TcpStream;

pub fn hang_forever(mut stream: TcpStream) -> Vec<u8> {
    let mut buf = vec![0u8; 64];
    let _ = stream.read_exact(&mut buf);
    buf
}
