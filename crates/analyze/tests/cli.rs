//! End-to-end tests of the `calibre-analyze` binary against the seeded
//! known-bad fixture workspace in `fixtures/`.

use calibre_telemetry::json::JsonValue;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_calibre-analyze"))
}

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "calibre-analyze-test-{}-{name}",
        std::process::id()
    ));
    p
}

#[test]
fn check_fails_on_the_seeded_fixture_and_names_every_rule() {
    let json_path = temp_path("check.json");
    let out = bin()
        .arg("check")
        .arg("--root")
        .arg(fixture_root())
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "check must fail on the fixture:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let json = std::fs::read_to_string(&json_path).expect("json report written");
    let _ = std::fs::remove_file(&json_path);
    let report = JsonValue::parse(&json).expect("report is valid json");
    assert_eq!(report.get("ok").and_then(JsonValue::as_bool), Some(false));

    // Every rule must appear among the NEW violations (empty baseline), so
    // a rule that silently stopped firing breaks this test.
    let new = report
        .get("new")
        .and_then(JsonValue::as_array)
        .expect("new array");
    let new_rules: Vec<&str> = new
        .iter()
        .filter_map(|d| d.get("rule").and_then(JsonValue::as_str))
        .collect();
    for rule in [
        "hash-container",
        "wallclock",
        "no-unwrap",
        "no-expect",
        "no-panic",
        "slice-index",
        "unsafe-no-safety",
        "float-cmp-unwrap",
        "lossy-cast",
        "net-read-no-timeout",
        "malformed-allow",
        "schema-drift",
        "rng-unseeded",
        "ambient-taint",
        "unordered-fold",
        "hot-path-index",
    ] {
        assert!(
            new_rules.contains(&rule),
            "rule {rule} did not fire on the fixture; fired: {new_rules:?}"
        );
    }

    // The hot-path reclassification must say which fn is hot and which
    // round-critical root reaches it.
    let hot_note = new
        .iter()
        .find(|d| d.get("rule").and_then(JsonValue::as_str) == Some("hot-path-index"))
        .and_then(|d| d.get("note"))
        .and_then(JsonValue::as_str)
        .unwrap_or("");
    assert!(
        hot_note.contains("first_of") && hot_note.contains("RoundScheduler::run_round"),
        "hot-path note must name fn and root: {hot_note:?}"
    );

    // The taint finding must blame the fl caller and name the chain.
    let taint = new
        .iter()
        .find(|d| d.get("rule").and_then(JsonValue::as_str) == Some("ambient-taint"))
        .expect("ambient-taint fired");
    assert_eq!(
        taint.get("file").and_then(JsonValue::as_str),
        Some("crates/fl/src/semantic_bad.rs")
    );
    assert!(
        taint
            .get("note")
            .and_then(JsonValue::as_str)
            .is_some_and(|n| n.contains("stamp_millis")),
        "taint note names the ambient helper"
    );

    // The fixture fl crate has no lib.rs, so its unsafe policy is `none`
    // and a crate unknown to the baseline must enter at `forbid`.
    let policy = report
        .get("policy_regressions")
        .and_then(JsonValue::as_array)
        .expect("policy_regressions array");
    assert!(!policy.is_empty(), "fixture crate must regress the policy");
}

#[test]
fn report_never_gates() {
    let out = bin()
        .arg("report")
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "report must exit 0 even on violations"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("files scanned"), "human table:\n{stdout}");
}

#[test]
fn ratchet_bootstraps_then_check_passes_then_ratchet_refuses_regrowth() {
    let baseline = temp_path("baseline.json");
    let _ = std::fs::remove_file(&baseline);

    // First run: no baseline file — ratchet records the current debt.
    let out = bin()
        .args(["ratchet", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "bootstrap ratchet:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(baseline.exists());

    // With the debt recorded, check passes.
    let out = bin()
        .args(["check", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "check against the bootstrapped baseline:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Shrink a tolerated count below the scan: the ratchet must refuse to
    // move the baseline back up.
    let text = std::fs::read_to_string(&baseline).expect("baseline readable");
    let shrunk = text.replacen("\"slice-index\": 1", "\"slice-index\": 0", 1);
    assert_ne!(text, shrunk, "fixture baseline should tolerate slice-index");
    std::fs::write(&baseline, shrunk).expect("baseline writable");

    let out = bin()
        .args(["ratchet", "--root"])
        .arg(fixture_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "ratchet must refuse while above the baseline:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&baseline);
}
