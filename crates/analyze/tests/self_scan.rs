//! The committed baseline must exactly mirror a fresh scan of this
//! workspace: stale entries would let debt silently re-grow up to the old
//! tolerance, and missing entries would fail CI for unrelated changes.

use calibre_analyze::baseline::{compare, Baseline};
use calibre_analyze::engine::scan_workspace;
use std::path::PathBuf;

#[test]
fn committed_baseline_matches_a_fresh_scan() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let scan = scan_workspace(&root).expect("workspace scans");
    assert!(scan.files_scanned > 0, "self-scan found no files");

    let path = root.join("results/analyze_baseline.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} — run `cargo run -p calibre-analyze -- ratchet`",
            path.display()
        )
    });
    let committed = Baseline::parse(&text).expect("committed baseline parses");

    let cmp = compare(&committed, &scan);
    assert!(
        cmp.ok(),
        "scan exceeds the committed baseline; new violations: {:?}",
        cmp.offending
    );
    assert_eq!(
        committed,
        Baseline::from_scan(&scan),
        "baseline is stale — run `cargo run -p calibre-analyze -- ratchet` and commit the result"
    );
}

#[test]
fn workspace_panic_family_debt_is_fully_paid() {
    // The PR that introduced the analyzer also swept the workspace, and
    // the PR that added the cross-file passes swept it again: the
    // behavioural rules below must stay at zero (only slice-index and
    // lossy-cast debt is tolerated). This pins both sweeps.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let scan = scan_workspace(&root).expect("workspace scans");
    let totals: std::collections::BTreeMap<&str, u64> = scan.rule_totals().into_iter().collect();
    for rule in [
        "hash-container",
        "wallclock",
        "no-unwrap",
        "no-expect",
        "no-panic",
        "unsafe-no-safety",
        "float-cmp-unwrap",
        "malformed-allow",
        "schema-drift",
        "rng-unseeded",
        "ambient-taint",
        "unordered-fold",
        "hot-path-index",
    ] {
        assert_eq!(
            totals.get(rule).copied().unwrap_or(0),
            0,
            "rule {rule} regressed; violations: {:#?}",
            scan.violations
                .iter()
                .filter(|v| v.rule == rule)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_workspace_crate_forbids_unsafe_code() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let scan = scan_workspace(&root).expect("workspace scans");
    for (crate_dir, policy) in &scan.unsafe_policy {
        assert_eq!(
            policy, "forbid",
            "crate {crate_dir} must keep #![forbid(unsafe_code)]"
        );
    }
}
