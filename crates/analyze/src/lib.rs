//! Workspace-aware determinism & panic-safety analyzer.
//!
//! The reproduction's core invariants — bit-identical golden checksums,
//! replay-identical fault injection, secure-aggregation mask cancellation
//! — are enforced *dynamically*, which means a diff only breaks them when
//! a golden test happens to cover the offending path. This crate checks
//! the static preconditions of those invariants on every file of every
//! workspace crate, at CI time:
//!
//! * no nondeterministic containers or ambient clocks in aggregation and
//!   training paths (fairness variance, PAPER.md §V, is measured as the
//!   std-dev of per-client accuracy — aggregation-order noise pollutes it);
//! * no `unwrap`/`expect`/`panic!` in library code, so the resilient
//!   round executor's retry accounting only ever observes *injected*
//!   panics;
//! * every `unsafe` carries a `SAFETY:` justification, and each crate's
//!   `forbid(unsafe_code)` status can only strengthen;
//! * float comparisons are total and loss/aggregation casts are audited;
//! * cross-file: wire/enum/spec vocabularies stay in sync across encoder,
//!   decoder, parser and DESIGN.md ([`passes::schema`]); ambient
//!   time/entropy cannot leak into `fl`/`core` through helper crates and
//!   float folds never iterate hash containers ([`passes::determinism`]);
//!   and slice indexing reachable from the live round/serve/transport
//!   path is held at zero ([`passes::panics`]).
//!
//! Violations ratchet through a committed baseline
//! (`results/analyze_baseline.json`): existing debt is tolerated, new debt
//! fails `check`, and `ratchet` rewrites the baseline downward only.
//! Individual sites opt out with `// analyze:allow(rule-name) -- reason`.
//!
//! ```
//! use calibre_analyze::engine::scan_source;
//!
//! let bad = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }";
//! let violations = scan_source("crates/fl/src/example.rs", bad);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, "no-unwrap");
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod passes;
pub mod report;
pub mod rules;
