//! Human table and machine JSON rendering of a scan.

use crate::baseline::{json_string, Comparison};
use crate::engine::{ScanResult, Violation};
use crate::rules::RULES;
use std::fmt::Write as _;

/// Renders the per-rule totals table plus, when the ratchet is violated,
/// every offending violation with its file:line and excerpt.
pub fn human_report(scan: &ScanResult, cmp: &Comparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<18} {:>10} | invariant", "rule", "violations");
    let _ = writeln!(out, "{:-<18}-{:->10}-+-{:-<48}", "", "", "");
    for (rule, total) in scan.rule_totals() {
        let summary = RULES
            .iter()
            .find(|r| r.name == rule)
            .map(|r| r.summary)
            .unwrap_or("");
        let _ = writeln!(out, "{rule:<18} {total:>10} | {summary}");
    }
    let _ = writeln!(out, "\n{} files scanned", scan.files_scanned);

    let _ = writeln!(out, "\nunsafe policy:");
    for (crate_dir, policy) in &scan.unsafe_policy {
        let _ = writeln!(out, "  {crate_dir:<12} {policy}");
    }

    if !cmp.offending.is_empty() {
        let _ = writeln!(
            out,
            "\nNEW violations (beyond the committed baseline) — fix, or annotate with\n\
             `// analyze:allow(rule-name) -- reason`:"
        );
        for v in &cmp.offending {
            let fix = RULES
                .iter()
                .find(|r| r.name == v.rule)
                .map(|r| r.fix)
                .unwrap_or("");
            let _ = writeln!(out, "  {}:{} [{}] {}", v.file, v.line, v.rule, v.excerpt);
            if !v.note.is_empty() {
                let _ = writeln!(out, "      note: {}", v.note);
            }
            let _ = writeln!(out, "      fix: {fix}");
        }
        for d in &cmp.regressions {
            let _ = writeln!(
                out,
                "  {} [{}]: {} tolerated, {} found",
                d.file, d.rule, d.baseline, d.current
            );
        }
    }
    for (crate_dir, required, current) in &cmp.policy_regressions {
        let _ = writeln!(
            out,
            "\nunsafe policy regression: crate `{crate_dir}` must be `{required}`, found `{current}`"
        );
    }
    if !cmp.improvements.is_empty() {
        let _ = writeln!(
            out,
            "\n{} baseline entr{} can ratchet down — run `calibre-analyze ratchet`",
            cmp.improvements.len(),
            if cmp.improvements.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }
    out
}

fn violation_json(v: &Violation) -> String {
    format!(
        "{{\"file\":{},\"line\":{},\"rule\":{},\"excerpt\":{},\"note\":{}}}",
        json_string(&v.file),
        v.line,
        json_string(v.rule),
        json_string(&v.excerpt),
        json_string(&v.note)
    )
}

/// GitHub Actions workflow-command annotations for everything the ratchet
/// rejects: one `::error` line per new violation (rendered inline on the
/// PR diff) and one per unsafe-policy regression. Empty when the check
/// passes — tolerated baseline debt is not annotated.
pub fn github_annotations(cmp: &Comparison) -> String {
    let mut out = String::new();
    for v in &cmp.offending {
        let fix = RULES
            .iter()
            .find(|r| r.name == v.rule)
            .map(|r| r.fix)
            .unwrap_or("");
        let note = if v.note.is_empty() {
            String::new()
        } else {
            format!(" ({})", v.note)
        };
        let _ = writeln!(
            out,
            "::error file={},line={},title=calibre-analyze {}::{}{} — fix: {}",
            v.file,
            v.line,
            v.rule,
            sanitize_annotation(&v.excerpt),
            sanitize_annotation(&note),
            sanitize_annotation(fix)
        );
    }
    for (crate_dir, required, current) in &cmp.policy_regressions {
        let _ = writeln!(
            out,
            "::error title=calibre-analyze unsafe policy::crate `{crate_dir}` must stay \
             `{required}(unsafe_code)`, found `{current}`"
        );
    }
    out
}

/// Workflow-command message data must stay on one line; GitHub decodes
/// `%0A`/`%0D`/`%25` back when rendering.
fn sanitize_annotation(text: &str) -> String {
    text.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Machine-readable report: ratchet verdict, per-rule totals, the new
/// violations, every violation, and the unsafe policy map.
pub fn json_report(scan: &ScanResult, cmp: &Comparison) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"ok\":{},", cmp.ok());
    out.push_str("\"totals\":{");
    for (i, (rule, total)) in scan.rule_totals().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(rule), total);
    }
    out.push_str("},\"new\":[");
    for (i, v) in cmp.offending.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&violation_json(v));
    }
    out.push_str("],\"policy_regressions\":[");
    for (i, (crate_dir, required, current)) in cmp.policy_regressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"crate\":{},\"required\":{},\"current\":{}}}",
            json_string(crate_dir),
            json_string(required),
            json_string(current)
        );
    }
    out.push_str("],\"violations\":[");
    for (i, v) in scan.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&violation_json(v));
    }
    out.push_str("],\"unsafe_policy\":{");
    for (i, (crate_dir, policy)) in scan.unsafe_policy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(crate_dir), json_string(policy));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{compare, Baseline};
    use crate::engine::scan_source;

    fn demo() -> (ScanResult, Comparison) {
        let mut scan = ScanResult::default();
        scan.violations
            .extend(scan_source("crates/fl/src/x.rs", "fn f() { v.unwrap(); }"));
        scan.files_scanned = 1;
        scan.unsafe_policy.insert("fl".into(), "forbid".into());
        let cmp = compare(&Baseline::default(), &scan);
        (scan, cmp)
    }

    #[test]
    fn human_report_names_the_rule_and_location() {
        let (scan, cmp) = demo();
        let text = human_report(&scan, &cmp);
        assert!(text.contains("no-unwrap"));
        assert!(text.contains("crates/fl/src/x.rs:1"));
        assert!(text.contains("NEW violations"));
    }

    #[test]
    fn json_report_is_parseable_and_carries_the_verdict() {
        let (scan, cmp) = demo();
        let text = json_report(&scan, &cmp);
        let v = calibre_telemetry::json::JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        let new = v.get("new").and_then(|n| n.as_array()).expect("new array");
        assert_eq!(new.len(), 1);
        assert_eq!(
            new[0].get("rule").and_then(|r| r.as_str()),
            Some("no-unwrap")
        );
        assert!(new[0].get("note").is_some(), "note field present");
    }

    #[test]
    fn github_annotations_cover_new_violations_only() {
        let (_, cmp) = demo();
        let text = github_annotations(&cmp);
        assert_eq!(text.lines().count(), 1);
        assert!(
            text.starts_with(
                "::error file=crates/fl/src/x.rs,line=1,title=calibre-analyze no-unwrap::"
            ),
            "got: {text}"
        );
        // A passing comparison annotates nothing.
        let clean = Comparison::default();
        assert!(github_annotations(&clean).is_empty());
    }

    #[test]
    fn annotation_messages_stay_on_one_line() {
        assert_eq!(sanitize_annotation("a\nb%c"), "a%0Ab%25c");
    }
}
