//! `calibre-analyze` — the CI gate for the workspace's static invariants.
//!
//! ```text
//! calibre-analyze check   [--root DIR] [--baseline FILE] [--json FILE] [--github]
//! calibre-analyze ratchet [--root DIR] [--baseline FILE]
//! calibre-analyze report  [--root DIR] [--baseline FILE] [--json FILE] [--github]
//! ```
//!
//! * `check` — scan and compare against the committed baseline; exit 1 on
//!   any new violation or unsafe-policy weakening.
//! * `ratchet` — rewrite the baseline to the current (lower) counts;
//!   refuses while the scan is above the baseline. Creates the baseline
//!   when the file does not exist yet.
//! * `report` — print the scan without gating (exit 0).
//! * `--github` — additionally emit GitHub Actions `::error` workflow
//!   commands for every new violation, so CI failures annotate the diff.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use calibre_analyze::baseline::{compare, Baseline, Comparison};
use calibre_analyze::engine::{scan_workspace, ScanResult};
use calibre_analyze::report::{github_annotations, human_report, json_report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    root: PathBuf,
    baseline: PathBuf,
    json: Option<PathBuf>,
    github: bool,
}

const USAGE: &str = "usage: calibre-analyze <check|ratchet|report> \
                     [--root DIR] [--baseline FILE] [--json FILE] [--github]";

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or(USAGE)?;
    if !matches!(command.as_str(), "check" | "ratchet" | "report") {
        return Err(format!("unknown command `{command}`\n{USAGE}"));
    }
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut json = None;
    let mut github = false;
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .map(PathBuf::from)
                .ok_or(format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--root" => root = value("--root")?,
            "--baseline" => baseline = Some(value("--baseline")?),
            "--json" => json = Some(value("--json")?),
            "--github" => github = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("results/analyze_baseline.json"));
    Ok(Args {
        command,
        root,
        baseline,
        json,
        github,
    })
}

/// Loads the baseline; the bool is false when the file does not exist yet
/// (first run — `ratchet` bootstraps it instead of refusing).
fn load_baseline(args: &Args) -> Result<(Baseline, bool), String> {
    match std::fs::read_to_string(&args.baseline) {
        Ok(text) => Baseline::parse(&text)
            .map(|b| (b, true))
            .map_err(|e| format!("{}: {e}", args.baseline.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok((Baseline::default(), false)),
        Err(e) => Err(format!("{}: {e}", args.baseline.display())),
    }
}

fn write_json(args: &Args, scan: &ScanResult, cmp: &Comparison) -> Result<(), String> {
    if let Some(path) = &args.json {
        std::fs::write(path, json_report(scan, cmp))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("machine report written to {}", path.display());
    }
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let scan =
        scan_workspace(&args.root).map_err(|e| format!("scanning {}: {e}", args.root.display()))?;
    if scan.files_scanned == 0 {
        return Err(format!(
            "no crates/*/src/**/*.rs under {} — wrong --root?",
            args.root.display()
        ));
    }
    let (baseline, baseline_exists) = load_baseline(&args)?;
    let cmp = compare(&baseline, &scan);

    match args.command.as_str() {
        "report" => {
            print!("{}", human_report(&scan, &cmp));
            if args.github {
                print!("{}", github_annotations(&cmp));
            }
            write_json(&args, &scan, &cmp)?;
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            print!("{}", human_report(&scan, &cmp));
            if args.github {
                print!("{}", github_annotations(&cmp));
            }
            write_json(&args, &scan, &cmp)?;
            if cmp.ok() {
                println!("\ncheck passed: no new violations against the baseline");
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "\ncheck FAILED: {} new violation group(s), {} policy regression(s)",
                    cmp.regressions.len(),
                    cmp.policy_regressions.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        "ratchet" => {
            if !baseline_exists {
                // First run: record the current debt as the starting line.
                let first = Baseline::from_scan(&scan);
                if let Some(dir) = args.baseline.parent() {
                    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                }
                std::fs::write(&args.baseline, first.to_json())
                    .map_err(|e| format!("{}: {e}", args.baseline.display()))?;
                println!(
                    "baseline bootstrapped at {} ({} violation(s) tolerated)",
                    args.baseline.display(),
                    scan.violations.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            if !cmp.ok() {
                print!("{}", human_report(&scan, &cmp));
                return Err(
                    "ratchet refused: the scan exceeds the baseline; fix or annotate the \
                     new violations first (the ratchet only ever moves down)"
                        .to_string(),
                );
            }
            let next = Baseline::from_scan(&scan);
            std::fs::write(&args.baseline, next.to_json())
                .map_err(|e| format!("{}: {e}", args.baseline.display()))?;
            println!(
                "baseline written to {} ({} tolerated entr{}, {} improvement(s) shed)",
                args.baseline.display(),
                next.files.values().map(|r| r.len()).sum::<usize>(),
                if next.files.len() == 1 { "y" } else { "ies" },
                cmp.improvements.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("calibre-analyze: {message}");
            ExitCode::from(2)
        }
    }
}
