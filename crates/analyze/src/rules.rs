//! The domain rules and their token-pattern matchers.
//!
//! Every rule guards an invariant the workspace otherwise only checks
//! dynamically (golden checksums, replay-identical chaos, mask
//! cancellation):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-container` | aggregation crates iterate deterministically |
//! | `wallclock` | training paths are replayable (no ambient time/rng) |
//! | `no-unwrap` / `no-expect` / `no-panic` | library panics stay typed, so `resilient` retry accounting only sees *injected* panics |
//! | `slice-index` | out-of-bounds indexing cannot masquerade as a fault |
//! | `unsafe-no-safety` | every `unsafe` carries its justification |
//! | `float-cmp-unwrap` | float ordering is total (`total_cmp`), never a NaN panic |
//! | `lossy-cast` | loss/aggregation arithmetic flags precision loss |
//! | `net-read-no-timeout` | socket reads cannot hang a server forever |
//! | `schema-drift` | enum/wire/spec vocabularies stay in sync across files |
//! | `rng-unseeded` | every rng comes from the seeded constructor |
//! | `ambient-taint` | ambient time/entropy never leaks into fl/core via helpers |
//! | `unordered-fold` | float accumulation never iterates a hash container |
//! | `hot-path-index` | the live round path is free of indexing panics |
//!
//! Matchers work on the token stream from [`crate::lexer`]; everything
//! context-sensitive (test regions, allow annotations, `SAFETY:` comments)
//! is resolved by [`crate::engine`].

use crate::lexer::{TokKind, Token};

/// One enforced rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case name used in reports, baselines and
    /// `analyze:allow(...)` annotations.
    pub name: &'static str,
    /// One-line description of the invariant.
    pub summary: &'static str,
    /// What to write instead.
    pub fix: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-container",
        summary: "HashMap/HashSet in an aggregation crate (iteration order is nondeterministic)",
        fix: "use BTreeMap/BTreeSet or collect + sort before iterating",
    },
    Rule {
        name: "wallclock",
        summary: "ambient time or rng (Instant/SystemTime/thread_rng) outside telemetry/bench",
        fix: "thread a seeded rng or take timestamps via calibre-telemetry",
    },
    Rule {
        name: "no-unwrap",
        summary: "unwrap() in library code can turn a recoverable fault into a bogus panic",
        fix: "return the crate's typed error, or annotate a provably-infallible case",
    },
    Rule {
        name: "no-expect",
        summary: "expect() in library code can turn a recoverable fault into a bogus panic",
        fix: "return the crate's typed error, or annotate a provably-infallible case",
    },
    Rule {
        name: "no-panic",
        summary: "panic!/todo!/unimplemented! in library code",
        fix: "return a typed error; use assert! only for documented contract checks",
    },
    Rule {
        name: "slice-index",
        summary: "slice indexing without get() can panic on malformed input",
        fix: "use .get()/.first()/iterators, or annotate when bounds are provably checked",
    },
    Rule {
        name: "unsafe-no-safety",
        summary: "unsafe without a `// SAFETY:` comment in the 3 lines above",
        fix: "document the invariant that makes the block sound",
    },
    Rule {
        name: "float-cmp-unwrap",
        summary: "partial_cmp().unwrap() panics on NaN and under-specifies float order",
        fix: "use f32::total_cmp / f64::total_cmp",
    },
    Rule {
        name: "lossy-cast",
        summary: "lossy `as` cast in loss/aggregation code",
        fix: "annotate with the value-range argument, or use From/TryFrom",
    },
    Rule {
        name: "net-read-no-timeout",
        summary: "blocking socket read in a file that never sets a read timeout",
        fix: "call set_read_timeout(Some(..)) on the stream before reading",
    },
    Rule {
        name: "malformed-allow",
        summary: "analyze:allow annotation that fails to parse or names an unknown rule",
        fix: "write `// analyze:allow(rule-name) -- reason`",
    },
    Rule {
        name: "schema-drift",
        summary: "enum variant, wire tag or spec keyword missing from its encoder/decoder/parser/doc counterpart",
        fix: "add the missing arm/tag/keyword on the side the note names (or document it in DESIGN.md)",
    },
    Rule {
        name: "rng-unseeded",
        summary: "entropy-fed rng construction (from_entropy/OsRng/ThreadRng) in library code",
        fix: "construct rngs through calibre_tensor::rng::seeded(seed)",
    },
    Rule {
        name: "ambient-taint",
        summary: "fl/core fn transitively calls an ambient time/entropy user (wallclock leak through a helper)",
        fix: "thread the value in as a parameter instead of calling the ambient helper",
    },
    Rule {
        name: "unordered-fold",
        summary: "accumulation over HashMap/HashSet iteration (order-dependent float folds drift)",
        fix: "iterate a BTree container or collect + sort keys before folding",
    },
    Rule {
        name: "hot-path-index",
        summary: "slice indexing inside a fn reachable from the round scheduler / transport / serve loop",
        fix: "use .get() with a typed error; a panic here kills the round, it cannot be retried",
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// The `crates/<dir>` component (e.g. `fl`, `telemetry`).
    pub crate_dir: String,
    /// Whether the file is a binary target (`src/bin/**` or `src/main.rs`).
    pub is_binary: bool,
}

impl FileCtx {
    /// Derives the context from a workspace-relative path. Returns `None`
    /// for paths outside `crates/*/src/`.
    pub fn from_rel_path(rel_path: &str) -> Option<FileCtx> {
        let mut parts = rel_path.split('/');
        if parts.next() != Some("crates") {
            return None;
        }
        let crate_dir = parts.next()?.to_string();
        if parts.next() != Some("src") {
            return None;
        }
        let rest: Vec<&str> = parts.collect();
        let is_binary = rest.first() == Some(&"bin") || rest == ["main.rs"];
        Some(FileCtx {
            rel_path: rel_path.to_string(),
            crate_dir,
            is_binary,
        })
    }

    fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or("")
    }
}

/// Whether `rule` is enforced for the given file at all.
///
/// Binaries (`src/bin`, `src/main.rs`) and the `bench` crate are not
/// library code: a CLI that unwraps its own arguments fails loudly exactly
/// where a human is watching, so the panic-safety family does not apply.
/// `#[cfg(test)]` regions are exempted separately by the engine.
pub fn rule_applies(rule: &str, ctx: &FileCtx) -> bool {
    let bench = ctx.crate_dir == "bench";
    let library = !bench && !ctx.is_binary;
    match rule {
        // Determinism rules for the aggregation path crates. `core` is the
        // Calibre framework crate, `fl` the federated runtime, `cluster`
        // the prototype k-means — everything a client update flows through.
        "hash-container" => {
            matches!(ctx.crate_dir.as_str(), "core" | "fl" | "cluster") && !ctx.is_binary
        }
        // Telemetry owns wall-clock measurement; bench binaries drive runs.
        "wallclock" => ctx.crate_dir != "telemetry" && !bench,
        "no-unwrap" | "no-expect" | "no-panic" | "slice-index" | "float-cmp-unwrap" => library,
        "lossy-cast" => {
            library && matches!(ctx.file_name(), "loss.rs" | "losses.rs" | "aggregate.rs")
        }
        // A blocking read hangs a serve loop no matter where it lives, so
        // unlike the panic-safety family this applies to binaries too.
        "net-read-no-timeout" | "unsafe-no-safety" | "malformed-allow" => true,
        // The cross-file passes (crate::passes) scope their own findings by
        // construction; these arms exist so `analyze:allow` accepts the
        // names and the report table can state the scope.
        "schema-drift" | "rng-unseeded" | "unordered-fold" => library,
        "ambient-taint" | "hot-path-index" => {
            library && matches!(ctx.crate_dir.as_str(), "fl" | "core")
        }
        _ => false,
    }
}

/// A rule hit before exemptions (test regions, allow annotations) are
/// applied by the engine.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Rule name from [`RULES`].
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
}

const NUMERIC_CAST_TARGETS: &[&str] = &[
    "f32", "f64", "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
];

/// Identifiers that legitimately precede a `[` without it being an index
/// expression: slice patterns (`let [a, b] = …`), array expressions after
/// keywords, `mod tests [cfg]`-style constructs never occur but keywords do.
const NON_INDEX_PREV_IDENTS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "else", "match", "move", "static", "const",
    "type", "impl", "dyn", "where", "for", "as", "box", "if", "while",
];

/// Runs every scoped token-pattern matcher over one file's tokens.
///
/// Exemptions are not applied here — the engine filters candidates through
/// test regions and `analyze:allow` annotations afterwards.
pub fn match_tokens(ctx: &FileCtx, tokens: &[Token]) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let mut consumed = vec![false; tokens.len()];
    let on = |rule: &str| rule_applies(rule, ctx);

    // Pass 1: `partial_cmp(...).unwrap()` / `.expect(...)` — claim the
    // unwrap/expect token so the panic-safety rules don't double-report.
    if on("float-cmp-unwrap") {
        let mut i = 0;
        while let Some(t) = tokens.get(i) {
            if t.is_ident("partial_cmp") && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                if let Some(close) = matching_paren(tokens, i + 1) {
                    let dot = tokens.get(close + 1).is_some_and(|t| t.is_punct('.'));
                    let call = tokens.get(close + 2);
                    if dot && call.is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect")) {
                        if let Some(call) = call {
                            out.push(Candidate {
                                rule: "float-cmp-unwrap",
                                line: call.line,
                            });
                        }
                        if let Some(slot) = consumed.get_mut(close + 2) {
                            *slot = true;
                        }
                    }
                }
            }
            i += 1;
        }
    }

    // Pass 1.5: `net-read-no-timeout` needs two file-level facts before
    // any site can fire — does the file touch raw sockets at all, and does
    // it ever set a read timeout? A file that configures a timeout
    // anywhere is trusted for all its reads: the rule catches servers that
    // *never* bound their blocking reads, not specific call sites.
    if on("net-read-no-timeout") {
        const SOCKET_TYPES: &[&str] = &["TcpStream", "UnixStream", "TcpListener", "UnixListener"];
        let touches_sockets = tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && SOCKET_TYPES.contains(&t.text.as_str()));
        let sets_timeout = tokens
            .iter()
            .any(|t| t.is_ident("set_read_timeout") || t.is_ident("set_nonblocking"));
        if touches_sockets && !sets_timeout {
            for (i, t) in tokens.iter().enumerate() {
                let reads = t.is_ident("read")
                    || t.is_ident("read_exact")
                    || t.is_ident("read_to_end")
                    || t.is_ident("read_to_string");
                let called = i > 0
                    && tokens.get(i - 1).is_some_and(|p| p.is_punct('.'))
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if reads && called {
                    out.push(Candidate {
                        rule: "net-read-no-timeout",
                        line: t.line,
                    });
                }
            }
        }
    }

    // Pass 2: everything that is a local token pattern.
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                let next_is = |ch: char| tokens.get(i + 1).is_some_and(|n| n.is_punct(ch));
                let prev_is_dot = i > 0 && tokens.get(i - 1).is_some_and(|p| p.is_punct('.'));
                let claimed = consumed.get(i).copied().unwrap_or(false);
                match t.text.as_str() {
                    "HashMap" | "HashSet" if on("hash-container") => out.push(Candidate {
                        rule: "hash-container",
                        line: t.line,
                    }),
                    "Instant" | "SystemTime" | "thread_rng" if on("wallclock") => {
                        out.push(Candidate {
                            rule: "wallclock",
                            line: t.line,
                        })
                    }
                    "unwrap" if on("no-unwrap") && !claimed && prev_is_dot && next_is('(') => out
                        .push(Candidate {
                            rule: "no-unwrap",
                            line: t.line,
                        }),
                    "expect" if on("no-expect") && !claimed && prev_is_dot && next_is('(') => out
                        .push(Candidate {
                            rule: "no-expect",
                            line: t.line,
                        }),
                    "panic" | "todo" | "unimplemented" if on("no-panic") && next_is('!') => {
                        // `panic` only counts as the macro, not e.g. the
                        // `std::panic` module path (`panic::catch_unwind`).
                        out.push(Candidate {
                            rule: "no-panic",
                            line: t.line,
                        })
                    }
                    "unsafe" if on("unsafe-no-safety") => out.push(Candidate {
                        rule: "unsafe-no-safety",
                        line: t.line,
                    }),
                    "as" if on("lossy-cast")
                        && tokens
                            .get(i + 1)
                            .is_some_and(|n| NUMERIC_CAST_TARGETS.contains(&n.text.as_str())) =>
                    {
                        out.push(Candidate {
                            rule: "lossy-cast",
                            line: t.line,
                        });
                    }
                    _ => {}
                }
            }
            TokKind::Punct if t.is_punct('[') && on("slice-index") => {
                let indexes = i > 0
                    && tokens.get(i - 1).is_some_and(|p| match p.kind {
                        TokKind::Ident => !NON_INDEX_PREV_IDENTS.contains(&p.text.as_str()),
                        TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
                        _ => false,
                    });
                if indexes {
                    out.push(Candidate {
                        rule: "slice-index",
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open`, if present.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(path: &str) -> FileCtx {
        FileCtx::from_rel_path(path).expect("valid crates path")
    }

    fn hits(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        match_tokens(&ctx(path), &lex(src).tokens)
            .into_iter()
            .map(|c| (c.rule, c.line))
            .collect()
    }

    #[test]
    fn file_ctx_classifies_paths() {
        let lib = ctx("crates/fl/src/aggregate.rs");
        assert_eq!(lib.crate_dir, "fl");
        assert!(!lib.is_binary);
        assert!(ctx("crates/bench/src/bin/table1.rs").is_binary);
        assert!(ctx("crates/analyze/src/main.rs").is_binary);
        assert!(FileCtx::from_rel_path("vendor/rand/src/lib.rs").is_none());
    }

    #[test]
    fn hash_container_only_in_aggregation_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(hits("crates/fl/src/x.rs", src), vec![("hash-container", 1)]);
        assert_eq!(hits("crates/tensor/src/x.rs", src), vec![]);
    }

    #[test]
    fn wallclock_exempts_telemetry_and_bench() {
        let src = "let t = Instant::now();";
        assert_eq!(hits("crates/core/src/x.rs", src), vec![("wallclock", 1)]);
        assert_eq!(hits("crates/telemetry/src/x.rs", src), vec![]);
        assert_eq!(hits("crates/bench/src/x.rs", src), vec![]);
    }

    #[test]
    fn unwrap_and_expect_require_call_syntax() {
        assert_eq!(
            hits("crates/fl/src/x.rs", "v.unwrap();"),
            vec![("no-unwrap", 1)]
        );
        assert_eq!(
            hits("crates/fl/src/x.rs", "v.expect(\"reason\");"),
            vec![("no-expect", 1)]
        );
        // unwrap_or is the sanctioned spelling and must not fire.
        assert_eq!(hits("crates/fl/src/x.rs", "v.unwrap_or(0);"), vec![]);
        // A method *named* in a path, not called with `.`, is not a hit.
        assert_eq!(hits("crates/fl/src/x.rs", "let f = unwrap;"), vec![]);
    }

    #[test]
    fn panic_macros_but_not_panic_module() {
        assert_eq!(
            hits("crates/fl/src/x.rs", "panic!(\"boom\");"),
            vec![("no-panic", 1)]
        );
        assert_eq!(
            hits("crates/fl/src/x.rs", "std::panic::catch_unwind(f);"),
            vec![]
        );
        assert_eq!(hits("crates/fl/src/x.rs", "todo!()"), vec![("no-panic", 1)]);
    }

    #[test]
    fn binaries_and_bench_are_not_library_code() {
        let src = "v.unwrap(); xs[0];";
        assert_eq!(hits("crates/bench/src/bin/t.rs", src), vec![]);
        assert_eq!(hits("crates/analyze/src/main.rs", src), vec![]);
        assert_eq!(
            hits("crates/fl/src/x.rs", src),
            vec![("no-unwrap", 1), ("slice-index", 1)]
        );
    }

    #[test]
    fn slice_index_spares_patterns_types_and_macros() {
        assert_eq!(hits("crates/fl/src/x.rs", "xs[i] + ys[j];").len(), 2);
        assert_eq!(hits("crates/fl/src/x.rs", "foo()[0];").len(), 1);
        assert_eq!(hits("crates/fl/src/x.rs", "m[0][1];").len(), 2);
        assert_eq!(hits("crates/fl/src/x.rs", "let [a, b] = xs;"), vec![]);
        assert_eq!(hits("crates/fl/src/x.rs", "let v: [f32; 4] = arr;"), vec![]);
        assert_eq!(hits("crates/fl/src/x.rs", "vec![0.0; n];"), vec![]);
        assert_eq!(
            hits("crates/fl/src/x.rs", "#[derive(Debug)] struct S;"),
            vec![]
        );
        assert_eq!(
            hits("crates/fl/src/x.rs", "#![forbid(unsafe_code)]").len(),
            0
        );
    }

    #[test]
    fn float_cmp_unwrap_claims_the_unwrap() {
        let got = hits("crates/fl/src/x.rs", "a.partial_cmp(&b).unwrap();");
        assert_eq!(
            got,
            vec![("float-cmp-unwrap", 1)],
            "no no-unwrap double hit"
        );
        let got = hits(
            "crates/fl/src/x.rs",
            "a.partial_cmp(&b).expect(\"finite\");",
        );
        assert_eq!(got, vec![("float-cmp-unwrap", 1)]);
        // unwrap_or is fine.
        assert_eq!(
            hits("crates/fl/src/x.rs", "a.partial_cmp(&b).unwrap_or(o);"),
            vec![]
        );
        // total_cmp is the fix and never fires.
        assert_eq!(hits("crates/fl/src/x.rs", "a.total_cmp(&b);"), vec![]);
    }

    #[test]
    fn lossy_cast_only_in_loss_and_aggregation_files() {
        let src = "let x = n as f32;";
        assert_eq!(
            hits("crates/fl/src/aggregate.rs", src),
            vec![("lossy-cast", 1)]
        );
        assert_eq!(
            hits("crates/core/src/loss.rs", src),
            vec![("lossy-cast", 1)]
        );
        assert_eq!(hits("crates/fl/src/model.rs", src), vec![]);
        // Casting to a wider or non-numeric type is not flagged.
        assert_eq!(
            hits("crates/fl/src/aggregate.rs", "let y = x as MyType;"),
            vec![]
        );
    }

    #[test]
    fn net_read_requires_sockets_and_no_timeout() {
        // A socket file with an unbounded read fires once per read call.
        let bad = "fn serve(mut s: TcpStream) { s.read_exact(&mut buf); s.read(&mut b); }";
        assert_eq!(
            hits("crates/fl/src/x.rs", bad),
            vec![("net-read-no-timeout", 1), ("net-read-no-timeout", 1)]
        );
        // Setting a read timeout anywhere in the file clears it.
        let good = "fn serve(mut s: TcpStream) { s.set_read_timeout(Some(d)); s.read(&mut b); }";
        assert_eq!(hits("crates/fl/src/x.rs", good), vec![]);
        // Nonblocking sockets cannot hang either.
        let nb = "fn serve(l: TcpListener) { l.set_nonblocking(true); s.read(&mut b); }";
        assert_eq!(hits("crates/fl/src/x.rs", nb), vec![]);
        // Reads in files that never touch sockets (readers, files) are fine.
        let file_io = "fn load(mut f: File) { f.read_to_end(&mut buf); }";
        assert_eq!(hits("crates/fl/src/x.rs", file_io), vec![]);
        // Binaries are covered: a CLI hanging on accept is still a hang.
        assert_eq!(
            hits("crates/bench/src/bin/t.rs", bad),
            vec![("net-read-no-timeout", 1), ("net-read-no-timeout", 1)]
        );
    }

    #[test]
    fn unsafe_always_produces_a_candidate() {
        assert_eq!(
            hits("crates/tensor/src/x.rs", "unsafe { ptr.read() }"),
            vec![("unsafe-no-safety", 1)]
        );
        assert_eq!(
            hits("crates/bench/src/bin/t.rs", "unsafe { f() }"),
            vec![("unsafe-no-safety", 1)],
            "unsafe audit applies to binaries too"
        );
    }
}
