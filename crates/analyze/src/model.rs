//! The workspace model the cross-file passes run on.
//!
//! Per-file token rules see one lexed file at a time; the semantic passes
//! (schema drift, determinism taint, panic reachability) need the whole
//! workspace at once: every enum with its variants, every fn with its
//! owner and call edges, plus the design document the spec keywords must
//! be documented in. [`WorkspaceModel::load`] walks `crates/*/src/**/*.rs`
//! exactly like the engine's scan (sorted, deterministic) and parses each
//! file once; the engine then reuses the same models for the token rules,
//! so the workspace is read and lexed a single time per run.

use crate::lexer::{lex, Lexed};
use crate::parser::{parse_items, test_line_ranges, FileItems, FnItem};
use crate::rules::FileCtx;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One parsed workspace file.
#[derive(Debug)]
pub struct FileModel {
    /// Rule-scoping context (relative path, crate dir, binary flag).
    pub ctx: FileCtx,
    /// Raw source text (for excerpts).
    pub source: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Item-level structure (enums, fns, call edges).
    pub items: FileItems,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Parsed `analyze:allow` annotations. The passes consult these too:
    /// an allow-annotated ambient site is *reviewed* and must not seed
    /// determinism taint.
    pub(crate) allows: crate::engine::Allows,
}

impl FileModel {
    /// Parses one file from its source text. Returns `None` for paths
    /// outside `crates/*/src/`.
    pub fn parse(rel_path: &str, source: &str) -> Option<FileModel> {
        let ctx = FileCtx::from_rel_path(rel_path)?;
        let lexed = lex(source);
        let items = parse_items(&lexed.tokens);
        let test_ranges = test_line_ranges(&lexed.tokens);
        let allows = crate::engine::collect_allows(&lexed.comments);
        Some(FileModel {
            ctx,
            source: source.to_string(),
            lexed,
            items,
            test_ranges,
            allows,
        })
    }

    /// Whether `line` falls inside a test-exempt region.
    pub fn in_tests(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| line >= start && line <= end)
    }

    /// The innermost fn containing `line`, if any. Nested fns are later in
    /// declaration order, so the last match is the innermost.
    pub fn fn_at_line(&self, line: u32) -> Option<&FnItem> {
        self.items.fns.iter().rev().find(|f| f.contains_line(line))
    }
}

/// Identifies one fn in the workspace: (file index, fn index).
pub type FnId = (usize, usize);

/// The whole workspace, parsed.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Parsed files in sorted path order.
    pub files: Vec<FileModel>,
    /// Contents of the workspace `DESIGN.md`, when present. The fixture
    /// workspaces have none, which simply disables the doc-drift contract.
    pub design_doc: Option<String>,
    /// Per-crate unsafe policy (`forbid` / `deny` / `none`).
    pub unsafe_policy: BTreeMap<String, String>,
    /// Fn definitions by name, for call-edge resolution.
    fn_index: BTreeMap<String, Vec<FnId>>,
}

impl WorkspaceModel {
    /// Walks `crates/*/src/**/*.rs` under `root` (sorted, deterministic)
    /// and parses every file; also reads `DESIGN.md` and each crate's
    /// unsafe policy from its `lib.rs`.
    ///
    /// # Errors
    ///
    /// Any I/O failure while walking or reading.
    pub fn load(root: &Path) -> std::io::Result<WorkspaceModel> {
        let mut model = WorkspaceModel::default();
        let crates_dir = root.join("crates");
        for crate_dir in sorted_entries(&crates_dir)? {
            let src = crate_dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let crate_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let mut files: Vec<PathBuf> = Vec::new();
            collect_rs_files(&src, &mut files)?;
            files.sort();
            for file in files {
                let source = std::fs::read_to_string(&file)?;
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                if rel == format!("crates/{crate_name}/src/lib.rs") {
                    model
                        .unsafe_policy
                        .insert(crate_name.clone(), unsafe_policy_of(&source));
                }
                if let Some(fm) = FileModel::parse(&rel, &source) {
                    model.files.push(fm);
                }
            }
            model
                .unsafe_policy
                .entry(crate_name)
                .or_insert_with(|| "none".to_string());
        }
        model.design_doc = std::fs::read_to_string(root.join("DESIGN.md")).ok();
        model.build_fn_index();
        Ok(model)
    }

    /// Builds a model from in-memory (path, source) pairs — fixture and
    /// unit-test entry point.
    pub fn from_sources(files: &[(&str, &str)], design_doc: Option<&str>) -> WorkspaceModel {
        let mut model = WorkspaceModel {
            files: files
                .iter()
                .filter_map(|(path, src)| FileModel::parse(path, src))
                .collect(),
            design_doc: design_doc.map(str::to_string),
            ..WorkspaceModel::default()
        };
        model.build_fn_index();
        model
    }

    fn build_fn_index(&mut self) {
        let mut index: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, fm) in self.files.iter().enumerate() {
            for (gi, f) in fm.items.fns.iter().enumerate() {
                index.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        self.fn_index = index;
    }

    /// The fn behind an id, when the id is in range.
    pub fn get_fn(&self, id: FnId) -> Option<&FnItem> {
        self.files.get(id.0).and_then(|fm| fm.items.fns.get(id.1))
    }

    /// The file a fn lives in, when the id is in range.
    pub fn file_of(&self, id: FnId) -> Option<&FileModel> {
        self.files.get(id.0)
    }

    /// All definitions of a fn name across the workspace.
    pub fn defs_of(&self, name: &str) -> &[FnId] {
        self.fn_index.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The file whose relative path ends with `suffix`, if exactly one
    /// exists.
    pub fn file_by_suffix(&self, suffix: &str) -> Option<(usize, &FileModel)> {
        let mut found = None;
        for (i, fm) in self.files.iter().enumerate() {
            if fm.ctx.rel_path.ends_with(suffix) {
                if found.is_some() {
                    return None;
                }
                found = Some((i, fm));
            }
        }
        found
    }
}

/// Extracts the crate-level unsafe policy from `lib.rs` source.
fn unsafe_policy_of(source: &str) -> String {
    let tokens = lex(source).tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("unsafe_code") {
            let level = tokens
                .get(i.saturating_sub(2))
                .map(|t| t.text.as_str())
                .unwrap_or("");
            match level {
                "forbid" => return "forbid".to_string(),
                "deny" => return "deny".to_string(),
                _ => {}
            }
        }
    }
    "none".to_string()
}

fn sorted_entries(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sources_indexes_fns_and_files() {
        let model = WorkspaceModel::from_sources(
            &[
                ("crates/fl/src/a.rs", "pub fn alpha() { beta(); }"),
                (
                    "crates/core/src/b.rs",
                    "pub fn beta() {}\npub fn alpha() {}",
                ),
            ],
            None,
        );
        assert_eq!(model.files.len(), 2);
        assert_eq!(model.defs_of("alpha").len(), 2);
        assert_eq!(model.defs_of("beta").len(), 1);
        let (idx, fm) = model.file_by_suffix("fl/src/a.rs").expect("unique suffix");
        assert_eq!(fm.ctx.crate_dir, "fl");
        assert_eq!(model.files[idx].items.fns[0].name, "alpha");
    }

    #[test]
    fn fn_at_line_picks_the_innermost() {
        let model = WorkspaceModel::from_sources(
            &[(
                "crates/fl/src/a.rs",
                "fn outer() {\n    fn inner() {\n        work();\n    }\n}\n",
            )],
            None,
        );
        let fm = &model.files[0];
        assert_eq!(fm.fn_at_line(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(fm.fn_at_line(1).map(|f| f.name.as_str()), Some("outer"));
        assert!(fm.fn_at_line(9).is_none());
    }

    #[test]
    fn non_crate_paths_are_skipped() {
        let model = WorkspaceModel::from_sources(&[("vendor/x/src/a.rs", "fn f() {}")], None);
        assert!(model.files.is_empty());
    }

    #[test]
    fn unsafe_policy_extraction() {
        assert_eq!(
            unsafe_policy_of("#![forbid(unsafe_code)]\nfn f() {}"),
            "forbid"
        );
        assert_eq!(unsafe_policy_of("#![deny(unsafe_code)]"), "deny");
        assert_eq!(unsafe_policy_of("#![allow(unsafe_code)]"), "none");
        assert_eq!(unsafe_policy_of("fn f() {}"), "none");
    }
}
