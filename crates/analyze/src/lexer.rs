//! A minimal Rust lexer — just enough structure for line-oriented rules.
//!
//! The analyzer does not need a full grammar: every rule matches short
//! token patterns (`.` `unwrap` `(` `)`, `unsafe`, `HashMap`, …) and the
//! only hard part is *not* matching inside places that merely look like
//! code — string literals, char literals, doc examples, `//` and nested
//! `/* */` comments, raw strings with arbitrary `#` fences. The lexer
//! resolves exactly those ambiguities and hands the rule engine two flat,
//! line-tagged streams: significant tokens and comments.
//!
//! Doctest code inside `///` comments is comment text here, which is how
//! the engine gets the "doctests are exempt" behaviour for free.

/// What a significant token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Integer or float literal (suffixes included).
    Number,
    /// String, raw string, byte string, or char literal.
    Literal,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A single punctuation byte: `.`, `(`, `[`, `#`, `!`, …
    Punct,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Punct`, a single byte).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation byte `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }
}

/// One comment (line or block) with the 1-based line it starts on.
///
/// `text` excludes the delimiters; a block comment spanning several lines
/// is a single entry.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without `//`, `/*`, `*/` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for line comments).
    pub end_line: u32,
    /// Whether a significant token precedes the comment on its start line
    /// (i.e. it trails code instead of standing alone).
    pub trailing: bool,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// literals or comments simply run to end-of-file, which is the right
/// behaviour for a linter that must not die on a file rustc would reject.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
        last_token_line: 0,
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
    last_token_line: u32,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push_token(&mut self, kind: TokKind, text: String, line: u32) {
        self.last_token_line = self.line;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push_token(TokKind::Punct, (b as char).to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump_n(2);
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text =
            String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump_n(2);
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                end = self.pos;
                self.bump_n(2);
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        if depth > 0 {
            end = self.pos; // unterminated: comment runs to EOF
        }
        let text = String::from_utf8_lossy(self.bytes.get(start..end).unwrap_or(&[])).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
            trailing,
        });
    }

    /// Plain `"..."` strings with escapes. The token text is the *inner*
    /// source text (escapes left as written): the schema-drift pass matches
    /// wire/enum tag strings against it, so content must survive lexing.
    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        let mut end;
        loop {
            end = self.pos.min(self.bytes.len());
            match self.peek(0) {
                None => break, // unterminated: runs to EOF
                Some(b'\\') => self.bump_n(2),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        let text = String::from_utf8_lossy(self.bytes.get(start..end).unwrap_or(&[])).into_owned();
        self.push_token(TokKind::Literal, text, line);
    }

    /// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // A lifetime is `'` + ident whose next char is NOT a closing quote;
        // everything else that starts with `'` is a char literal.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut end = 2;
            while self.peek(end).is_some_and(is_ident_continue) {
                end += 1;
            }
            if self.peek(end) != Some(b'\'') {
                self.bump_n(end);
                self.push_token(TokKind::Lifetime, String::from("'_"), line);
                return;
            }
        }
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break, // stray quote, not a literal — stop scanning
                _ => self.bump(),
            }
        }
        self.push_token(TokKind::Literal, String::from("'…'"), line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and raw identifiers
    /// (`r#match`). Returns false when the current position is a plain
    /// identifier starting with `r`/`b`, leaving the state untouched.
    fn raw_or_byte_literal(&mut self) -> bool {
        let line = self.line;
        let mut offset = 1; // past the leading r/b
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r') {
            offset = 2;
        }
        let mut hashes = 0usize;
        while self.peek(offset + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(offset + hashes) {
            // Raw identifier `r#ident` (exactly one hash, then ident char).
            Some(c) if hashes == 1 && offset == 1 && is_ident_start(c) => {
                self.bump_n(2);
                self.ident();
                true
            }
            Some(b'"') if self.peek(0) == Some(b'r') || offset == 2 || hashes == 0 => {
                // Plain b"…" (offset 1, no hashes) also lands here.
                if self.peek(0) == Some(b'b') && offset == 1 && hashes > 0 {
                    return false; // `b#...` is not a literal
                }
                self.bump_n(offset + hashes + 1);
                self.raw_string_tail(hashes, line);
                true
            }
            _ => false,
        }
    }

    /// Consumes until `"` followed by `hashes` `#`s (or EOF). Like plain
    /// strings, the token text is the inner content.
    fn raw_string_tail(&mut self, hashes: usize, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    let end = self.pos;
                    self.bump_n(1 + hashes);
                    let text = String::from_utf8_lossy(self.bytes.get(start..end).unwrap_or(&[]))
                        .into_owned();
                    self.push_token(TokKind::Literal, text, line);
                    return;
                }
            }
            self.bump();
        }
        let text =
            String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned();
        self.push_token(TokKind::Literal, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text =
            String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[])).into_owned();
        self.push_token(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` and `1.method()` do not.
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Number, String::new(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_inside_strings_is_not_tokenized() {
        let src = r##"let s = "x.unwrap() // not code"; s.len();"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(ids.contains(&"len".to_string()));
        assert!(lex(src).comments.is_empty(), "// inside a string");
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = "let s = r#\"quote \" and .unwrap() stay text\"#; done();";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ids = idents("let a = b\"unwrap()\"; let c = br#\"panic!\"#; tail();");
        assert_eq!(ids, vec!["let", "a", "let", "c", "tail"]);
    }

    #[test]
    fn char_literals_do_not_eat_the_rest_of_the_file() {
        // A '"' char literal must not open a string.
        let ids = idents("let q = '\"'; let p = '\\''; rest();");
        assert!(ids.contains(&"rest".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner.unwrap() */ still comment */ after();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner.unwrap()"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn line_comments_capture_text_and_position() {
        let src = "let x = 1; // analyze:allow(no-unwrap) -- why\nnext();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        let c = &lexed.comments[0];
        assert_eq!(c.line, 1);
        assert!(c.trailing, "comment trails code on its line");
        assert!(c.text.contains("analyze:allow(no-unwrap)"));
    }

    #[test]
    fn standalone_comments_are_not_trailing() {
        let lexed = lex("// SAFETY: fine\nunsafe { x() }");
        assert!(!lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.tokens[0].line, 2);
    }

    #[test]
    fn doc_comments_with_code_examples_are_comments() {
        let src = "/// ```\n/// v.unwrap();\n/// ```\nfn f() {}";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(lexed.comments.len(), 3);
    }

    #[test]
    fn string_literal_contents_are_preserved() {
        let toks = lex("let a = \"round_start\"; let b = r#\"raw \" body\"#;").tokens;
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["round_start", "raw \" body"]);
        // Escapes stay as written, so substring matching still works.
        let toks = lex(r#"write!(s, "{{\"type\":\"fault\",");"#).tokens;
        let lit = toks
            .iter()
            .find(|t| t.kind == TokKind::Literal)
            .expect("literal");
        assert!(lit.text.contains("fault"), "{:?}", lit.text);
        // Unterminated strings run to EOF without panicking.
        let toks = lex("let s = \"open").tokens;
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("open"));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#type = 1; use r#match;");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"match".to_string()));
    }

    #[test]
    fn numbers_with_ranges_and_methods() {
        let toks = lex("for i in 0..10 { let x = 1.5f32; 2.pow(3); }").tokens;
        // `0..10` must produce two numbers and two dots, not `0.` `.10`.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3);
        assert!(toks.iter().any(|t| t.is_ident("pow")));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nfinal_ident();";
        let lexed = lex(src);
        let last = lexed.tokens.iter().find(|t| t.is_ident("final_ident"));
        assert_eq!(last.map(|t| t.line), Some(5));
        assert_eq!(lexed.comments[0].line, 3);
        assert_eq!(lexed.comments[0].end_line, 4);
    }
}
