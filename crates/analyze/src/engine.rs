//! Per-file analysis, the workspace pipeline, and exemption handling.
//!
//! The engine glues the lexer, the token-pattern matchers and the
//! cross-file passes together and resolves everything that needs context
//! beyond a single pattern:
//!
//! * `#[cfg(test)]` / `#[test]` regions (and the blocks they attach to)
//!   are exempt — the rules guard *library* behaviour, and tests assert
//!   panics on purpose;
//! * `// analyze:allow(rule-name) -- reason` annotations suppress hits on
//!   their own line and the line below; a malformed annotation is itself
//!   a violation, so typos cannot silently disable a rule. An
//!   `allow(slice-index)` also covers a `hot-path-index` reclassification
//!   of the same site, so existing annotations survive a fn turning hot;
//! * `unsafe` candidates are cleared by a `SAFETY:` comment within the
//!   three lines above (or on the same line);
//! * the workspace scan parses every file once into a
//!   [`WorkspaceModel`], runs the token rules per file, reclassifies
//!   `slice-index` hits on the hot round path to `hot-path-index`
//!   ([`crate::passes::panics`]), and merges the cross-file findings from
//!   [`crate::passes`] — all filtered through the same exemptions.

use crate::lexer::Comment;
use crate::model::{FileModel, WorkspaceModel};
use crate::passes;
use crate::passes::panics::{hot_context, hot_fns};
use crate::rules::{match_tokens, rule_by_name};
use std::collections::BTreeMap;
use std::path::Path;

/// One confirmed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name from [`crate::rules::RULES`].
    pub rule: &'static str,
    /// Trimmed source line, truncated for display.
    pub excerpt: String,
    /// Cross-file context (e.g. the counterpart a schema tag is missing
    /// from, or the hot root a panic site is reachable from). Empty for
    /// plain token-rule hits.
    pub note: String,
}

/// Result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Violations ordered by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Per-crate unsafe-code policy (`forbid` / `deny` / `none`), keyed by
    /// the `crates/<dir>` name.
    pub unsafe_policy: BTreeMap<String, String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl ScanResult {
    /// Per-(file, rule) violation counts — the baseline currency.
    pub fn counts(&self) -> BTreeMap<String, BTreeMap<String, u64>> {
        let mut out: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.file.clone())
                .or_default()
                .entry(v.rule.to_string())
                .or_default() += 1;
        }
        out
    }

    /// Total hits per rule, in [`crate::rules::RULES`] order.
    pub fn rule_totals(&self) -> Vec<(&'static str, u64)> {
        crate::rules::RULES
            .iter()
            .map(|r| {
                let n = self.violations.iter().filter(|v| v.rule == r.name).count() as u64;
                (r.name, n)
            })
            .collect()
    }
}

/// A rule hit awaiting exemption filtering.
struct Pending {
    rule: &'static str,
    line: u32,
    note: String,
}

/// Filters pending hits through test regions, `analyze:allow`
/// annotations and `SAFETY:` comments, and materializes survivors.
fn confirm(fm: &FileModel, mut pending: Vec<Pending>) -> Vec<Violation> {
    let allows = &fm.allows;
    pending.extend(allows.malformed.iter().map(|&line| Pending {
        rule: "malformed-allow",
        line,
        note: String::new(),
    }));

    let mut seen: Vec<(u32, &'static str)> = Vec::new();
    let mut out: Vec<Violation> = Vec::new();
    for p in pending {
        // unsafe-no-safety applies inside test regions too; everything else
        // is a library-behaviour rule.
        if fm.in_tests(p.line) && p.rule != "unsafe-no-safety" {
            continue;
        }
        if p.rule == "unsafe-no-safety" && has_safety_comment(&fm.lexed.comments, p.line) {
            continue;
        }
        if p.rule != "malformed-allow" {
            let aliased = p.rule == "hot-path-index" && allows.suppresses("slice-index", p.line);
            if aliased || allows.suppresses(p.rule, p.line) {
                continue;
            }
        }
        if seen.contains(&(p.line, p.rule)) {
            continue; // one report per (line, rule)
        }
        seen.push((p.line, p.rule));
        out.push(Violation {
            file: fm.ctx.rel_path.clone(),
            line: p.line,
            rule: p.rule,
            excerpt: excerpt_of(&fm.source, p.line),
            note: p.note,
        });
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Scans one file's source text with the token rules. `rel_path` chooses
/// the rule scope; paths outside `crates/*/src/` yield no violations.
/// The cross-file passes need the whole workspace and only run in
/// [`scan_workspace`] / [`scan_model`].
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let Some(fm) = FileModel::parse(rel_path, source) else {
        return Vec::new();
    };
    let pending = match_tokens(&fm.ctx, &fm.lexed.tokens)
        .into_iter()
        .map(|c| Pending {
            rule: c.rule,
            line: c.line,
            note: String::new(),
        })
        .collect();
    confirm(&fm, pending)
}

/// Runs the full pipeline — token rules, hot-path reclassification,
/// cross-file passes — over an already-loaded workspace model.
pub fn scan_model(model: &WorkspaceModel) -> ScanResult {
    let mut result = ScanResult {
        unsafe_policy: model.unsafe_policy.clone(),
        files_scanned: model.files.len(),
        ..ScanResult::default()
    };
    let hot = hot_fns(model);
    let findings = passes::run(model);
    for (fi, fm) in model.files.iter().enumerate() {
        let mut pending: Vec<Pending> = match_tokens(&fm.ctx, &fm.lexed.tokens)
            .into_iter()
            .map(|c| Pending {
                rule: c.rule,
                line: c.line,
                note: String::new(),
            })
            .collect();
        for p in &mut pending {
            if p.rule == "slice-index" {
                if let Some((name, root)) = hot_context(model, &hot, fi, p.line) {
                    p.rule = "hot-path-index";
                    p.note = format!("in `{name}`, reachable from {root}");
                }
            }
        }
        pending.extend(
            findings
                .iter()
                .filter(|f| f.file == fm.ctx.rel_path)
                .map(|f| Pending {
                    rule: f.rule,
                    line: f.line,
                    note: f.note.clone(),
                }),
        );
        result.violations.extend(confirm(fm, pending));
    }
    result
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    result
}

/// Scans every `crates/*/src/**/*.rs` under `root` plus each crate's
/// unsafe-code policy. Deterministic: directory entries are visited in
/// sorted order.
///
/// # Errors
///
/// Any I/O failure while walking or reading the tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanResult> {
    let model = WorkspaceModel::load(root)?;
    Ok(scan_model(&model))
}

/// Rank of an unsafe-code policy for ratchet comparisons.
pub fn policy_rank(policy: &str) -> u8 {
    match policy {
        "forbid" => 2,
        "deny" => 1,
        _ => 0,
    }
}

/// Parsed `analyze:allow` annotations of one file.
#[derive(Debug, Default)]
pub(crate) struct Allows {
    /// (rule, line the annotation may suppress on).
    entries: Vec<(String, u32)>,
    /// Lines with annotations that failed to parse.
    malformed: Vec<u32>,
}

impl Allows {
    pub(crate) fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.entries.iter().any(|(r, l)| r == rule && *l == line)
    }
}

const ALLOW_MARKER: &str = "analyze:allow";

/// Parses allow annotations out of the comment stream. The grammar is the
/// marker followed by `(rule[, rule…]) -- reason`; the comment must *start*
/// with the marker (after doc-comment slashes), so prose that merely
/// mentions the grammar is not an annotation. Each annotation suppresses
/// its own line and the line after its comment ends, so both trailing and
/// preceding-line placement work.
pub(crate) fn collect_allows(comments: &[Comment]) -> Allows {
    let mut out = Allows::default();
    for (i, c) in comments.iter().enumerate() {
        let trimmed = c.text.trim_start_matches(['/', '!', '*', ' ']);
        let Some(rest) = trimmed.strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        match parse_allow(rest) {
            Some(rules) => {
                // A standalone annotation may continue over a run of further
                // standalone `//` lines (the reason rarely fits on one); the
                // suppressed code line is the first line after the run.
                let mut last = c.end_line;
                if !c.trailing {
                    for next in comments.iter().skip(i + 1) {
                        if next.trailing || next.line != last + 1 {
                            break;
                        }
                        last = next.end_line;
                    }
                }
                for rule in rules {
                    out.entries.push((rule.clone(), c.line));
                    out.entries.push((rule, last + 1));
                }
            }
            None => out.malformed.push(c.line),
        }
    }
    out
}

/// Parses `(rule[, rule…]) -- reason`; `None` when malformed, the rule
/// list is empty, a rule is unknown, or the reason is missing/empty.
fn parse_allow(rest: &str) -> Option<Vec<String>> {
    let rest = rest.trim_start();
    let inner_end = rest.strip_prefix('(')?.find(')')?;
    let inner = rest.get(1..1 + inner_end)?;
    let after = rest.get(1 + inner_end + 1..)?.trim_start();
    let reason = after.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    let mut rules = Vec::new();
    for name in inner.split(',') {
        let name = name.trim();
        if name.is_empty() || rule_by_name(name).is_none() {
            return None;
        }
        rules.push(name.to_string());
    }
    if rules.is_empty() {
        return None;
    }
    Some(rules)
}

/// Whether a comment containing `SAFETY:` ends within the 3 lines above
/// `line` (or on `line` itself).
fn has_safety_comment(comments: &[Comment], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.end_line <= line && c.end_line + 3 >= line && c.text.contains("SAFETY:"))
}

fn excerpt_of(source: &str, line: u32) -> String {
    let text = source
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim();
    let mut out: String = text.chars().take(120).collect();
    if out.len() < text.len() {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        scan_source("crates/fl/src/x.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "pub fn lib() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { lib_result().unwrap(); panic!(\"x\"); }\n\
                   }\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn code_after_a_test_module_is_not_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { v.unwrap(); } }\n\
                   pub fn lib() { w.unwrap(); }\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn test_attribute_on_a_single_fn_is_exempt() {
        let src = "#[test]\nfn t() { v.unwrap(); }\nfn lib() { w.unwrap(); }\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn cfg_test_mod_semicolon_exempts_nothing() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { v.unwrap(); }\n";
        assert_eq!(rules_hit(src), vec!["no-unwrap"]);
    }

    #[test]
    fn allow_annotation_suppresses_same_line_and_next() {
        let same = "fn f() { v.unwrap(); } // analyze:allow(no-unwrap) -- provably non-empty\n";
        assert_eq!(rules_hit(same), Vec::<&str>::new());
        let above = "// analyze:allow(no-unwrap) -- provably non-empty\nfn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(above), Vec::<&str>::new());
        let wrong_rule = "// analyze:allow(no-expect) -- wrong rule\nfn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(wrong_rule), vec!["no-unwrap"]);
        let too_far = "// analyze:allow(no-unwrap) -- too far\n\nfn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(too_far), vec!["no-unwrap"]);
    }

    #[test]
    fn allow_annotation_continues_over_comment_runs() {
        // The reason may wrap onto further `//` lines; the first code line
        // after the run is the one suppressed.
        let src = "// analyze:allow(no-unwrap) -- the reason is long and\n\
                   // wraps onto a second comment line before the code.\n\
                   fn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
        // A trailing annotation does not leak onto later lines via a
        // following unrelated comment.
        let trailing = "fn f() {} // analyze:allow(no-unwrap) -- here\n\
                        // unrelated comment\n\
                        fn g() { v.unwrap(); }\n";
        assert_eq!(rules_hit(trailing), vec!["no-unwrap"]);
    }

    #[test]
    fn allow_annotation_can_name_several_rules() {
        let src = "// analyze:allow(no-unwrap, slice-index) -- bounds checked above\n\
                   fn f() { xs[0].unwrap(); }\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn malformed_allow_is_itself_a_violation() {
        for bad in [
            "fn f() {} // analyze:allow(no-unwrap)\n", // missing reason
            "fn f() {} // analyze:allow(not-a-rule) -- x\n", // unknown rule
            "fn f() {} // analyze:allow no-unwrap -- x\n", // missing parens
            "fn f() {} // analyze:allow() -- x\n",     // empty list
        ] {
            assert_eq!(rules_hit(bad), vec!["malformed-allow"], "case: {bad}");
        }
    }

    #[test]
    fn safety_comment_clears_unsafe() {
        let with = "// SAFETY: the pointer is valid for reads\nunsafe { f() }\n";
        assert_eq!(rules_hit(with), Vec::<&str>::new());
        let without = "unsafe { f() }\n";
        assert_eq!(rules_hit(without), vec!["unsafe-no-safety"]);
        let too_far = "// SAFETY: stale\n\n\n\n\nunsafe { f() }\n";
        assert_eq!(rules_hit(too_far), vec!["unsafe-no-safety"]);
    }

    #[test]
    fn one_report_per_line_and_rule() {
        let src =
            "use std::collections::HashMap;\nfn f(a: HashMap<u32, u32>, b: HashMap<u32, u32>) {}\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 2, "one per line, not one per token: {got:?}");
    }

    #[test]
    fn violations_carry_excerpts_and_sort_order() {
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 2);
        assert!(got[0].line < got[1].line);
        assert!(got[0].excerpt.contains("b.unwrap()"));
    }

    #[test]
    fn doctest_examples_do_not_fire() {
        let src = "/// ```\n/// x.unwrap();\n/// panic!(\"doc\");\n/// ```\npub fn f() {}\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn non_workspace_paths_scan_empty() {
        assert!(scan_source("vendor/rand/src/lib.rs", "v.unwrap();").is_empty());
        assert!(scan_source("tests/integration.rs", "v.unwrap();").is_empty());
    }

    // --- scan_model: the workspace pipeline ---

    #[test]
    fn hot_path_reclassification_carries_a_note() {
        let model = WorkspaceModel::from_sources(
            &[(
                "crates/fl/src/scheduler.rs",
                "impl RoundScheduler {\n\
                     pub fn run_round(&mut self, xs: &[f32]) -> f32 { xs[0] }\n\
                 }\n\
                 pub fn cold(xs: &[f32]) -> f32 { xs[1] }\n",
            )],
            None,
        );
        let scan = scan_model(&model);
        let rules: Vec<(&str, &str)> = scan
            .violations
            .iter()
            .map(|v| (v.rule, v.note.as_str()))
            .collect();
        assert_eq!(rules.len(), 2, "{rules:?}");
        assert_eq!(rules[0].0, "hot-path-index");
        assert!(rules[0].1.contains("run_round"), "note: {}", rules[0].1);
        assert_eq!(rules[1], ("slice-index", ""), "cold site stays cold");
    }

    #[test]
    fn allow_slice_index_also_covers_hot_path_index() {
        let model = WorkspaceModel::from_sources(
            &[(
                "crates/fl/src/scheduler.rs",
                "impl RoundScheduler {\n\
                     pub fn run_round(&mut self, xs: &[f32]) -> f32 {\n\
                         // analyze:allow(slice-index) -- non-empty by contract\n\
                         xs[0]\n\
                     }\n\
                 }\n",
            )],
            None,
        );
        let scan = scan_model(&model);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
    }

    #[test]
    fn pass_findings_merge_into_the_workspace_scan() {
        let model = WorkspaceModel::from_sources(
            &[(
                "crates/fl/src/x.rs",
                "pub fn seed_rng() -> StdRng { StdRng::from_entropy() }\n",
            )],
            None,
        );
        let scan = scan_model(&model);
        assert_eq!(
            scan.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec!["rng-unseeded"]
        );
    }
}
