//! Per-file analysis and workspace walking.
//!
//! The engine glues the lexer and the rule matchers together and resolves
//! everything that needs context beyond a token pattern:
//!
//! * `#[cfg(test)]` / `#[test]` regions (and the blocks they attach to)
//!   are exempt — the rules guard *library* behaviour, and tests assert
//!   panics on purpose;
//! * `// analyze:allow(rule-name) -- reason` annotations suppress hits on
//!   their own line and the line below; a malformed annotation is itself
//!   a violation, so typos cannot silently disable a rule;
//! * `unsafe` candidates are cleared by a `SAFETY:` comment within the
//!   three lines above (or on the same line);
//! * each crate's `src/lib.rs` is scanned for its unsafe-code policy
//!   (`forbid(unsafe_code)` > `deny(unsafe_code)` > none), which the
//!   baseline ratchets alongside the violation counts.

use crate::lexer::{lex, Comment, Token};
use crate::rules::{match_tokens, rule_by_name, Candidate, FileCtx};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One confirmed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name from [`crate::rules::RULES`].
    pub rule: &'static str,
    /// Trimmed source line, truncated for display.
    pub excerpt: String,
}

/// Result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Violations ordered by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Per-crate unsafe-code policy (`forbid` / `deny` / `none`), keyed by
    /// the `crates/<dir>` name.
    pub unsafe_policy: BTreeMap<String, String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl ScanResult {
    /// Per-(file, rule) violation counts — the baseline currency.
    pub fn counts(&self) -> BTreeMap<String, BTreeMap<String, u64>> {
        let mut out: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.file.clone())
                .or_default()
                .entry(v.rule.to_string())
                .or_default() += 1;
        }
        out
    }

    /// Total hits per rule, in [`crate::rules::RULES`] order.
    pub fn rule_totals(&self) -> Vec<(&'static str, u64)> {
        crate::rules::RULES
            .iter()
            .map(|r| {
                let n = self.violations.iter().filter(|v| v.rule == r.name).count() as u64;
                (r.name, n)
            })
            .collect()
    }
}

/// Scans one file's source text. `rel_path` chooses the rule scope; paths
/// outside `crates/*/src/` yield no violations.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let Some(ctx) = FileCtx::from_rel_path(rel_path) else {
        return Vec::new();
    };
    let lexed = lex(source);
    let exempt = test_regions(&lexed.tokens);
    let allows = collect_allows(&lexed.comments);
    let mut out: Vec<Violation> = Vec::new();

    let mut candidates: Vec<Candidate> = match_tokens(&ctx, &lexed.tokens);
    candidates.extend(allows.malformed.iter().map(|&line| Candidate {
        rule: "malformed-allow",
        line,
    }));

    let mut seen: Vec<(u32, &'static str)> = Vec::new();
    for c in candidates {
        // unsafe-no-safety applies inside test regions too; everything else
        // is a library-behaviour rule.
        let in_tests = exempt.iter().any(|r| r.contains(c.line));
        if in_tests && c.rule != "unsafe-no-safety" {
            continue;
        }
        if c.rule == "unsafe-no-safety" && has_safety_comment(&lexed.comments, c.line) {
            continue;
        }
        if c.rule != "malformed-allow" && allows.suppresses(c.rule, c.line) {
            continue;
        }
        if seen.contains(&(c.line, c.rule)) {
            continue; // one report per (line, rule)
        }
        seen.push((c.line, c.rule));
        out.push(Violation {
            file: ctx.rel_path.clone(),
            line: c.line,
            rule: c.rule,
            excerpt: excerpt_of(source, c.line),
        });
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Scans every `crates/*/src/**/*.rs` under `root` plus each crate's
/// unsafe-code policy. Deterministic: directory entries are visited in
/// sorted order.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanResult> {
    let mut result = ScanResult::default();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_entries(&crates_dir)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = file_name_of(&crate_dir);
        let mut files: Vec<PathBuf> = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            let rel = rel_path_from(root, &file);
            result.violations.extend(scan_source(&rel, &source));
            result.files_scanned += 1;
            if rel == format!("crates/{crate_name}/src/lib.rs") {
                result
                    .unsafe_policy
                    .insert(crate_name.clone(), unsafe_policy_of(&source));
            }
        }
        // A crate without a lib.rs (pure binary) still gets a policy row.
        result
            .unsafe_policy
            .entry(crate_name)
            .or_insert_with(|| "none".to_string());
    }
    result
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(result)
}

/// Rank of an unsafe-code policy for ratchet comparisons.
pub fn policy_rank(policy: &str) -> u8 {
    match policy {
        "forbid" => 2,
        "deny" => 1,
        _ => 0,
    }
}

/// Extracts the crate-level unsafe policy from `lib.rs` source:
/// `#![forbid(unsafe_code)]` → `forbid`, `#![deny(unsafe_code)]` → `deny`,
/// otherwise `none`.
fn unsafe_policy_of(source: &str) -> String {
    let tokens = lex(source).tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("unsafe_code") {
            let level = tokens
                .get(i.saturating_sub(2))
                .map(|t| t.text.as_str())
                .unwrap_or("");
            match level {
                "forbid" => return "forbid".to_string(),
                "deny" => return "deny".to_string(),
                _ => {}
            }
        }
    }
    "none".to_string()
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_path_from(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn sorted_entries(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// An inclusive line range.
#[derive(Debug, Clone, Copy)]
struct LineRange {
    start: u32,
    end: u32,
}

impl LineRange {
    fn contains(&self, line: u32) -> bool {
        line >= self.start && line <= self.end
    }
}

/// Finds the line ranges of `#[cfg(test)]` / `#[test]` items: from the
/// attribute to the closing brace of the block that follows. An attribute
/// followed by `;` before any `{` (e.g. `mod tests;`) exempts nothing.
fn test_regions(tokens: &[Token]) -> Vec<LineRange> {
    let mut regions: Vec<LineRange> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_attr_start = tokens.get(i).is_some_and(|t| t.is_punct('#'))
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.is_punct('[') || t.is_punct('!'));
        if !is_attr_start {
            i += 1;
            continue;
        }
        let attr_line = tokens.get(i).map(|t| t.line).unwrap_or(1);
        let open = if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            i + 2
        } else {
            i + 1
        };
        let Some(close) = matching_bracket(tokens, open) else {
            break;
        };
        // `test` anywhere in the attribute covers `#[test]`, `#[cfg(test)]`
        // and `#[cfg(all(test, …))]`; a `not` (as in `#[cfg(not(test))]`)
        // means the block is production code and must stay scanned.
        let attr_tokens = tokens.get(open..close).unwrap_or(&[]);
        let is_test_attr = attr_tokens.iter().any(|t| t.is_ident("test"))
            && !attr_tokens.iter().any(|t| t.is_ident("not"));
        i = close + 1;
        if !is_test_attr {
            continue;
        }
        // Walk to the block this attribute decorates, skipping further
        // attributes; give up at `;` (no block to exempt).
        while let Some(t) = tokens.get(i) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('#') {
                let open = if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                    i + 2
                } else {
                    i + 1
                };
                match matching_bracket(tokens, open) {
                    Some(close) => {
                        i = close + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if t.is_punct('{') {
                let end = matching_brace(tokens, i);
                let end_line = end
                    .and_then(|j| tokens.get(j))
                    .map(|t| t.line)
                    .unwrap_or(u32::MAX);
                regions.push(LineRange {
                    start: attr_line,
                    end: end_line,
                });
                i = end.map(|j| j + 1).unwrap_or(tokens.len());
                break;
            }
            i += 1;
        }
    }
    regions
}

fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Parsed `analyze:allow` annotations of one file.
#[derive(Debug, Default)]
struct Allows {
    /// (rule, line the annotation may suppress on).
    entries: Vec<(String, u32)>,
    /// Lines with annotations that failed to parse.
    malformed: Vec<u32>,
}

impl Allows {
    fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.entries.iter().any(|(r, l)| r == rule && *l == line)
    }
}

const ALLOW_MARKER: &str = "analyze:allow";

/// Parses allow annotations out of the comment stream. The grammar is the
/// marker followed by `(rule[, rule…]) -- reason`; the comment must *start*
/// with the marker (after doc-comment slashes), so prose that merely
/// mentions the grammar is not an annotation. Each annotation suppresses
/// its own line and the line after its comment ends, so both trailing and
/// preceding-line placement work.
fn collect_allows(comments: &[Comment]) -> Allows {
    let mut out = Allows::default();
    for (i, c) in comments.iter().enumerate() {
        let trimmed = c.text.trim_start_matches(['/', '!', '*', ' ']);
        let Some(rest) = trimmed.strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        match parse_allow(rest) {
            Some(rules) => {
                // A standalone annotation may continue over a run of further
                // standalone `//` lines (the reason rarely fits on one); the
                // suppressed code line is the first line after the run.
                let mut last = c.end_line;
                if !c.trailing {
                    for next in comments.iter().skip(i + 1) {
                        if next.trailing || next.line != last + 1 {
                            break;
                        }
                        last = next.end_line;
                    }
                }
                for rule in rules {
                    out.entries.push((rule.clone(), c.line));
                    out.entries.push((rule, last + 1));
                }
            }
            None => out.malformed.push(c.line),
        }
    }
    out
}

/// Parses `(rule[, rule…]) -- reason`; `None` when malformed, the rule
/// list is empty, a rule is unknown, or the reason is missing/empty.
fn parse_allow(rest: &str) -> Option<Vec<String>> {
    let rest = rest.trim_start();
    let inner_end = rest.strip_prefix('(')?.find(')')?;
    let inner = rest.get(1..1 + inner_end)?;
    let after = rest.get(1 + inner_end + 1..)?.trim_start();
    let reason = after.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    let mut rules = Vec::new();
    for name in inner.split(',') {
        let name = name.trim();
        if name.is_empty() || rule_by_name(name).is_none() {
            return None;
        }
        rules.push(name.to_string());
    }
    if rules.is_empty() {
        return None;
    }
    Some(rules)
}

/// Whether a comment containing `SAFETY:` ends within the 3 lines above
/// `line` (or on `line` itself).
fn has_safety_comment(comments: &[Comment], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.end_line <= line && c.end_line + 3 >= line && c.text.contains("SAFETY:"))
}

fn excerpt_of(source: &str, line: u32) -> String {
    let text = source
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim();
    let mut out: String = text.chars().take(120).collect();
    if out.len() < text.len() {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        scan_source("crates/fl/src/x.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "pub fn lib() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { lib_result().unwrap(); panic!(\"x\"); }\n\
                   }\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn code_after_a_test_module_is_not_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { v.unwrap(); } }\n\
                   pub fn lib() { w.unwrap(); }\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn test_attribute_on_a_single_fn_is_exempt() {
        let src = "#[test]\nfn t() { v.unwrap(); }\nfn lib() { w.unwrap(); }\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn cfg_test_mod_semicolon_exempts_nothing() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { v.unwrap(); }\n";
        assert_eq!(rules_hit(src), vec!["no-unwrap"]);
    }

    #[test]
    fn allow_annotation_suppresses_same_line_and_next() {
        let same = "fn f() { v.unwrap(); } // analyze:allow(no-unwrap) -- provably non-empty\n";
        assert_eq!(rules_hit(same), Vec::<&str>::new());
        let above = "// analyze:allow(no-unwrap) -- provably non-empty\nfn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(above), Vec::<&str>::new());
        let wrong_rule = "// analyze:allow(no-expect) -- wrong rule\nfn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(wrong_rule), vec!["no-unwrap"]);
        let too_far = "// analyze:allow(no-unwrap) -- too far\n\nfn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(too_far), vec!["no-unwrap"]);
    }

    #[test]
    fn allow_annotation_continues_over_comment_runs() {
        // The reason may wrap onto further `//` lines; the first code line
        // after the run is the one suppressed.
        let src = "// analyze:allow(no-unwrap) -- the reason is long and\n\
                   // wraps onto a second comment line before the code.\n\
                   fn f() { v.unwrap(); }\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
        // A trailing annotation does not leak onto later lines via a
        // following unrelated comment.
        let trailing = "fn f() {} // analyze:allow(no-unwrap) -- here\n\
                        // unrelated comment\n\
                        fn g() { v.unwrap(); }\n";
        assert_eq!(rules_hit(trailing), vec!["no-unwrap"]);
    }

    #[test]
    fn allow_annotation_can_name_several_rules() {
        let src = "// analyze:allow(no-unwrap, slice-index) -- bounds checked above\n\
                   fn f() { xs[0].unwrap(); }\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn malformed_allow_is_itself_a_violation() {
        for bad in [
            "fn f() {} // analyze:allow(no-unwrap)\n", // missing reason
            "fn f() {} // analyze:allow(not-a-rule) -- x\n", // unknown rule
            "fn f() {} // analyze:allow no-unwrap -- x\n", // missing parens
            "fn f() {} // analyze:allow() -- x\n",     // empty list
        ] {
            assert_eq!(rules_hit(bad), vec!["malformed-allow"], "case: {bad}");
        }
    }

    #[test]
    fn safety_comment_clears_unsafe() {
        let with = "// SAFETY: the pointer is valid for reads\nunsafe { f() }\n";
        assert_eq!(rules_hit(with), Vec::<&str>::new());
        let without = "unsafe { f() }\n";
        assert_eq!(rules_hit(without), vec!["unsafe-no-safety"]);
        let too_far = "// SAFETY: stale\n\n\n\n\nunsafe { f() }\n";
        assert_eq!(rules_hit(too_far), vec!["unsafe-no-safety"]);
    }

    #[test]
    fn one_report_per_line_and_rule() {
        let src =
            "use std::collections::HashMap;\nfn f(a: HashMap<u32, u32>, b: HashMap<u32, u32>) {}\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 2, "one per line, not one per token: {got:?}");
    }

    #[test]
    fn violations_carry_excerpts_and_sort_order() {
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }\n";
        let got = scan_source("crates/fl/src/x.rs", src);
        assert_eq!(got.len(), 2);
        assert!(got[0].line < got[1].line);
        assert!(got[0].excerpt.contains("b.unwrap()"));
    }

    #[test]
    fn unsafe_policy_extraction() {
        assert_eq!(
            unsafe_policy_of("#![forbid(unsafe_code)]\nfn f() {}"),
            "forbid"
        );
        assert_eq!(unsafe_policy_of("#![deny(unsafe_code)]"), "deny");
        assert_eq!(unsafe_policy_of("#![allow(unsafe_code)]"), "none");
        assert_eq!(unsafe_policy_of("fn f() {}"), "none");
    }

    #[test]
    fn doctest_examples_do_not_fire() {
        let src = "/// ```\n/// x.unwrap();\n/// panic!(\"doc\");\n/// ```\npub fn f() {}\n";
        assert_eq!(rules_hit(src), Vec::<&str>::new());
    }

    #[test]
    fn non_workspace_paths_scan_empty() {
        assert!(scan_source("vendor/rand/src/lib.rs", "v.unwrap();").is_empty());
        assert!(scan_source("tests/integration.rs", "v.unwrap();").is_empty());
    }
}
