//! Determinism taint: ambient entropy and unordered folds must not reach
//! the replayable runtime.
//!
//! Three rules:
//!
//! * `rng-unseeded` — RNG construction from ambient entropy
//!   (`from_entropy`, `OsRng`, `ThreadRng`) anywhere in library code. The
//!   sanctioned constructor is `calibre_tensor::rng::seeded(seed)`.
//! * `ambient-taint` — a fn in `crates/fl` / `crates/core` that does not
//!   itself touch ambient time/entropy (the `wallclock` rule owns that)
//!   but transitively *reaches* it through calls into other non-telemetry
//!   crates. This is the escape-hatch guard: an `analyze:allow(wallclock)`
//!   on a helper elsewhere must not silently leak ambient values into the
//!   deterministic runtime. Calls into `calibre-telemetry` are sanctioned —
//!   that crate owns wall-clock measurement and its values only feed
//!   events, never training state.
//! * `unordered-fold` — a fn that names a Hash container, iterates it, and
//!   accumulates in the same body. Hash iteration order is arbitrary, so
//!   any float fold over it is run-to-run nondeterministic. (`core`/`fl`/
//!   `cluster` already ban the containers outright via `hash-container`;
//!   this extends the fold check to every crate.)

use super::Finding;
use crate::lexer::TokKind;
use crate::model::{FnId, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};

/// Identifiers that mean ambient time or entropy entered the fn.
const AMBIENT_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
];

/// Entropy-specific subset that fires `rng-unseeded` directly.
const ENTROPY_IDENTS: &[&str] = &["from_entropy", "OsRng", "ThreadRng"];

/// Callee names too ubiquitous to resolve by name without drowning the
/// call graph in false edges.
pub(crate) const CALL_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "get",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "iter",
    "into_iter",
    "next",
    "collect",
    "map",
    "and_then",
    "ok_or",
    "unwrap_or",
    "extend",
    "clear",
    "contains",
    "sort",
    "write",
    "read",
    "to_string",
    "as_str",
    "as_ref",
    "name",
    "parse",
    "with_capacity",
    "min",
    "max",
    "sum",
    "abs",
    "sqrt",
];

/// Maximum number of same-name definitions a call edge may resolve to;
/// above this the name is treated as ambiguous and the edge dropped.
pub(crate) const AMBIGUITY_CAP: usize = 3;

/// Resolves a callee name to workspace definitions, applying the stoplist,
/// the ambiguity cap, and a per-target filter.
pub(crate) fn resolve(
    model: &WorkspaceModel,
    callee: &str,
    keep: impl Fn(FnId) -> bool,
) -> Vec<FnId> {
    if CALL_STOPLIST.contains(&callee) {
        return Vec::new();
    }
    let defs = model.defs_of(callee);
    if defs.is_empty() || defs.len() > AMBIGUITY_CAP {
        return Vec::new();
    }
    defs.iter().copied().filter(|&id| keep(id)).collect()
}

/// Whether a fn id belongs to scannable library code (not a binary, not
/// bench, not a `#[cfg(test)]` region).
fn is_library_fn(model: &WorkspaceModel, id: FnId) -> bool {
    let (Some(fm), Some(f)) = (model.file_of(id), model.get_fn(id)) else {
        return false;
    };
    !fm.ctx.is_binary && fm.ctx.crate_dir != "bench" && !fm.in_tests(f.line)
}

/// Runs all determinism checks.
pub fn check(model: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    rng_unseeded(model, &mut out);
    ambient_taint(model, &mut out);
    unordered_fold(model, &mut out);
    out
}

fn rng_unseeded(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for fm in &model.files {
        if fm.ctx.is_binary || fm.ctx.crate_dir == "bench" {
            continue;
        }
        for t in &fm.lexed.tokens {
            if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
                out.push(Finding {
                    file: fm.ctx.rel_path.clone(),
                    line: t.line,
                    rule: "rng-unseeded",
                    note: format!(
                        "`{}` draws ambient entropy — construct RNGs from an explicit seed \
                         (calibre_tensor::rng::seeded)",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Whether a fn's own body names ambient time/entropy. With
/// `reviewed_ok`, sites whose line carries an `analyze:allow(wallclock)`
/// annotation are skipped: a reviewed ambient use (telemetry-only timing,
/// typically) is sanctioned and must not seed taint — the annotation's
/// reason documents why the value never reaches training state.
fn uses_ambient(model: &WorkspaceModel, id: FnId, reviewed_ok: bool) -> bool {
    let (Some(fm), Some(f)) = (model.file_of(id), model.get_fn(id)) else {
        return false;
    };
    fm.lexed
        .tokens
        .get(f.body.0 + 1..f.body.1)
        .unwrap_or(&[])
        .iter()
        .any(|t| {
            t.kind == TokKind::Ident
                && AMBIENT_IDENTS.contains(&t.text.as_str())
                && !(reviewed_ok && fm.allows.suppresses("wallclock", t.line))
        })
}

fn ambient_taint(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // Taint sources: library fns outside telemetry whose bodies touch
    // *unreviewed* ambient idents. (Telemetry owns measurement and is
    // sanctioned; so is an allow(wallclock)-annotated site elsewhere.)
    let mut tainted: BTreeMap<FnId, String> = BTreeMap::new();
    for (fi, fm) in model.files.iter().enumerate() {
        if fm.ctx.crate_dir == "telemetry" {
            continue;
        }
        for (gi, f) in fm.items.fns.iter().enumerate() {
            let id = (fi, gi);
            if is_library_fn(model, id) && uses_ambient(model, id, true) {
                tainted.insert(id, format!("{}:{} `{}`", fm.ctx.rel_path, f.line, f.name));
            }
        }
    }
    // Propagate to callers until fixpoint. The workspace has a few
    // thousand fns; the frontier empties within a handful of sweeps.
    loop {
        let mut grew = false;
        for (fi, fm) in model.files.iter().enumerate() {
            if fm.ctx.crate_dir == "telemetry" {
                continue;
            }
            for (gi, f) in fm.items.fns.iter().enumerate() {
                let id = (fi, gi);
                if tainted.contains_key(&id) || !is_library_fn(model, id) {
                    continue;
                }
                let via = f.calls.iter().find_map(|c| {
                    resolve(model, &c.name, |t| t != id)
                        .into_iter()
                        .find(|t| tainted.contains_key(t))
                        .map(|t| (c.name.clone(), t))
                });
                if let Some((callee, src)) = via {
                    let origin = tainted.get(&src).cloned().unwrap_or_default();
                    tainted.insert(id, format!("`{callee}` ← {origin}"));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Report tainted fns defined in the deterministic runtime crates,
    // excluding direct users (`wallclock` already reports those sites).
    for (&id, origin) in &tainted {
        let (Some(fm), Some(f)) = (model.file_of(id), model.get_fn(id)) else {
            continue;
        };
        if !matches!(fm.ctx.crate_dir.as_str(), "fl" | "core") || uses_ambient(model, id, false) {
            continue;
        }
        out.push(Finding {
            file: fm.ctx.rel_path.clone(),
            line: f.line,
            rule: "ambient-taint",
            note: format!(
                "`{}` reaches ambient time/entropy via {} — ambient values must not \
                 flow into the deterministic runtime",
                f.name, origin
            ),
        });
    }
}

fn unordered_fold(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    const HASH: &[&str] = &["HashMap", "HashSet"];
    const ITERATE: &[&str] = &[
        "iter",
        "values",
        "keys",
        "into_iter",
        "into_values",
        "into_keys",
        "drain",
    ];
    const FOLDS: &[&str] = &["fold", "sum", "product"];
    for (fi, fm) in model.files.iter().enumerate() {
        for (gi, f) in fm.items.fns.iter().enumerate() {
            if !is_library_fn(model, (fi, gi)) {
                continue;
            }
            // Whole fn span including the signature: a `&HashMap<..>`
            // parameter that the body then iterates must count.
            let body = fm.lexed.tokens.get(f.start..f.body.1).unwrap_or(&[]);
            let names: BTreeSet<&str> = body
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let hashes = HASH.iter().any(|h| names.contains(h));
            let iterates = ITERATE.iter().any(|m| names.contains(m));
            let plus_assign = body
                .windows(2)
                .any(|w| matches!(w, [a, b] if a.is_punct('+') && b.is_punct('=')));
            let folds = plus_assign || FOLDS.iter().any(|m| names.contains(m));
            if hashes && iterates && folds {
                out.push(Finding {
                    file: fm.ctx.rel_path.clone(),
                    line: f.line,
                    rule: "unordered-fold",
                    note: format!(
                        "`{}` iterates a Hash container and accumulates in the same body — \
                         hash order is arbitrary, so the fold is run-to-run nondeterministic",
                        f.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(model: &WorkspaceModel) -> Vec<(&'static str, String, u32)> {
        check(model)
            .into_iter()
            .map(|f| (f.rule, f.file, f.line))
            .collect()
    }

    #[test]
    fn unseeded_rng_construction_fires_in_library_code_only() {
        let src = "pub fn init() -> StdRng { StdRng::from_entropy() }";
        let lib = WorkspaceModel::from_sources(&[("crates/fl/src/x.rs", src)], None);
        assert_eq!(
            fired(&lib),
            vec![("rng-unseeded", "crates/fl/src/x.rs".to_string(), 1)]
        );
        let bin = WorkspaceModel::from_sources(&[("crates/fl/src/main.rs", src)], None);
        assert!(
            fired(&bin).is_empty(),
            "binaries may seed however they like"
        );
        let seeded = WorkspaceModel::from_sources(
            &[(
                "crates/fl/src/x.rs",
                "pub fn init(seed: u64) -> StdRng { seeded(seed) }",
            )],
            None,
        );
        assert!(fired(&seeded).is_empty());
    }

    #[test]
    fn taint_flows_through_a_helper_crate_into_fl() {
        let helper = "pub fn stamp_ms() -> u64 {\n    let t = SystemTime::now();\n    0\n}\n";
        let fl = "pub fn schedule_round() -> u64 { stamp_ms() }\n";
        let model = WorkspaceModel::from_sources(
            &[
                ("crates/data/src/clockish.rs", helper),
                ("crates/fl/src/sched.rs", fl),
            ],
            None,
        );
        let got = check(&model);
        let taint: Vec<_> = got.iter().filter(|f| f.rule == "ambient-taint").collect();
        assert_eq!(taint.len(), 1, "{got:?}");
        assert!(taint
            .first()
            .is_some_and(|f| f.file == "crates/fl/src/sched.rs"
                && f.note.contains("stamp_ms")
                && f.note.contains("clockish.rs:1")));
        // The helper itself is a wallclock-rule site, not ambient-taint.
        assert!(!got
            .iter()
            .any(|f| f.rule == "ambient-taint" && f.file.contains("clockish")));
    }

    #[test]
    fn reviewed_wallclock_sites_do_not_seed_taint() {
        // The per-client timing helpers carry `analyze:allow(wallclock)`
        // with a telemetry-only rationale; callers must stay clean.
        let helper = "pub fn timed_run() -> u64 {\n\
                          let t = Instant::now(); // analyze:allow(wallclock) -- telemetry only\n\
                          0\n\
                      }\n";
        let fl = "pub fn schedule_round() -> u64 { timed_run() }\n";
        let model = WorkspaceModel::from_sources(
            &[
                ("crates/data/src/timing.rs", helper),
                ("crates/fl/src/sched.rs", fl),
            ],
            None,
        );
        assert!(
            check(&model).iter().all(|f| f.rule != "ambient-taint"),
            "reviewed ambient sites are sanctioned"
        );
    }

    #[test]
    fn taint_does_not_traverse_telemetry() {
        // Timestamps via calibre-telemetry are the sanctioned pattern.
        let telemetry = "pub fn stamp_ms() -> u64 { let t = SystemTime::now(); 0 }\n";
        let fl = "pub fn schedule_round() -> u64 { stamp_ms() }\n";
        let model = WorkspaceModel::from_sources(
            &[
                ("crates/telemetry/src/clock.rs", telemetry),
                ("crates/fl/src/sched.rs", fl),
            ],
            None,
        );
        assert!(
            check(&model).iter().all(|f| f.rule != "ambient-taint"),
            "telemetry-mediated time is sanctioned"
        );
    }

    #[test]
    fn taint_is_transitive_but_bounded_by_ambiguous_names() {
        let chain = "pub fn deep_clock() -> u64 { let i = Instant::now(); 0 }\n\
                     pub fn middle_hop() -> u64 { deep_clock() }\n";
        let fl = "pub fn top_level() -> u64 { middle_hop() }\n";
        let model = WorkspaceModel::from_sources(
            &[
                ("crates/ssl/src/helper.rs", chain),
                ("crates/fl/src/run.rs", fl),
            ],
            None,
        );
        let got = check(&model);
        assert!(
            got.iter().any(|f| f.rule == "ambient-taint"
                && f.file == "crates/fl/src/run.rs"
                && f.note.contains("middle_hop")),
            "{got:?}"
        );
        // A stoplisted callee name carries no taint edge.
        let stopped = WorkspaceModel::from_sources(
            &[
                (
                    "crates/ssl/src/helper.rs",
                    "pub fn new() -> u64 { let i = Instant::now(); 0 }\n",
                ),
                (
                    "crates/fl/src/run.rs",
                    "pub fn top_level() -> u64 { new() }\n",
                ),
            ],
            None,
        );
        assert!(check(&stopped).iter().all(|f| f.rule != "ambient-taint"));
    }

    #[test]
    fn hash_iteration_feeding_a_fold_fires() {
        let src = "pub fn total(m: &HashMap<u32, f32>) -> f32 {\n\
                       let mut acc = 0.0;\n\
                       for v in m.values() { acc += v; }\n\
                       acc\n\
                   }\n";
        let model = WorkspaceModel::from_sources(&[("crates/tensor/src/x.rs", src)], None);
        assert_eq!(
            fired(&model),
            vec![("unordered-fold", "crates/tensor/src/x.rs".to_string(), 1)]
        );
        // Lookup-only use of a hash container is fine.
        let lookup = "pub fn pick(m: &HashMap<u32, f32>, k: u32) -> f32 {\n\
                          m.get(&k).copied().unwrap_or(0.0)\n\
                      }\n";
        let model = WorkspaceModel::from_sources(&[("crates/tensor/src/x.rs", lookup)], None);
        assert!(fired(&model).is_empty());
        // Sorted-container folds are fine.
        let btree = "pub fn total(m: &BTreeMap<u32, f32>) -> f32 {\n\
                         m.values().sum()\n\
                     }\n";
        let model = WorkspaceModel::from_sources(&[("crates/tensor/src/x.rs", btree)], None);
        assert!(fired(&model).is_empty());
    }
}
