//! Panic reachability: slice-index debt on the live round path gates.
//!
//! A call-graph-lite BFS from the round/serve/transport entry points
//! computes which fns in the runtime crates (`fl`, `core`) are reachable
//! while a round is in flight. A `slice-index` candidate inside a
//! reachable fn is reclassified to `hot-path-index`: an out-of-bounds
//! panic there doesn't fail one computation, it kills the server loop or
//! corrupts the resilient executor's retry accounting, so this debt is
//! held at zero while cold-path `slice-index` debt merely ratchets.
//!
//! Call edges resolve by callee name (the workspace is `dyn`-free on this
//! path), with the shared stoplist and ambiguity cap from the determinism
//! pass keeping ubiquitous names (`get`, `len`, `new`, …) from flooding
//! the graph. Resolution is deliberately confined to the runtime crates:
//! the numeric kernels (`tensor`, `ssl`, `cluster`, `data`, `embed`) are
//! input-validated at the aggregation boundary and their indexing debt
//! stays on the cold ratchet.

use super::determinism::resolve;
use crate::model::{FnId, WorkspaceModel};
use std::collections::BTreeMap;

/// Crates whose fns participate in hot-path reachability.
const RUNTIME_CRATES: &[&str] = &["fl", "core"];

/// serve-loop entry points (by name, in `serve.rs`).
const SERVE_ROOTS: &[&str] = &["run_server", "run_rounds", "run_in_process", "run_client"];

/// Reachable-fn set with, for each fn, the root that first reached it.
#[derive(Debug, Default)]
pub struct HotPaths {
    reached: BTreeMap<FnId, String>,
}

impl HotPaths {
    /// The root label a fn is reachable from, if any.
    pub fn root_of(&self, id: FnId) -> Option<&str> {
        self.reached.get(&id).map(String::as_str)
    }

    /// Number of reachable fns (diagnostics).
    pub fn len(&self) -> usize {
        self.reached.len()
    }

    /// Whether no fn is reachable (no roots in this workspace).
    pub fn is_empty(&self) -> bool {
        self.reached.is_empty()
    }
}

/// Whether a fn id is eligible for the hot set: runtime crate, library
/// file, outside test regions.
fn eligible(model: &WorkspaceModel, id: FnId) -> bool {
    let (Some(fm), Some(f)) = (model.file_of(id), model.get_fn(id)) else {
        return false;
    };
    RUNTIME_CRATES.contains(&fm.ctx.crate_dir.as_str()) && !fm.ctx.is_binary && !fm.in_tests(f.line)
}

/// Whether a fn is a BFS root, and under which label.
fn root_label(model: &WorkspaceModel, id: FnId) -> Option<String> {
    let (fm, f) = (model.file_of(id)?, model.get_fn(id)?);
    if f.owner.as_deref() == Some("RoundScheduler") && f.name.starts_with("run_round") {
        return Some(format!("RoundScheduler::{}", f.name));
    }
    if fm.ctx.rel_path.ends_with("crates/fl/src/transport.rs") {
        return Some(format!("transport `{}`", f.name));
    }
    if fm.ctx.rel_path.ends_with("crates/fl/src/serve.rs") && SERVE_ROOTS.contains(&f.name.as_str())
    {
        return Some(format!("serve::{}", f.name));
    }
    None
}

/// Computes the hot-path reachable set.
pub fn hot_fns(model: &WorkspaceModel) -> HotPaths {
    let mut hot = HotPaths::default();
    let mut queue: Vec<FnId> = Vec::new();
    for (fi, fm) in model.files.iter().enumerate() {
        for (gi, _) in fm.items.fns.iter().enumerate() {
            let id = (fi, gi);
            if !eligible(model, id) {
                continue;
            }
            if let Some(label) = root_label(model, id) {
                hot.reached.insert(id, label);
                queue.push(id);
            }
        }
    }
    while let Some(id) = queue.pop() {
        let Some(label) = hot.reached.get(&id).cloned() else {
            continue;
        };
        let Some(f) = model.get_fn(id) else { continue };
        for call in &f.calls {
            for target in resolve(model, &call.name, |t| eligible(model, t)) {
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    hot.reached.entry(target)
                {
                    slot.insert(label.clone());
                    queue.push(target);
                }
            }
        }
    }
    hot
}

/// If `line` of file `file_idx` sits inside a hot fn, returns the fn name
/// and the root label for the reclassification note.
pub fn hot_context<'m>(
    model: &'m WorkspaceModel,
    hot: &'m HotPaths,
    file_idx: usize,
    line: u32,
) -> Option<(&'m str, &'m str)> {
    let fm = model.files.get(file_idx)?;
    for (gi, f) in fm.items.fns.iter().enumerate() {
        if f.contains_line(line) {
            if let Some(root) = hot.root_of((file_idx, gi)) {
                return Some((f.name.as_str(), root));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel::from_sources(files, None)
    }

    #[test]
    fn scheduler_roots_reach_their_callees_transitively() {
        let scheduler = "impl RoundScheduler {\n\
                             pub fn run_round(&mut self) { dispatch_updates(); }\n\
                         }\n\
                         pub fn dispatch_updates() { fold_update(); }\n\
                         pub fn fold_update() {}\n\
                         pub fn cold_helper() {}\n";
        let m = model(&[("crates/fl/src/scheduler.rs", scheduler)]);
        let hot = hot_fns(&m);
        assert_eq!(hot.len(), 3, "root + two callees");
        // fold_update is on line 5; cold_helper on line 6.
        let ctx = hot_context(&m, &hot, 0, 5).expect("fold_update is hot");
        assert_eq!(ctx.0, "fold_update");
        assert!(ctx.1.contains("RoundScheduler::run_round"));
        assert!(
            hot_context(&m, &hot, 0, 6).is_none(),
            "cold_helper stays cold"
        );
    }

    #[test]
    fn transport_and_serve_files_are_roots() {
        let transport = "impl SocketTransport {\n\
                             pub fn send_frame(&mut self) { frame_len(); }\n\
                         }\n\
                         pub fn frame_len() {}\n";
        let serve = "pub fn run_server() { accept_one(); }\n\
                     pub fn accept_one() {}\n\
                     pub fn unrelated_tool() {}\n";
        let m = model(&[
            ("crates/fl/src/serve.rs", serve),
            ("crates/fl/src/transport.rs", transport),
        ]);
        let hot = hot_fns(&m);
        // transport: send_frame + frame_len both in-file roots/reached;
        // serve: run_server root + accept_one reached; unrelated_tool cold.
        assert!(hot_context(&m, &hot, 1, 4).is_some(), "frame_len hot");
        assert!(hot_context(&m, &hot, 0, 2).is_some(), "accept_one hot");
        assert!(hot_context(&m, &hot, 0, 3).is_none(), "unrelated_tool cold");
    }

    #[test]
    fn reachability_stops_at_the_numeric_kernel_boundary() {
        let scheduler = "impl RoundScheduler {\n\
                             pub fn run_round(&mut self) { kernel_matmul(); }\n\
                         }\n";
        let tensor = "pub fn kernel_matmul() { inner_index(); }\n\
                      pub fn inner_index() {}\n";
        let m = model(&[
            ("crates/fl/src/scheduler.rs", scheduler),
            ("crates/tensor/src/backend.rs", tensor),
        ]);
        let hot = hot_fns(&m);
        assert_eq!(hot.len(), 1, "only the root itself: {hot:?}");
        assert!(hot_context(&m, &hot, 1, 1).is_none(), "tensor stays cold");
    }

    #[test]
    fn test_region_fns_are_never_hot() {
        let scheduler = "impl RoundScheduler {\n\
                             pub fn run_round(&mut self) { replay_round(); }\n\
                         }\n\
                         #[cfg(test)]\n\
                         mod tests {\n\
                             pub fn replay_round() {}\n\
                         }\n";
        let m = model(&[("crates/fl/src/scheduler.rs", scheduler)]);
        let hot = hot_fns(&m);
        assert!(
            hot_context(&m, &hot, 0, 6).is_none(),
            "test helper stays cold"
        );
    }
}
