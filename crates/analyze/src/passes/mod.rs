//! Cross-file semantic passes over the [`crate::model::WorkspaceModel`].
//!
//! The per-file token rules catch what a single line can prove; these
//! passes catch the drift that only shows up *between* files:
//!
//! * [`schema`] — every wire/enum tag must survive the full round trip:
//!   variant ↔ encoder ↔ decoder ↔ interning table ↔ DESIGN.md;
//! * [`determinism`] — ambient entropy (clocks, unseeded RNGs) and
//!   unordered-container folds must not reach the deterministic runtime;
//! * [`panics`] — slice-index sites reachable from the round/serve/
//!   transport hot path are reclassified from ratcheting debt into the
//!   gating `hot-path-index` rule.
//!
//! Findings are raw: the engine filters them through the same test-region
//! and `analyze:allow` machinery as the token rules, so a contract checked
//! in a `#[cfg(test)]` helper or an annotated site never fires.

pub mod determinism;
pub mod panics;
pub mod schema;

use crate::model::WorkspaceModel;

/// One raw pass finding, before engine-side exemption filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path the finding anchors to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name from [`crate::rules::RULES`].
    pub rule: &'static str,
    /// Human explanation naming the other side of the broken contract
    /// (file:line where available).
    pub note: String,
}

/// Runs the schema-drift and determinism-taint passes. Panic reachability
/// is not a producer of new findings — it reclassifies slice-index
/// candidates — so the engine invokes [`panics`] separately.
pub fn run(model: &WorkspaceModel) -> Vec<Finding> {
    let mut out = schema::check(model);
    out.extend(determinism::check(model));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}
