//! Schema-drift: wire/enum tags must survive every hop of the round trip.
//!
//! Four contracts, all cross-file:
//!
//! 1. **Enum coverage** — any fn named like an encoder/decoder/parser
//!    (`parse`, `name`, `tag`, `tag_name`, `kind_tag`, `to_json`,
//!    `from_value`, `encode_payload`, `decode_payload`, `sink`, `round`)
//!    implemented on an enum in the same file must mention *every* variant
//!    of that enum. A `_` wildcard arm that silently folds a new variant
//!    into old behaviour is exactly the drift this catches.
//! 2. **Event tag round trip** — every `"type"` tag emitted by
//!    `Event::to_json` must be decoded by `Event::from_value`, and every
//!    tag/field literal `from_value` reads must be produced by `to_json`.
//! 3. **Interning tables** — every fault/attack tag produced by
//!    `ClientFault::kind_tag` / `Corruption::kind_tag` (chaos) and
//!    `AttackKind::kind_tag` (adversary) must be a key of the matching
//!    interning table in `telemetry/src/event.rs`, or a decoded run folds
//!    the kind to `"other"` and replay diverges from the live run.
//! 4. **Spec keyword documentation** — every keyword accepted by the
//!    `Aggregator` / `SamplerKind` / `AttackPlan` / `RoundPath` spec
//!    parsers (`parse` / `parse_spec`) must appear in `DESIGN.md` (skipped
//!    when the workspace has no `DESIGN.md`, as the fixture trees do not).

use super::Finding;
use crate::lexer::TokKind;
use crate::model::{FileModel, WorkspaceModel};
use crate::parser::FnItem;
use std::collections::BTreeSet;

/// Fn names that promise full variant coverage when implemented on an enum.
const COVERAGE_FNS: &[&str] = &[
    "parse",
    "name",
    "tag",
    "tag_name",
    "kind_tag",
    "to_json",
    "from_value",
    "encode_payload",
    "decode_payload",
    "sink",
    "round",
];

/// Spec parsers whose accepted keywords must be documented in DESIGN.md.
const SPEC_PARSERS: &[&str] = &["Aggregator", "SamplerKind", "AttackPlan", "RoundPath"];

/// Tag-producing fns and the interning table that must know their tags:
/// (producer file suffix, producer owners, target file suffix, target fn).
const INTERN_CONTRACTS: &[(&str, &[&str], &str, &str)] = &[
    (
        "crates/fl/src/adversary.rs",
        &["AttackKind"],
        "crates/telemetry/src/event.rs",
        "intern_attack_kind",
    ),
    (
        "crates/fl/src/chaos.rs",
        &["ClientFault", "Corruption"],
        "crates/telemetry/src/event.rs",
        "intern_fault_kind",
    ),
];

/// Runs all schema contracts.
pub fn check(model: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    enum_coverage(model, &mut out);
    event_round_trip(model, &mut out);
    intern_tables(model, &mut out);
    spec_keywords(model, &mut out);
    out
}

/// Idents appearing inside a fn body.
fn body_idents<'m>(fm: &'m FileModel, f: &FnItem) -> BTreeSet<&'m str> {
    fm.lexed
        .tokens
        .get(f.body.0 + 1..f.body.1)
        .unwrap_or(&[])
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

/// String literals (inner text, line) inside a fn body.
fn body_literals<'m>(fm: &'m FileModel, f: &FnItem) -> Vec<(&'m str, u32)> {
    fm.lexed
        .tokens
        .get(f.body.0 + 1..f.body.1)
        .unwrap_or(&[])
        .iter()
        .filter(|t| t.kind == TokKind::Literal)
        .map(|t| (t.text.as_str(), t.line))
        .collect()
}

/// Whether a literal looks like a machine tag: lowercase snake_case, short,
/// no spaces or format placeholders.
fn is_tag_like(s: &str) -> bool {
    s.len() >= 2
        && s.len() <= 24
        && s.as_bytes().first().is_some_and(u8::is_ascii_lowercase)
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Contract 1: coverage fns on an enum must mention every variant.
fn enum_coverage(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for fm in &model.files {
        for e in &fm.items.enums {
            if e.variants.len() < 2 {
                continue;
            }
            for f in &fm.items.fns {
                if f.owner.as_deref() != Some(e.name.as_str())
                    || !COVERAGE_FNS.contains(&f.name.as_str())
                    || f.body.0 == f.body.1
                {
                    continue;
                }
                let mentioned = body_idents(fm, f);
                for (variant, vline) in &e.variants {
                    if !mentioned.contains(variant.as_str()) {
                        out.push(Finding {
                            file: fm.ctx.rel_path.clone(),
                            line: f.line,
                            rule: "schema-drift",
                            note: format!(
                                "`{}::{}` never mentions variant `{}` ({}:{}) — a wildcard arm \
                                 is silently folding it",
                                e.name, f.name, variant, fm.ctx.rel_path, vline
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Extracts `"type"` tags from an encoder literal: every occurrence of
/// `type\":\"<tag>` (the escaped-in-source JSON key) yields `<tag>`.
fn type_tags_in(literal: &str) -> Vec<String> {
    const MARKER: &str = "type\\\":\\\"";
    let mut out = Vec::new();
    let mut rest = literal;
    while let Some(at) = rest.find(MARKER) {
        let tail = rest.get(at + MARKER.len()..).unwrap_or("");
        let tag: String = tail
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        if !tag.is_empty() {
            out.push(tag);
        }
        rest = tail;
    }
    out
}

/// Contract 2: `Event::to_json` and `Event::from_value` agree on tags.
fn event_round_trip(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    let Some((_, fm)) = model.file_by_suffix("crates/telemetry/src/event.rs") else {
        return;
    };
    let event_fn = |name: &str| {
        fm.items
            .fns
            .iter()
            .find(|f| f.name == name && f.owner.as_deref() == Some("Event"))
    };
    let (Some(enc), Some(dec)) = (event_fn("to_json"), event_fn("from_value")) else {
        return;
    };

    // Encoder side: (tag, line of the literal emitting it).
    let mut enc_tags: Vec<(String, u32)> = Vec::new();
    let mut enc_text = String::new();
    for (lit, line) in body_literals(fm, enc) {
        enc_text.push_str(lit);
        enc_text.push('\n');
        for tag in type_tags_in(lit) {
            enc_tags.push((tag, line));
        }
    }
    // Decoder side: every tag-like literal (type tags and field names).
    let dec_lits: Vec<(&str, u32)> = body_literals(fm, dec)
        .into_iter()
        .filter(|(s, _)| is_tag_like(s))
        .collect();

    for (tag, line) in &enc_tags {
        if !dec_lits.iter().any(|(s, _)| s == tag) {
            out.push(Finding {
                file: fm.ctx.rel_path.clone(),
                line: *line,
                rule: "schema-drift",
                note: format!(
                    "`Event::to_json` emits type tag \"{}\" but `Event::from_value` \
                     ({}:{}) never decodes it",
                    tag, fm.ctx.rel_path, dec.line
                ),
            });
        }
    }
    for (lit, line) in &dec_lits {
        if !enc_text.contains(lit) {
            out.push(Finding {
                file: fm.ctx.rel_path.clone(),
                line: *line,
                rule: "schema-drift",
                note: format!(
                    "`Event::from_value` reads \"{}\" but `Event::to_json` ({}:{}) \
                     never writes it",
                    lit, fm.ctx.rel_path, enc.line
                ),
            });
        }
    }
}

/// Contract 3: produced fault/attack tags must be interning-table keys.
fn intern_tables(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for (src_suffix, owners, dst_suffix, dst_fn) in INTERN_CONTRACTS {
        let Some((_, src)) = model.file_by_suffix(src_suffix) else {
            continue;
        };
        let Some((_, dst)) = model.file_by_suffix(dst_suffix) else {
            continue;
        };
        let Some(table) = dst.items.fns.iter().find(|f| f.name == *dst_fn) else {
            continue;
        };
        let known: BTreeSet<&str> = body_literals(dst, table)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        for f in &src.items.fns {
            let producer =
                f.name == "kind_tag" && f.owner.as_deref().is_some_and(|o| owners.contains(&o));
            if !producer {
                continue;
            }
            for (tag, line) in body_literals(src, f) {
                if is_tag_like(tag) && !known.contains(tag) {
                    out.push(Finding {
                        file: src.ctx.rel_path.clone(),
                        line,
                        rule: "schema-drift",
                        note: format!(
                            "tag \"{}\" from `{}::kind_tag` is not a key of `{}` ({}:{}) — \
                             decoded replays fold it to \"other\"",
                            tag,
                            f.owner.as_deref().unwrap_or("?"),
                            dst_fn,
                            dst.ctx.rel_path,
                            table.line
                        ),
                    });
                }
            }
        }
    }
}

/// Contract 4: spec-parser keywords must appear in DESIGN.md.
fn spec_keywords(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    let Some(doc) = &model.design_doc else {
        return;
    };
    for fm in &model.files {
        for f in &fm.items.fns {
            let spec_parser = (f.name == "parse" || f.name == "parse_spec")
                && f.owner
                    .as_deref()
                    .is_some_and(|o| SPEC_PARSERS.contains(&o));
            if !spec_parser {
                continue;
            }
            for (lit, line) in body_literals(fm, f) {
                // Keywords may carry a `:`/`=` value separator as written
                // (`"trimmed:"`, `"scale="`) and may be kebab-case
                // (`"trimmed-mean"`); normalize before the shape test.
                let keyword = lit.trim_end_matches([':', '=']);
                if !is_tag_like(&keyword.replace('-', "_")) {
                    continue;
                }
                if !doc.contains(keyword) {
                    out.push(Finding {
                        file: fm.ctx.rel_path.clone(),
                        line,
                        rule: "schema-drift",
                        note: format!(
                            "spec keyword \"{}\" accepted by `{}::{}` is not documented \
                             in DESIGN.md",
                            keyword,
                            f.owner.as_deref().unwrap_or("?"),
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<(&str, u32)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn orphan_variant_in_a_coverage_fn_is_drift() {
        let src = "pub enum Msg { Hello, Assign, Bye }\n\
                   impl Msg {\n\
                       pub fn tag_name(&self) -> &'static str {\n\
                           match self { Msg::Hello => \"hello\", Msg::Assign => \"assign\", _ => \"?\" }\n\
                       }\n\
                   }\n";
        let model = WorkspaceModel::from_sources(&[("crates/fl/src/proto.rs", src)], None);
        let got = check(&model);
        assert_eq!(rules_of(&got), vec![("schema-drift", 3)]);
        assert!(
            got.first().is_some_and(|f| f.note.contains("`Bye`")),
            "{got:?}"
        );
        assert!(got.first().is_some_and(|f| f.note.contains("proto.rs:1")));
    }

    #[test]
    fn full_coverage_is_clean_and_non_coverage_fns_are_ignored() {
        let src = "pub enum Msg { Hello, Bye }\n\
                   impl Msg {\n\
                       pub fn tag(&self) -> u8 { match self { Msg::Hello => 1, Msg::Bye => 2 } }\n\
                       pub fn is_hello(&self) -> bool { matches!(self, Msg::Hello) }\n\
                   }\n";
        let model = WorkspaceModel::from_sources(&[("crates/fl/src/proto.rs", src)], None);
        assert!(check(&model).is_empty());
    }

    #[test]
    fn type_tag_extraction_reads_escaped_json_keys() {
        assert_eq!(
            type_tags_in("{{\\\"type\\\":\\\"round_start\\\",\\\"round\\\":{round}"),
            vec!["round_start"]
        );
        assert!(type_tags_in("no tags here").is_empty());
    }

    #[test]
    fn event_encoder_decoder_tag_mismatch_fires_both_ways() {
        // Encoder emits `fault`, decoder only knows `round_start` (and
        // reads a field the encoder never writes).
        let src = "pub enum Event { RoundStart, Fault }\n\
                   impl Event {\n\
                       pub fn to_json(&self) -> String {\n\
                           match self {\n\
                               Event::RoundStart => \"{{\\\"type\\\":\\\"round_start\\\"}}\".into(),\n\
                               Event::Fault => \"{{\\\"type\\\":\\\"fault\\\"}}\".into(),\n\
                           }\n\
                       }\n\
                       pub fn from_value(tag: &str) -> Option<Event> {\n\
                           match tag { \"round_start\" => Some(Event::RoundStart), \"mystery\" => None, _ => None }\n\
                       }\n\
                   }\n";
        let model = WorkspaceModel::from_sources(&[("crates/telemetry/src/event.rs", src)], None);
        let got = check(&model);
        let notes: Vec<&str> = got.iter().map(|f| f.note.as_str()).collect();
        assert!(
            notes
                .iter()
                .any(|n| n.contains("\"fault\"") && n.contains("never decodes")),
            "{notes:?}"
        );
        assert!(
            notes
                .iter()
                .any(|n| n.contains("\"mystery\"") && n.contains("never writes")),
            "{notes:?}"
        );
        // from_value not mentioning Fault is also enum-coverage drift.
        assert!(notes
            .iter()
            .any(|n| n.contains("`Event::from_value`") && n.contains("`Fault`")));
    }

    #[test]
    fn unknown_produced_tag_misses_the_interning_table() {
        let adversary = "pub enum AttackKind { SignFlip, Gradient }\n\
                         impl AttackKind {\n\
                             pub fn kind_tag(self) -> &'static str {\n\
                                 match self {\n\
                                     AttackKind::SignFlip => \"attack_flip\",\n\
                                     AttackKind::Gradient => \"attack_gradient\",\n\
                                 }\n\
                             }\n\
                         }\n";
        let event = "fn intern_attack_kind(kind: &str) -> &'static str {\n\
                         match kind { \"attack_flip\" => \"attack_flip\", _ => \"other\" }\n\
                     }\n";
        let model = WorkspaceModel::from_sources(
            &[
                ("crates/fl/src/adversary.rs", adversary),
                ("crates/telemetry/src/event.rs", event),
            ],
            None,
        );
        let got = check(&model);
        assert!(
            got.iter().any(|f| f.rule == "schema-drift"
                && f.line == 6
                && f.note.contains("attack_gradient")
                && f.note.contains("intern_attack_kind")),
            "{got:?}"
        );
        // The known tag is clean.
        assert!(!got.iter().any(|f| f.note.contains("\"attack_flip\" from")));
    }

    #[test]
    fn undocumented_spec_keyword_fires_only_with_a_design_doc() {
        let src = "pub enum Aggregator { Mean, Krum }\n\
                   impl Aggregator {\n\
                       pub fn parse(s: &str) -> Option<Aggregator> {\n\
                           match s { \"mean\" => Some(Aggregator::Mean), \"krum\" => Some(Aggregator::Krum), _ => None }\n\
                       }\n\
                   }\n";
        let files = [("crates/fl/src/aggregate.rs", src)];
        let documented = WorkspaceModel::from_sources(&files, Some("mean and krum are documented"));
        assert!(check(&documented).is_empty());
        let partial = WorkspaceModel::from_sources(&files, Some("only mean is documented"));
        let got = check(&partial);
        assert_eq!(got.len(), 1);
        assert!(got.first().is_some_and(|f| f.note.contains("\"krum\"")));
        // No DESIGN.md (fixture trees): the doc contract is disabled.
        let undocumented = WorkspaceModel::from_sources(&files, None);
        assert!(check(&undocumented).is_empty());
    }
}
