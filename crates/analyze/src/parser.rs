//! Item-level parsing on top of the lexer — just enough structure for the
//! cross-file passes.
//!
//! The per-file rules need only token patterns; the workspace passes need
//! to know *which items exist and how they connect*: every enum and its
//! variants (schema drift), every fn with the impl type that owns it and
//! the names it calls (determinism taint, panic reachability). This is not
//! a Rust grammar — it is a single forward walk that brace-matches its way
//! through items, tolerant of anything rustc would reject, because a
//! linter must never die on a half-written file.

use crate::lexer::{TokKind, Token};

/// One `enum` item with its variants.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with their 1-based lines, in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One callee reference inside a fn body: an identifier immediately
/// followed by `(` (method or free call — the parser does not resolve
/// which; the passes match by name).
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee identifier.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// The `impl`/`trait` type the fn is defined on, when any: the last
    /// path segment of the implemented type (`impl Msg` → `Msg`,
    /// `impl Transport for SocketTransport` → `SocketTransport`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (or of the `;` for a
    /// bodyless trait signature).
    pub end_line: u32,
    /// Token index of the `fn` keyword (signature start).
    pub start: usize,
    /// Token-index range `[start, end]` of the body braces in the file's
    /// token stream (`start == end` means no body).
    pub body: (usize, usize),
    /// Call references inside the body, in source order.
    pub calls: Vec<Call>,
}

impl FnItem {
    /// Whether `line` falls inside this fn (signature through closing
    /// brace).
    pub fn contains_line(&self, line: u32) -> bool {
        line >= self.line && line <= self.end_line
    }
}

/// All items of one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Enums in declaration order.
    pub enums: Vec<EnumItem>,
    /// Fns in declaration order (nested fns appear as their own entries).
    pub fns: Vec<FnItem>,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "let", "else", "as",
    "ref", "mut", "box", "unsafe", "where", "impl", "dyn",
];

/// Parses a lexed token stream into items.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    // Active impl/trait contexts: (token index of closing brace, owner).
    let mut owners: Vec<(usize, Option<String>)> = Vec::new();
    let mut i = 0usize;
    while let Some(t) = tokens.get(i) {
        while owners.last().is_some_and(|(close, _)| *close < i) {
            owners.pop();
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" => {
                let (owner, open) = parse_impl_header(tokens, i);
                let Some(open) = open else {
                    i += 1;
                    continue;
                };
                let close = matching_brace(tokens, open).unwrap_or(tokens.len() - 1);
                owners.push((close, owner));
                i = open + 1;
            }
            "enum" => {
                if let Some((item, next)) = parse_enum(tokens, i) {
                    out.enums.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                if let Some((item, next)) =
                    parse_fn(tokens, i, owners.last().and_then(|(_, o)| o.clone()))
                {
                    out.fns.push(item);
                    // Continue *inside* the body so nested fns and inner
                    // impls are still discovered.
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses an `impl`/`trait` header starting at the keyword; returns the
/// owner type name and the token index of the body's `{`.
fn parse_impl_header(tokens: &[Token], kw: usize) -> (Option<String>, Option<usize>) {
    // Header = everything between the keyword and the first `{` (const
    // generic braces in headers are rare enough to ignore).
    let mut open = None;
    for (j, t) in tokens.iter().enumerate().skip(kw + 1) {
        if t.is_punct('{') {
            open = Some(j);
            break;
        }
        if t.is_punct(';') {
            return (None, None); // `impl Trait for Type;` — nothing to own
        }
    }
    let open = match open {
        Some(o) => o,
        None => return (None, None),
    };
    let header = tokens.get(kw + 1..open).unwrap_or(&[]);
    // If a top-level `for` is present, the owner path follows it; else the
    // owner path is the header itself, past any leading generics.
    let mut angle = 0i32;
    let mut path_start = 0usize;
    for (j, t) in header.iter().enumerate() {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && t.is_ident("for") {
            path_start = j + 1;
        }
    }
    // Skip leading generics of the owner path (`impl<'a> Foo<'a>` when no
    // `for`): if the path starts with `<`, jump past the matching `>`.
    let mut j = path_start;
    if header.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while let Some(t) = header.get(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Owner = last ident of the path segment run before generics begin.
    let mut owner = None;
    while let Some(t) = header.get(j) {
        if t.kind == TokKind::Ident && !t.is_ident("for") {
            owner = Some(t.text.clone());
            j += 1;
        } else if t.is_punct(':') {
            j += 1; // path separator `::` lexes as two `:`
        } else {
            break; // `<`, `where`, lifetime — generics begin
        }
    }
    (owner, Some(open))
}

/// Parses an enum starting at the `enum` keyword; returns the item and the
/// token index just past the closing brace.
fn parse_enum(tokens: &[Token], kw: usize) -> Option<(EnumItem, usize)> {
    let name_tok = tokens.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut open = None;
    for (j, t) in tokens.iter().enumerate().skip(kw + 2) {
        if t.is_punct('{') {
            open = Some(j);
            break;
        }
        if t.is_punct(';') {
            return None; // `enum` without a body we can see
        }
    }
    let open = open?;
    let close = matching_brace(tokens, open)?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = true;
    let mut j = open + 1;
    while j < close {
        let Some(t) = tokens.get(j) else { break };
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct('#') {
                // Attribute on a variant: skip the `[...]` group.
                if let Some(end) = matching_bracket(tokens, j + 1) {
                    j = end + 1;
                    continue;
                }
            } else if t.is_punct(',') {
                expect_variant = true;
            } else if expect_variant && t.kind == TokKind::Ident {
                variants.push((t.text.clone(), t.line));
                expect_variant = false;
            }
        }
        j += 1;
    }
    Some((
        EnumItem {
            name: name_tok.text.clone(),
            line: tokens.get(kw).map(|t| t.line).unwrap_or(name_tok.line),
            variants,
        },
        close + 1,
    ))
}

/// Parses a fn starting at the `fn` keyword; returns the item and the token
/// index just past the signature (inside the body, so nested items are
/// still walked).
fn parse_fn(tokens: &[Token], kw: usize, owner: Option<String>) -> Option<(FnItem, usize)> {
    let name_tok = tokens.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(i32) -> i32` pointer type
    }
    // Scan the signature for the body `{` or a terminating `;`.
    let mut j = kw + 2;
    let mut paren = 0i32;
    let (open, end_tok) = loop {
        let t = tokens.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 && t.is_punct('{') {
            break (Some(j), j);
        } else if paren == 0 && t.is_punct(';') {
            break (None, j);
        }
        j += 1;
    };
    let line_at = |k: usize| tokens.get(k).map(|t| t.line).unwrap_or(name_tok.line);
    let (body, end_line) = match open {
        Some(open) => {
            let close = matching_brace(tokens, open)?;
            ((open, close), line_at(close))
        }
        None => ((end_tok, end_tok), line_at(end_tok)),
    };
    let mut calls = Vec::new();
    if body.0 < body.1 {
        for k in body.0 + 1..body.1 {
            let Some(t) = tokens.get(k) else { break };
            let called = t.kind == TokKind::Ident
                && !CALL_KEYWORDS.contains(&t.text.as_str())
                && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
                && !tokens
                    .get(k.wrapping_sub(1))
                    .is_some_and(|p| p.is_ident("fn"));
            if called {
                calls.push(Call {
                    name: t.text.clone(),
                    line: t.line,
                });
            }
        }
    }
    Some((
        FnItem {
            name: name_tok.text.clone(),
            owner,
            line: line_at(kw),
            end_line,
            start: kw,
            body,
            calls,
        },
        end_tok + 1,
    ))
}

/// Finds the inclusive line ranges of `#[cfg(test)]` / `#[test]` items:
/// from the attribute to the closing brace of the block that follows. An
/// attribute followed by `;` before any `{` (e.g. `mod tests;`) exempts
/// nothing.
pub(crate) fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_attr_start = tokens.get(i).is_some_and(|t| t.is_punct('#'))
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.is_punct('[') || t.is_punct('!'));
        if !is_attr_start {
            i += 1;
            continue;
        }
        let attr_line = tokens.get(i).map(|t| t.line).unwrap_or(1);
        let open = if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            i + 2
        } else {
            i + 1
        };
        let Some(close) = matching_bracket(tokens, open) else {
            break;
        };
        // `test` anywhere in the attribute covers `#[test]`, `#[cfg(test)]`
        // and `#[cfg(all(test, …))]`; a `not` (as in `#[cfg(not(test))]`)
        // means the block is production code and must stay scanned.
        let attr_tokens = tokens.get(open..close).unwrap_or(&[]);
        let is_test_attr = attr_tokens.iter().any(|t| t.is_ident("test"))
            && !attr_tokens.iter().any(|t| t.is_ident("not"));
        i = close + 1;
        if !is_test_attr {
            continue;
        }
        // Walk to the block this attribute decorates, skipping further
        // attributes; give up at `;` (no block to exempt).
        while let Some(t) = tokens.get(i) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('#') {
                let open = if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                    i + 2
                } else {
                    i + 1
                };
                match matching_bracket(tokens, open) {
                    Some(close) => {
                        i = close + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if t.is_punct('{') {
                let end = matching_brace(tokens, i);
                let end_line = end
                    .and_then(|j| tokens.get(j))
                    .map(|t| t.line)
                    .unwrap_or(u32::MAX);
                regions.push((attr_line, end_line));
                i = end.map(|j| j + 1).unwrap_or(tokens.len());
                break;
            }
            i += 1;
        }
    }
    regions
}

/// Index of the `]` matching the `[` at `open`, if present.
pub(crate) fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`, if present.
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn enums_and_variants_with_payloads() {
        let src = "pub enum Msg {\n\
                       Hello { client: u64 },\n\
                       #[allow(dead_code)]\n\
                       Assign(u32, Vec<f32>),\n\
                       Bye,\n\
                   }\n";
        let got = items(src);
        assert_eq!(got.enums.len(), 1);
        let e = &got.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Hello", "Assign", "Bye"]);
        assert_eq!(e.variants[0].1, 2);
    }

    #[test]
    fn enum_variant_payload_fields_are_not_variants() {
        let got = items("enum E { A { x: u32, y: u32 }, B(Vec<u8>), C }");
        let names: Vec<&str> = got.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn fns_get_their_impl_owner() {
        let src = "impl Msg {\n    fn tag(&self) -> u8 { self.go() }\n}\n\
                   fn free() { help(); }\n\
                   impl Transport for SocketTransport {\n    fn send(&mut self) { frame(); }\n}\n";
        let got = items(src);
        assert_eq!(got.fns.len(), 3);
        assert_eq!(got.fns[0].name, "tag");
        assert_eq!(got.fns[0].owner.as_deref(), Some("Msg"));
        assert_eq!(got.fns[1].name, "free");
        assert_eq!(got.fns[1].owner, None);
        assert_eq!(got.fns[2].name, "send");
        assert_eq!(got.fns[2].owner.as_deref(), Some("SocketTransport"));
    }

    #[test]
    fn generic_impls_resolve_the_owner_segment() {
        let src = "impl<'a, T: Clone> Foo<'a, T> {\n    fn a(&self) {}\n}\n\
                   impl std::fmt::Display for Bar {\n    fn fmt(&self) {}\n}\n";
        let got = items(src);
        assert_eq!(got.fns[0].owner.as_deref(), Some("Foo"));
        assert_eq!(got.fns[1].owner.as_deref(), Some("Bar"));
    }

    #[test]
    fn calls_are_collected_by_name() {
        let src = "fn run() {\n    let x = helper(1);\n    obj.method(x);\n    mac!(ignored);\n    if cond(x) {}\n}\n";
        let got = items(src);
        let calls: Vec<&str> = got.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["helper", "method", "cond"]);
    }

    #[test]
    fn nested_fns_are_their_own_items() {
        let src = "fn outer() {\n    fn inner() { deep(); }\n    inner();\n}\n";
        let got = items(src);
        let names: Vec<&str> = got.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // The outer fn's call list over-approximates into the nested body;
        // that is fine for taint (it only ever adds edges).
        assert!(got.fns[0].calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn trait_signatures_without_bodies() {
        let src = "pub trait Transport {\n    fn send(&mut self, m: Msg) -> Result<(), WireError>;\n    fn rounds(&self) -> u32 { 0 }\n}\n";
        let got = items(src);
        assert_eq!(got.fns.len(), 2);
        assert_eq!(got.fns[0].name, "send");
        assert_eq!(got.fns[0].owner.as_deref(), Some("Transport"));
        assert_eq!(got.fns[0].body.0, got.fns[0].body.1, "no body");
        assert_eq!(got.fns[1].name, "rounds");
    }

    #[test]
    fn fn_lines_span_signature_to_closing_brace() {
        let src = "fn f(\n    x: u32,\n) -> u32 {\n    x\n}\n";
        let got = items(src);
        assert_eq!(got.fns[0].line, 1);
        assert_eq!(got.fns[0].end_line, 5);
        assert!(got.fns[0].contains_line(4));
        assert!(!got.fns[0].contains_line(6));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let got = items("fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }");
        assert_eq!(got.fns.len(), 1);
        assert_eq!(got.fns[0].name, "real");
    }
}
