//! The committed, ratcheting baseline.
//!
//! `results/analyze_baseline.json` records, per workspace-relative file,
//! how many violations of each rule are *tolerated* — the debt inherited
//! when the analyzer landed — plus each crate's unsafe-code policy. The
//! contract is a one-way ratchet:
//!
//! * `check` fails when any (file, rule) count **exceeds** its baseline
//!   entry (a new violation appeared) or a crate's unsafe policy weakens;
//! * `ratchet` refuses to run while any count exceeds the baseline, and
//!   otherwise rewrites it to the current (lower or equal) counts, so debt
//!   can be paid down but never re-borrowed.
//!
//! The file is parsed with the workspace's own offline JSON reader and
//! written with deterministic key order, so diffs stay reviewable.

use crate::engine::{policy_rank, ScanResult, Violation};
use calibre_telemetry::json::JsonValue;
use std::collections::BTreeMap;

/// Parsed baseline contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Tolerated violation counts: file → rule → count.
    pub files: BTreeMap<String, BTreeMap<String, u64>>,
    /// Per-crate unsafe-code policy (`forbid` / `deny` / `none`).
    pub unsafe_policy: BTreeMap<String, String>,
}

impl Baseline {
    /// Builds the baseline that exactly mirrors a scan.
    pub fn from_scan(scan: &ScanResult) -> Baseline {
        Baseline {
            files: scan.counts(),
            unsafe_policy: scan.unsafe_policy.clone(),
        }
    }

    /// Tolerated count for one (file, rule) pair (0 when absent).
    pub fn count(&self, file: &str, rule: &str) -> u64 {
        self.files
            .get(file)
            .and_then(|rules| rules.get(rule))
            .copied()
            .unwrap_or(0)
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not JSON or not the
    /// expected schema.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = JsonValue::parse(text)?;
        let mut out = Baseline::default();
        if let Some(JsonValue::Object(files)) = root.get("files") {
            for (file, rules) in files {
                let JsonValue::Object(rules) = rules else {
                    return Err(format!("files.{file}: expected an object"));
                };
                let mut counts = BTreeMap::new();
                for (rule, count) in rules {
                    let n = count
                        .as_i64()
                        .ok_or_else(|| format!("files.{file}.{rule}: expected a count"))?;
                    counts.insert(rule.clone(), n.max(0) as u64);
                }
                out.files.insert(file.clone(), counts);
            }
        }
        if let Some(JsonValue::Object(policy)) = root.get("unsafe_policy") {
            for (crate_dir, level) in policy {
                let level = level
                    .as_str()
                    .ok_or_else(|| format!("unsafe_policy.{crate_dir}: expected a string"))?;
                out.unsafe_policy
                    .insert(crate_dir.clone(), level.to_string());
            }
        }
        Ok(out)
    }

    /// Serializes with stable key order and 2-space indentation.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"unsafe_policy\": {");
        for (i, (crate_dir, level)) in self.unsafe_policy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {}",
                json_string(crate_dir),
                json_string(level)
            ));
        }
        out.push_str("\n  },\n  \"files\": {");
        for (i, (file, rules)) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{", json_string(file)));
            for (j, (rule, count)) in rules.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      {}: {count}", json_string(rule)));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Escapes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One (file, rule) pair whose count moved against the ratchet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountDelta {
    /// Workspace-relative file.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Tolerated count from the baseline.
    pub baseline: u64,
    /// Count in the current scan.
    pub current: u64,
}

/// Outcome of comparing a scan against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// (file, rule) pairs that grew — these fail `check`.
    pub regressions: Vec<CountDelta>,
    /// (file, rule) pairs that shrank — `ratchet` candidates.
    pub improvements: Vec<CountDelta>,
    /// Crates whose unsafe policy is weaker than the baseline records
    /// (crate, baseline policy, current policy) — these fail `check`.
    pub policy_regressions: Vec<(String, String, String)>,
    /// Violations belonging to regressed (file, rule) pairs, for display.
    pub offending: Vec<Violation>,
}

impl Comparison {
    /// Whether the scan honours the ratchet.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.policy_regressions.is_empty()
    }
}

/// Compares a scan against the baseline.
///
/// A file absent from the baseline tolerates nothing; a crate absent from
/// the baseline's policy map must enter at `forbid` (new crates start
/// clean).
pub fn compare(baseline: &Baseline, scan: &ScanResult) -> Comparison {
    let mut cmp = Comparison::default();
    let current = scan.counts();

    for (file, rules) in &current {
        for (rule, &count) in rules {
            let tolerated = baseline.count(file, rule);
            if count > tolerated {
                cmp.regressions.push(CountDelta {
                    file: file.clone(),
                    rule: rule.clone(),
                    baseline: tolerated,
                    current: count,
                });
            } else if count < tolerated {
                cmp.improvements.push(CountDelta {
                    file: file.clone(),
                    rule: rule.clone(),
                    baseline: tolerated,
                    current: count,
                });
            }
        }
    }
    // Entries that vanished entirely (file deleted or cleaned) are
    // improvements too: the ratchet should shed them.
    for (file, rules) in &baseline.files {
        for (rule, &tolerated) in rules {
            let still = current
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if still == 0 && tolerated > 0 {
                cmp.improvements.push(CountDelta {
                    file: file.clone(),
                    rule: rule.clone(),
                    baseline: tolerated,
                    current: 0,
                });
            }
        }
    }

    for (crate_dir, policy) in &scan.unsafe_policy {
        let required = baseline
            .unsafe_policy
            .get(crate_dir)
            .map(String::as_str)
            .unwrap_or("forbid");
        if policy_rank(policy) < policy_rank(required) {
            cmp.policy_regressions
                .push((crate_dir.clone(), required.to_string(), policy.clone()));
        }
    }

    for v in &scan.violations {
        if cmp
            .regressions
            .iter()
            .any(|d| d.file == v.file && d.rule == v.rule)
        {
            cmp.offending.push(v.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scan_source;

    fn scan_of(files: &[(&str, &str)]) -> ScanResult {
        let mut scan = ScanResult::default();
        for (path, src) in files {
            scan.violations.extend(scan_source(path, src));
            scan.files_scanned += 1;
        }
        scan
    }

    #[test]
    fn json_round_trip_is_identity() {
        let mut base = Baseline::default();
        base.files.insert(
            "crates/fl/src/x.rs".into(),
            [("no-unwrap".to_string(), 2u64)].into_iter().collect(),
        );
        base.unsafe_policy.insert("fl".into(), "forbid".into());
        let parsed = Baseline::parse(&base.to_json()).expect("own output parses");
        assert_eq!(parsed, base);
    }

    #[test]
    fn empty_baseline_serializes_and_parses() {
        let base = Baseline::default();
        assert_eq!(Baseline::parse(&base.to_json()).ok(), Some(base));
    }

    #[test]
    fn new_violation_is_a_regression() {
        let scan = scan_of(&[("crates/fl/src/x.rs", "fn f() { v.unwrap(); }")]);
        let cmp = compare(&Baseline::default(), &scan);
        assert!(!cmp.ok());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].rule, "no-unwrap");
        assert_eq!(cmp.offending.len(), 1);
    }

    #[test]
    fn tolerated_violation_passes_and_cleanup_improves() {
        let scan = scan_of(&[("crates/fl/src/x.rs", "fn f() { v.unwrap(); }")]);
        let base = Baseline::from_scan(&scan);
        assert!(compare(&base, &scan).ok());

        let clean = scan_of(&[("crates/fl/src/x.rs", "fn f() {}")]);
        let cmp = compare(&base, &clean);
        assert!(cmp.ok());
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].current, 0);
    }

    #[test]
    fn count_increase_within_a_known_file_fails() {
        let one = scan_of(&[("crates/fl/src/x.rs", "fn f() { v.unwrap(); }")]);
        let base = Baseline::from_scan(&one);
        let two = scan_of(&[(
            "crates/fl/src/x.rs",
            "fn f() { v.unwrap(); }\nfn g() { w.unwrap(); }",
        )]);
        let cmp = compare(&base, &two);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].baseline, 1);
        assert_eq!(cmp.regressions[0].current, 2);
    }

    #[test]
    fn policy_weakening_fails_and_new_crates_must_forbid() {
        let mut scan = ScanResult::default();
        scan.unsafe_policy.insert("fl".into(), "deny".into());
        let mut base = Baseline::default();
        base.unsafe_policy.insert("fl".into(), "forbid".into());
        let cmp = compare(&base, &scan);
        assert_eq!(cmp.policy_regressions.len(), 1);

        // A crate unknown to the baseline defaults to requiring forbid.
        let mut scan = ScanResult::default();
        scan.unsafe_policy.insert("newcrate".into(), "none".into());
        let cmp = compare(&Baseline::default(), &scan);
        assert_eq!(cmp.policy_regressions.len(), 1);

        let mut scan = ScanResult::default();
        scan.unsafe_policy
            .insert("newcrate".into(), "forbid".into());
        assert!(compare(&Baseline::default(), &scan).ok());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
