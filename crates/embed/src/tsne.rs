//! Exact (O(n²)) t-SNE.
//!
//! Regenerates the 2-D embeddings of the paper's Figs. 1, 2, 5, 6, 7 and 8.
//! The implementation follows van der Maaten & Hinton (2008): per-point
//! perplexity calibration via binary search, early exaggeration, and
//! momentum gradient descent. PCA initialization keeps runs reproducible.

use crate::pca::pca;
use calibre_tensor::{rng, Matrix};

/// Configuration for [`tsne`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbors).
    pub perplexity: f32,
    /// Total gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Iterations during which the attractive forces are exaggerated.
    pub exaggeration_iters: usize,
    /// Early-exaggeration factor.
    pub exaggeration: f32,
    /// Seed (used for PCA init and the tiny initial jitter).
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration_iters: 80,
            exaggeration: 12.0,
            seed: 0,
        }
    }
}

/// Embeds `data` into 2-D.
///
/// Returns an `(n, 2)` matrix of coordinates.
///
/// # Panics
///
/// Panics if `data` has fewer than 5 rows (too few for perplexity
/// calibration to be meaningful).
pub fn tsne(data: &Matrix, config: &TsneConfig) -> Matrix {
    let n = data.rows();
    assert!(n >= 5, "t-SNE needs at least 5 points, got {n}");
    let p = joint_probabilities(data, config.perplexity);

    // PCA init, scaled small, plus jitter to break ties.
    let mut rng_ = rng::seeded(config.seed);
    let mut y = if data.cols() >= 2 {
        let fit = pca(data, 2, config.seed);
        let proj = fit.transform(data);
        let scale = proj.max_abs().max(1e-6);
        proj.scale(1e-2 / scale)
    } else {
        Matrix::zeros(n, 2)
    };
    for v in y.iter_mut() {
        *v += 1e-4 * rng::normal(&mut rng_);
    }

    let mut velocity = Matrix::zeros(n, 2);
    let mut gains = Matrix::full(n, 2, 1.0);

    for iter in 0..config.iterations {
        let exaggerate = if iter < config.exaggeration_iters {
            config.exaggeration
        } else {
            1.0
        };
        let momentum = if iter < config.exaggeration_iters {
            0.5
        } else {
            0.8
        };

        // Student-t affinities in embedding space.
        let mut q_num = Matrix::zeros(n, n);
        let mut q_sum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = y.row_distance_sq(i, &y, j);
                let v = 1.0 / (1.0 + d);
                q_num.set(i, j, v);
                q_num.set(j, i, v);
                q_sum += 2.0 * v;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 Σ_j (p_ij·ex − q_ij) q_num_ij (y_i − y_j)
        let mut grad = Matrix::zeros(n, 2);
        for i in 0..n {
            let mut gx = 0.0;
            let mut gy = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let num = q_num.get(i, j);
                let q = (num / q_sum).max(1e-12);
                let mult = (exaggerate * p.get(i, j) - q) * num;
                gx += mult * (y.get(i, 0) - y.get(j, 0));
                gy += mult * (y.get(i, 1) - y.get(j, 1));
            }
            grad.set(i, 0, 4.0 * gx);
            grad.set(i, 1, 4.0 * gy);
        }

        // Adaptive gains (standard t-SNE heuristic).
        for i in 0..n {
            for c in 0..2 {
                let g = grad.get(i, c);
                let v = velocity.get(i, c);
                let gain = gains.get(i, c);
                let new_gain = if (g > 0.0) != (v > 0.0) {
                    gain + 0.2
                } else {
                    (gain * 0.8).max(0.01)
                };
                gains.set(i, c, new_gain);
                let new_v = momentum * v - config.learning_rate * new_gain * g;
                velocity.set(i, c, new_v);
                y.set(i, c, y.get(i, c) + new_v);
            }
        }

        // Re-center to keep coordinates bounded.
        let mean = y.mean_rows();
        y = y.add_row_vec(&mean.scale(-1.0));
    }
    y
}

/// Computes the symmetrized joint probabilities `P` with per-point sigma
/// calibrated to `perplexity` by binary search.
fn joint_probabilities(data: &Matrix, perplexity: f32) -> Matrix {
    let n = data.rows();
    let target_entropy = perplexity.max(2.0).ln();

    // Pairwise squared distances.
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = data.row_distance_sq(i, data, j);
            d2.set(i, j, d);
            d2.set(j, i, d);
        }
    }

    let mut p = Matrix::zeros(n, n);
    for i in 0..n {
        let mut beta = 1.0f32; // 1/(2σ²)
        let mut beta_min = 0.0f32;
        let mut beta_max = f32::INFINITY;
        let mut row = vec![0.0f32; n];
        for _ in 0..50 {
            let mut sum = 0.0f32;
            for (j, item) in row.iter_mut().enumerate() {
                if j == i {
                    *item = 0.0;
                    continue;
                }
                *item = (-beta * d2.get(i, j)).exp();
                sum += *item;
            }
            let sum = sum.max(1e-12);
            // Shannon entropy of the conditional distribution.
            let mut entropy = 0.0f32;
            for (j, item) in row.iter_mut().enumerate() {
                if j == i {
                    continue;
                }
                *item /= sum;
                if *item > 1e-12 {
                    entropy -= *item * item.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = (beta + beta_min) / 2.0;
            }
        }
        for (j, &v) in row.iter().enumerate() {
            p.set(i, j, v);
        }
    }

    // Symmetrize and normalize.
    let mut joint = Matrix::zeros(n, n);
    let norm = 1.0 / (2.0 * n as f32);
    for i in 0..n {
        for j in 0..n {
            let v = ((p.get(i, j) + p.get(j, i)) * norm).max(1e-12);
            joint.set(i, j, v);
        }
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_cluster::silhouette_score;
    use calibre_tensor::rng::{normal_matrix, seeded};

    fn two_blobs(n_per: usize, sep: f32) -> (Matrix, Vec<usize>) {
        let mut r = seeded(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for k in 0..2 {
            let noise = normal_matrix(&mut r, n_per, 6, 0.3);
            for i in 0..n_per {
                let mut row: Vec<f32> = noise.row(i).to_vec();
                row[0] += k as f32 * sep;
                rows.push(row);
                labels.push(k);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn embedding_has_two_columns_and_is_finite() {
        let (data, _) = two_blobs(20, 5.0);
        let y = tsne(
            &data,
            &TsneConfig {
                iterations: 50,
                ..Default::default()
            },
        );
        assert_eq!(y.shape(), (40, 2));
        assert!(y.all_finite());
    }

    #[test]
    fn separated_blobs_stay_separated_in_embedding() {
        let (data, labels) = two_blobs(25, 8.0);
        let y = tsne(
            &data,
            &TsneConfig {
                iterations: 150,
                perplexity: 10.0,
                ..Default::default()
            },
        );
        let s = silhouette_score(&y, &labels);
        assert!(
            s > 0.3,
            "embedded silhouette {s} too low for separated blobs"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = two_blobs(10, 4.0);
        let cfg = TsneConfig {
            iterations: 30,
            ..Default::default()
        };
        let a = tsne(&data, &cfg);
        let b = tsne(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn joint_probabilities_are_symmetric_and_normalized() {
        let (data, _) = two_blobs(10, 3.0);
        let p = joint_probabilities(&data, 5.0);
        let n = p.rows();
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                assert!((p.get(i, j) - p.get(j, i)).abs() < 1e-6);
                total += p.get(i, j);
            }
        }
        assert!((total - 1.0).abs() < 0.05, "P sums to {total}");
    }

    #[test]
    #[should_panic(expected = "at least 5 points")]
    fn too_few_points_panics() {
        let data = Matrix::zeros(3, 4);
        tsne(&data, &TsneConfig::default());
    }
}
