//! Principal component analysis via power iteration with deflation.
//!
//! Used to initialize t-SNE (the standard trick for stable embeddings) and
//! as a cheap linear baseline when inspecting representation quality.

use calibre_tensor::{rng, Matrix};

/// Result of a [`pca`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaResult {
    /// Principal directions, `(n_components, dim)`, unit length, orthogonal.
    pub components: Matrix,
    /// Variance captured by each component.
    pub explained_variance: Vec<f32>,
    /// Column means subtracted before the decomposition, `(1, dim)`.
    pub mean: Matrix,
}

impl PcaResult {
    /// Projects data onto the principal directions, `(n, n_components)`.
    ///
    /// # Panics
    ///
    /// Panics if the data dimensionality differs from the fitted one.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.components.cols(),
            "PCA was fitted on {} dims, got {}",
            self.components.cols(),
            data.cols()
        );
        let centered = data.add_row_vec(&self.mean.scale(-1.0));
        centered.matmul_transpose(&self.components)
    }
}

/// Fits PCA with `n_components` directions using power iteration
/// (100 iterations per component, Hotelling deflation).
///
/// # Panics
///
/// Panics if the data is empty or `n_components` exceeds the dimensionality.
pub fn pca(data: &Matrix, n_components: usize, seed: u64) -> PcaResult {
    assert!(data.rows() > 1, "PCA needs at least two rows");
    assert!(
        n_components >= 1 && n_components <= data.cols(),
        "n_components {n_components} out of range 1..={}",
        data.cols()
    );
    let mean = data.mean_rows();
    let centered = data.add_row_vec(&mean.scale(-1.0));
    // Covariance (dim x dim), scaled by 1/(n-1).
    let cov = centered
        .transpose()
        .matmul(&centered)
        .scale(1.0 / (data.rows() - 1) as f32);

    let mut rng_ = rng::seeded(seed);
    let mut components = Matrix::zeros(n_components, data.cols());
    let mut explained = Vec::with_capacity(n_components);
    let mut deflated = cov;

    for c in 0..n_components {
        let mut v = rng::normal_matrix(&mut rng_, data.cols(), 1, 1.0).row_l2_normalized();
        // Normalize as a column: treat as (dim,1), normalize whole vector.
        let norm = v.frobenius_norm();
        if norm > 0.0 {
            v = v.scale(1.0 / norm);
        }
        let mut eigenvalue = 0.0;
        for _ in 0..100 {
            let w = deflated.matmul(&v);
            let norm = w.frobenius_norm();
            if norm < 1e-12 {
                break;
            }
            eigenvalue = norm;
            v = w.scale(1.0 / norm);
        }
        for (i, &x) in v.as_slice().iter().enumerate() {
            components.set(c, i, x);
        }
        explained.push(eigenvalue);
        // Deflate: cov ← cov − λ v vᵀ
        let vvt = v.matmul(&v.transpose()).scale(eigenvalue);
        deflated = deflated.sub(&vvt);
    }

    PcaResult {
        components,
        explained_variance: explained,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng::{normal_matrix, seeded};

    /// Data stretched strongly along a known direction.
    fn anisotropic_data() -> Matrix {
        let mut r = seeded(1);
        let n = 200;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let t = 5.0 * rng::normal(&mut r);
            let noise = 0.2 * rng::normal(&mut r);
            // Main direction (1, 1)/√2, small noise along (1, -1)/√2.
            let s = std::f32::consts::FRAC_1_SQRT_2;
            rows.push(vec![t * s + noise * s, t * s - noise * s]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_aligns_with_dominant_direction() {
        let data = anisotropic_data();
        let fit = pca(&data, 2, 0);
        let c0 = fit.components.row(0);
        let s = std::f32::consts::FRAC_1_SQRT_2;
        let dot = (c0[0] * s + c0[1] * s).abs();
        assert!(dot > 0.99, "first PC {c0:?} should align with (1,1)/√2");
        assert!(fit.explained_variance[0] > 10.0 * fit.explained_variance[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut r = seeded(2);
        let data = normal_matrix(&mut r, 100, 5, 1.0);
        let fit = pca(&data, 3, 0);
        for i in 0..3 {
            let norm: f32 = fit
                .components
                .row(i)
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "component {i} norm {norm}");
            for j in (i + 1)..3 {
                let dot: f32 = fit
                    .components
                    .row(i)
                    .iter()
                    .zip(fit.components.row(j))
                    .map(|(&a, &b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-2, "components {i},{j} dot {dot}");
            }
        }
    }

    #[test]
    fn transform_produces_requested_width() {
        let mut r = seeded(3);
        let data = normal_matrix(&mut r, 50, 8, 1.0);
        let fit = pca(&data, 2, 0);
        let proj = fit.transform(&data);
        assert_eq!(proj.shape(), (50, 2));
    }

    #[test]
    fn transform_centers_data() {
        let mut r = seeded(4);
        let data = normal_matrix(&mut r, 300, 4, 1.0).map(|v| v + 10.0);
        let fit = pca(&data, 2, 0);
        let proj = fit.transform(&data);
        // Projections of centered data have near-zero mean.
        assert!(proj.mean_rows().max_abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_components_panics() {
        let data = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        pca(&data, 3, 0);
    }
}
