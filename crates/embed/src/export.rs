//! CSV export of 2-D embeddings.
//!
//! The figure-reproduction binaries write their t-SNE coordinates to CSV so
//! the paper's qualitative plots can be regenerated with any plotting tool.

use calibre_tensor::Matrix;
use std::io::{self, Write};
use std::path::Path;

/// One labeled, client-attributed embedding point.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingPoint {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
    /// Ground-truth class label.
    pub label: usize,
    /// Originating client id.
    pub client: usize,
}

/// Zips an `(n, 2)` coordinate matrix with labels and client ids.
///
/// # Panics
///
/// Panics if the lengths disagree or the matrix is not 2-column.
pub fn collect_points(coords: &Matrix, labels: &[usize], clients: &[usize]) -> Vec<EmbeddingPoint> {
    assert_eq!(coords.cols(), 2, "expected 2-D coordinates");
    assert_eq!(coords.rows(), labels.len(), "label count mismatch");
    assert_eq!(coords.rows(), clients.len(), "client count mismatch");
    (0..coords.rows())
        .map(|i| EmbeddingPoint {
            x: coords.get(i, 0),
            y: coords.get(i, 1),
            label: labels[i],
            client: clients[i],
        })
        .collect()
}

/// Writes points as CSV (`x,y,label,client` with a header) to any writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<W: Write>(mut w: W, points: &[EmbeddingPoint]) -> io::Result<()> {
    writeln!(w, "x,y,label,client")?;
    for p in points {
        writeln!(w, "{},{},{},{}", p.x, p.y, p.label, p.client)?;
    }
    Ok(())
}

/// Writes points as CSV to a file path, creating parent directories.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv_file<P: AsRef<Path>>(path: P, points: &[EmbeddingPoint]) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_csv(io::BufWriter::new(file), points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_points_zips_all_fields() {
        let coords = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let pts = collect_points(&coords, &[0, 1], &[7, 8]);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].x, 3.0);
        assert_eq!(pts[1].label, 1);
        assert_eq!(pts[1].client, 8);
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let coords = Matrix::from_rows(&[vec![0.5, -0.5]]);
        let pts = collect_points(&coords, &[3], &[12]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &pts).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "x,y,label,client");
        assert_eq!(lines[1], "0.5,-0.5,3,12");
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn collect_points_rejects_mismatched_labels() {
        let coords = Matrix::from_rows(&[vec![0.0, 0.0]]);
        collect_points(&coords, &[], &[0]);
    }
}
