//! # calibre-embed
//!
//! PCA and exact t-SNE 2-D embeddings used to regenerate the
//! representation-quality figures (Figs. 1, 2, 5–8) of the Calibre paper
//! (ICDCS 2024).
//!
//! **Role in Algorithm 1:** none at run time — this crate is post-hoc
//! analysis. It embeds encoders *produced by* the training stage to
//! visualize what the personalization stage has to work with.
//!
//! The paper's qualitative argument — "Calibre representations form crisp
//! per-class clusters; plain pFL-SSL representations do not" — is reproduced
//! by embedding encoder outputs with [`tsne`] and exporting the coordinates
//! with [`write_csv_file`]; the quantitative counterpart (silhouette/NMI on
//! the same representations) lives in `calibre-cluster`.
//!
//! # Example
//!
//! ```
//! use calibre_embed::{tsne, TsneConfig};
//! use calibre_tensor::{Matrix, rng};
//!
//! let mut r = rng::seeded(0);
//! let data = rng::normal_matrix(&mut r, 30, 8, 1.0);
//! let coords = tsne(&data, &TsneConfig { iterations: 50, ..Default::default() });
//! assert_eq!(coords.shape(), (30, 2));
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
mod pca;
mod tsne;

pub use export::{collect_points, write_csv, write_csv_file, EmbeddingPoint};
pub use pca::{pca, PcaResult};
pub use tsne::{tsne, TsneConfig};
