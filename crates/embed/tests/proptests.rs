//! Property-based tests for PCA and t-SNE invariants.

use calibre_embed::{pca, tsne, TsneConfig};
use calibre_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pca_components_are_unit_length(data in matrix(30, 5), seed in 0u64..100) {
        let fit = pca(&data, 2, seed);
        for c in 0..2 {
            let norm: f32 = fit.components.row(c).iter().map(|v| v * v).sum::<f32>().sqrt();
            // Degenerate (constant) data can produce a zero direction; any
            // non-degenerate component must be unit length.
            prop_assert!(norm < 1.0 + 1e-3, "component {c} norm {norm}");
        }
        prop_assert!(fit.explained_variance.iter().all(|v| *v >= -1e-4));
    }

    #[test]
    fn pca_explained_variance_is_sorted(data in matrix(40, 6), seed in 0u64..100) {
        let fit = pca(&data, 3, seed);
        for w in fit.explained_variance.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-3, "variance not sorted: {:?}", fit.explained_variance);
        }
    }

    #[test]
    fn pca_transform_shape_and_finiteness(data in matrix(25, 4), seed in 0u64..100) {
        let fit = pca(&data, 2, seed);
        let proj = fit.transform(&data);
        prop_assert_eq!(proj.shape(), (25, 2));
        prop_assert!(proj.all_finite());
    }

    #[test]
    fn tsne_output_is_finite_and_centered(data in matrix(12, 6), seed in 0u64..50) {
        let coords = tsne(&data, &TsneConfig { iterations: 40, seed, ..Default::default() });
        prop_assert_eq!(coords.shape(), (12, 2));
        prop_assert!(coords.all_finite());
        // The implementation re-centers every iteration.
        prop_assert!(coords.mean_rows().max_abs() < 1e-2);
    }
}
