//! Integration tests for the hand-rolled `/metrics` + `/status` export
//! server: bind on an ephemeral port, scrape over real TCP, and check the
//! Prometheus text and JSON snapshot are well-formed.

use calibre_telemetry::export::http_get;
use calibre_telemetry::{Event, MetricsHub, MetricsServer, Recorder};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A hub with one training round and two personalized clients recorded.
fn seeded_hub() -> Arc<MetricsHub> {
    let hub = Arc::new(MetricsHub::new());
    hub.record(Event::RoundStart {
        round: 0,
        selected: vec![0, 1],
    });
    hub.record(Event::RoundEnd {
        round: 0,
        mean_loss: 1.25,
        client_wall_ms: vec![3.0, 4.0],
        client_loss: vec![1.0, 1.5],
        planned_bytes: 2_048,
        observed_bytes: 1_024,
    });
    hub.record(Event::Personalize {
        client: 0,
        accuracy: 0.5,
    });
    hub.record(Event::Personalize {
        client: 1,
        accuracy: 0.7,
    });
    hub
}

fn bind(hub: Arc<MetricsHub>) -> MetricsServer {
    MetricsServer::bind("127.0.0.1:0", hub).expect("ephemeral bind must succeed")
}

/// Issue a raw HTTP request and return the full response (head + body).
fn raw_request(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn metrics_endpoint_serves_wellformed_prometheus_text() {
    let server = bind(seeded_hub());
    let body = http_get(server.local_addr(), "/metrics").expect("scrape /metrics");

    // Every always-on family is present with a TYPE line.
    for family in [
        "calibre_fairness_clients",
        "calibre_fairness_accuracy_mean",
        "calibre_fairness_accuracy_std",
        "calibre_fairness_worst_decile",
        "calibre_rounds_completed",
        "calibre_comm_planned_bytes",
        "calibre_comm_observed_bytes",
        "calibre_resilience_faults_injected",
        "calibre_resilience_faults_detected",
        "calibre_resilience_rounds_skipped",
        "calibre_cohort_points",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} gauge")),
            "missing TYPE line for {family} in:\n{body}"
        );
        assert!(
            body.lines().any(|l| l.starts_with(&format!("{family} "))),
            "missing sample for {family} in:\n{body}"
        );
    }
    // The hub state flows through: 2 personalized clients, mean 0.6, and
    // one completed round moving 1 KiB observed.
    assert!(body.contains("calibre_fairness_clients 2"), "{body}");
    assert!(
        body.contains("calibre_fairness_accuracy_mean 0.6"),
        "{body}"
    );
    assert!(body.contains("calibre_rounds_completed 1"), "{body}");
    assert!(body.contains("calibre_comm_observed_bytes 1024"), "{body}");

    // Well-formed exposition: every non-comment line is `name{labels} value`
    // with a parseable float value.
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let value = line.rsplit(' ').next().expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable sample value in line {line:?}"
        );
    }
}

#[test]
fn status_endpoint_serves_the_json_snapshot() {
    let server = bind(seeded_hub());
    let body = http_get(server.local_addr(), "/status").expect("scrape /status");
    let parsed =
        calibre_telemetry::json::JsonValue::parse(&body).expect("/status body must be valid JSON");
    let fairness = parsed.get("fairness").expect("fairness key");
    assert_eq!(
        fairness.get("num_clients").and_then(|v| v.as_i64()),
        Some(2),
        "two personalized clients in {body}"
    );
    assert!(parsed.get("rounds").is_some(), "rounds key in {body}");
}

#[test]
fn unknown_path_is_404_and_non_get_is_405() {
    let server = bind(seeded_hub());
    let addr = server.local_addr();

    let not_found = raw_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(
        not_found.starts_with("HTTP/1.1 404"),
        "expected 404, got: {not_found}"
    );

    let bad_method = raw_request(
        addr,
        "POST /metrics HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(
        bad_method.starts_with("HTTP/1.1 405"),
        "expected 405, got: {bad_method}"
    );
}

#[test]
fn shutdown_is_idempotent_and_frees_the_port() {
    let hub = seeded_hub();
    let mut server = bind(Arc::clone(&hub));
    let addr = server.local_addr();
    server.shutdown();
    server.shutdown();
    drop(server);

    // The port is free again: a new server can bind the exact same address.
    let rebound = MetricsServer::bind(&addr.to_string(), hub).expect("rebind freed port");
    assert_eq!(rebound.local_addr(), addr);
    let body = http_get(addr, "/metrics").expect("scrape rebound server");
    assert!(body.contains("calibre_fairness_clients 2"));
}
