//! Integration tests for the deterministic metrics registry and its
//! log₂-bucket histograms.
//!
//! The unit tests in `metrics.rs` pin single-call behavior; here we pin the
//! cross-cutting properties the live exporter relies on: a disabled registry
//! is a strict no-op (the bit-identity argument), rendering is a pure
//! function of recorded state, and histogram merging is associative and
//! order-independent — so per-wave or per-worker histograms can be folded
//! in any grouping without changing the exposition.

use calibre_telemetry::metrics::{Log2Histogram, MetricsRegistry, LOG2_BUCKETS};
use proptest::prelude::*;

#[test]
fn registry_is_isolated_per_instance() {
    let a = MetricsRegistry::new();
    let b = MetricsRegistry::new();
    a.counter_add("calibre_it_rounds_total", &[], 3);
    assert_eq!(a.counter_value("calibre_it_rounds_total", &[]), 3);
    assert_eq!(b.counter_value("calibre_it_rounds_total", &[]), 0);
}

#[test]
fn disabled_registry_records_nothing_and_renders_empty() {
    let reg = MetricsRegistry::disabled();
    reg.counter_add("calibre_it_c", &[], 1);
    reg.gauge_set("calibre_it_g", &[], 4.5);
    reg.gauge_max("calibre_it_m", &[], 9.0);
    reg.observe("calibre_it_h", &[], 2.0);
    {
        let _t = reg.start_timer("calibre_it_t", &[]);
    }
    assert_eq!(reg.counter_value("calibre_it_c", &[]), 0);
    assert!(reg.gauge_value("calibre_it_g", &[]).is_none());
    assert!(reg.histogram("calibre_it_h", &[]).is_none());
    assert!(reg.render_prometheus().is_empty());
}

#[test]
fn reenabling_resumes_recording_without_losing_prior_state() {
    let reg = MetricsRegistry::new();
    reg.counter_add("calibre_it_c", &[], 2);
    reg.set_enabled(false);
    reg.counter_add("calibre_it_c", &[], 100);
    reg.set_enabled(true);
    reg.counter_add("calibre_it_c", &[], 3);
    assert_eq!(reg.counter_value("calibre_it_c", &[]), 5);
}

#[test]
fn timer_feeds_the_named_histogram() {
    let reg = MetricsRegistry::new();
    {
        let _t = reg.start_timer("calibre_it_duration_ms", &[("path", "x")]);
    }
    let hist = reg
        .histogram("calibre_it_duration_ms", &[("path", "x")])
        .expect("timer drop must observe one sample");
    assert_eq!(hist.total(), 1);
}

#[test]
fn registry_state_is_shared_across_threads() {
    let reg = std::sync::Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let reg = std::sync::Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    reg.counter_add("calibre_it_threads", &[], 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread must not panic");
    }
    assert_eq!(reg.counter_value("calibre_it_threads", &[]), 400);
}

/// Rebuild a histogram from a slice of sample values.
fn hist_of(samples: &[f64]) -> Log2Histogram {
    let mut h = Log2Histogram::default();
    for &s in samples {
        h.observe(s);
    }
    h
}

/// Deterministically expand sampled integers into observation values that
/// cover several buckets, including the underflow and overflow ends.
fn expand(raw: &[u32]) -> Vec<f64> {
    raw.iter()
        .map(|&r| match r % 5 {
            0 => 0.25,                                  // bucket 0: [0, 1)
            1 => f64::from(r % 97) + 1.0,               // low buckets
            2 => f64::from(r % 4_093).exp2().min(1e18), // spread across buckets
            3 => 1e12,                                  // high bucket
            _ => f64::from(r % 1_021) * 1024.0,         // mid buckets
        })
        .collect()
}

fn assert_hist_eq(a: &Log2Histogram, b: &Log2Histogram) {
    assert_eq!(a.counts(), b.counts());
    assert_eq!(a.total(), b.total());
    let err = (a.sum() - b.sum()).abs();
    let scale = a.sum().abs().max(1.0);
    assert!(
        err <= scale * 1e-9,
        "sums diverge: {} vs {}",
        a.sum(),
        b.sum()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_is_associative(
        ra in prop::collection::vec(any::<u32>(), 0..64),
        rb in prop::collection::vec(any::<u32>(), 0..64),
        rc in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let (a, b, c) = (expand(&ra), expand(&rb), expand(&rc));
        // (a ⊕ b) ⊕ c
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // a ⊕ (b ⊕ c)
        let mut right_tail = hist_of(&b);
        right_tail.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&right_tail);
        assert_hist_eq(&left, &right);
    }

    #[test]
    fn histogram_merge_is_order_independent(
        ra in prop::collection::vec(any::<u32>(), 0..64),
        rb in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let (a, b) = (expand(&ra), expand(&rb));
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        assert_hist_eq(&ab, &ba);
    }

    #[test]
    fn merge_equals_observing_the_concatenation(
        ra in prop::collection::vec(any::<u32>(), 0..64),
        rb in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let (a, b) = (expand(&ra), expand(&rb));
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_hist_eq(&merged, &hist_of(&concat));
    }

    #[test]
    fn every_observation_lands_in_exactly_one_bucket(
        raw in prop::collection::vec(any::<u32>(), 1..128),
    ) {
        let samples = expand(&raw);
        let h = hist_of(&samples);
        prop_assert_eq!(h.counts().len(), LOG2_BUCKETS);
        let bucketed: u64 = h.counts().iter().sum();
        prop_assert_eq!(bucketed, samples.len() as u64);
        prop_assert_eq!(h.total(), samples.len() as u64);
    }

    #[test]
    fn rendering_is_deterministic_under_label_permutation(
        c in any::<u32>(),
        g in -1_000i32..1_000,
    ) {
        let render = |swap: bool| {
            let reg = MetricsRegistry::new();
            let labels: [(&str, &str); 2] = if swap {
                [("method", "calibre"), ("dataset", "cifar10")]
            } else {
                [("dataset", "cifar10"), ("method", "calibre")]
            };
            reg.counter_add("calibre_it_runs_total", &labels, u64::from(c));
            reg.gauge_set("calibre_it_acc", &labels, f64::from(g) / 100.0);
            reg.render_prometheus()
        };
        prop_assert_eq!(render(false), render(true));
    }
}
