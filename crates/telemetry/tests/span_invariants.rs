//! Property tests for the span-stack invariants.
//!
//! Random interleavings of nested span guards — opened, closed newest-first,
//! closed oldest-first (out-of-order), counter-updated, and dropped during
//! unwinding via `catch_unwind` — must always leave the thread-local stack
//! balanced (depth returns to zero) and yield a profile tree where every
//! child path hangs off an existing parent and no child subtree outweighs
//! its parent.

use calibre_telemetry::span::{
    current_depth, install_collector, span, uninstall_collector, SpanGuard,
};
use calibre_telemetry::ProfileCollector;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// The process-wide collector is shared state: serialize the tests here.
static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

const NAMES: [&str; 6] = [
    "round",
    "client",
    "ssl_forward",
    "nt_xent",
    "kmeans",
    "matmul",
];

/// One step of a random span program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Open a span with the given name index.
    Open(usize),
    /// Drop the most recently opened live guard.
    CloseNewest,
    /// Drop the oldest live guard (out-of-order: closes every newer frame).
    CloseOldest,
    /// Bump the counters of the newest live guard.
    Count(u64),
    /// Open `depth` spans inside `catch_unwind` and panic, unwinding them.
    PanicNested(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(Op::Open),
        Just(Op::CloseNewest),
        Just(Op::CloseOldest),
        (1u64..100).prop_map(Op::Count),
        (1usize..4).prop_map(Op::PanicNested),
    ]
}

fn run_program(ops: &[Op]) {
    let mut live: Vec<SpanGuard> = Vec::new();
    for &op in ops {
        match op {
            Op::Open(name) => live.push(span(NAMES[name])),
            Op::CloseNewest => {
                live.pop();
            }
            Op::CloseOldest => {
                if !live.is_empty() {
                    // Dropping the oldest guard closes all newer frames; the
                    // remaining guards become inert no-ops.
                    drop(live.remove(0));
                }
            }
            Op::Count(n) => {
                if let Some(g) = live.last() {
                    g.add_items(n);
                    g.add_bytes(n * 3);
                }
            }
            Op::PanicNested(depth) => {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let _guards: Vec<SpanGuard> =
                        (0..depth).map(|i| span(NAMES[i % NAMES.len()])).collect();
                    panic!("unwind through open spans");
                }));
                assert!(result.is_err());
            }
        }
    }
    drop(live);
}

/// Swallow the panic-hook noise from the intentional `PanicNested` panics
/// while a program runs.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_interleavings_leave_stack_balanced(
        ops in prop::collection::vec(op_strategy(), 0..40)
    ) {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let collector = Arc::new(ProfileCollector::new());
        install_collector(collector.clone());
        let depth_before = current_depth();
        prop_assert_eq!(depth_before, 0usize);
        with_quiet_panics(|| run_program(&ops));
        let depth_after = current_depth();
        uninstall_collector();
        prop_assert_eq!(depth_after, 0usize, "stack poisoned by {:?}", &ops);

        // Balanced profile tree: every nested path hangs off a recorded
        // parent, timings are sane, and children fit inside their parent.
        let report = collector.report();
        for (path, stats) in report.entries() {
            prop_assert!(stats.calls > 0);
            prop_assert!(stats.self_us >= 0.0);
            prop_assert!(stats.total_us + 1e-9 >= stats.self_us);
            prop_assert!(stats.max_us + 1e-9 >= stats.min_us);
            if path.len() > 1 {
                let parent = &path[..path.len() - 1];
                prop_assert!(
                    report.stats(parent).is_some(),
                    "child {:?} has no parent entry", path
                );
            }
        }
        for (path, parent) in report.entries() {
            let children_total: f64 = report
                .entries()
                .iter()
                .filter(|(p, _)| p.len() == path.len() + 1 && p[..path.len()] == path[..])
                .map(|(_, s)| s.total_us)
                .sum();
            prop_assert!(
                parent.total_us + 1e-6 >= children_total * (1.0 - 1e-6),
                "children of {:?} outweigh parent: {} vs {}",
                path, children_total, parent.total_us
            );
        }
    }

    #[test]
    fn programs_without_a_collector_never_touch_the_stack(
        ops in prop::collection::vec(op_strategy(), 0..40)
    ) {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall_collector();
        with_quiet_panics(|| run_program(&ops));
        prop_assert_eq!(current_depth(), 0usize);
    }
}
