//! Property tests: the telemetry decoder never panics — junk, truncated,
//! or bit-flipped input produces a typed error or a valid event, never an
//! abort. (The wire-frame counterpart lives in `calibre-fl`'s
//! `proto_fuzz` suite; together they cover both untrusted input surfaces.)
#![recursion_limit = "1024"]

use calibre_telemetry::Event;
use proptest::prelude::*;

/// The characters a torn or bit-rotted JSONL line is actually made of.
const JSONISH: &[u8] = b"{}[]\",:abcdefghijklmnopqrstuvwxyz0123456789_.eE+-";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Arbitrary byte soup (lossily decoded) must never panic the parser.
    #[test]
    fn from_json_never_panics_on_junk(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Event::from_json(&line);
    }

    // Arbitrary *syntactically plausible* JSON fragments: braces, quotes,
    // colons, numbers — the shapes a corrupted JSONL file actually takes.
    #[test]
    fn from_json_never_panics_on_jsonish(picks in prop::collection::vec(0usize..JSONISH.len(), 0..200)) {
        let line: String = picks.iter().map(|&i| JSONISH[i] as char).collect();
        let _ = Event::from_json(&line);
    }

    // Every prefix of a valid encoded event decodes or errors — truncation
    // mid-field must not panic (the failure mode of a torn JSONL write).
    #[test]
    fn truncated_valid_events_error_not_panic(
        round in 0usize..1000,
        selected in prop::collection::vec(0usize..100, 0..8),
        cut in 0usize..200,
    ) {
        let full = Event::RoundStart { round, selected }.to_json();
        let cut = cut.min(full.len());
        // Respect char boundaries; the encoder only emits ASCII but don't
        // rely on it.
        if full.is_char_boundary(cut) {
            let truncated = &full[..cut];
            if cut < full.len() {
                prop_assert!(Event::from_json(truncated).is_err(), "prefix {truncated:?} decoded");
            } else {
                prop_assert!(Event::from_json(truncated).is_ok());
            }
        }
    }

    // Valid events round-trip; flipping any single byte of the encoding
    // either still decodes (benign positions) or errors — never panics.
    #[test]
    fn single_byte_corruption_never_panics(
        round in 0usize..1000,
        client in 0usize..100,
        wall_ms in 0.0f64..1e6,
        flip_at in 0usize..200,
        flip_to in any::<u8>(),
    ) {
        let event = Event::Personalize { client, accuracy: (wall_ms / 1e6) as f32 };
        let _ = round;
        let mut bytes = event.to_json().into_bytes();
        let flip_at = flip_at % bytes.len();
        bytes[flip_at] = flip_to;
        let line = String::from_utf8_lossy(&bytes);
        let _ = Event::from_json(&line);
    }
}
