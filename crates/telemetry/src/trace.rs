//! Chrome trace-event (Perfetto) exporter.
//!
//! [`TraceCollector`] is a [`SpanSink`] that buffers
//! every closed span as a `ph:"X"` *complete* event in the
//! [Chrome trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
//! the JSON array understood by `ui.perfetto.dev` and `chrome://tracing`.
//! Each event carries the span name, start (`ts`) and duration (`dur`) in
//! microseconds, the process id, and the stable per-thread id assigned by
//! [`mod@crate::span`] — so a multi-threaded federated round renders its
//! parallel `client` spans as parallel tracks. Span counters travel in the
//! event's `args`.
//!
//! `ph:"M"` metadata events name each thread track (`calibre-worker-<tid>`).
//!
//! ```
//! use calibre_telemetry::span::{ClosedSpan, SpanSink};
//! use calibre_telemetry::trace::TraceCollector;
//!
//! let collector = TraceCollector::new();
//! collector.span_closed(&ClosedSpan {
//!     path: &["round"], start_us: 5.0, dur_us: 100.0, self_us: 100.0,
//!     tid: 1, items: 0, bytes: 0,
//! });
//! let json = collector.to_chrome_json();
//! assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

use crate::span::{ClosedSpan, SpanSink};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

struct TraceEvent {
    name: &'static str,
    ts_us: f64,
    dur_us: f64,
    tid: u64,
    items: u64,
    bytes: u64,
}

/// Buffers closed spans and serializes them as a Chrome trace-event JSON
/// array for Perfetto.
#[derive(Default)]
pub struct TraceCollector {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of span events buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no spans have been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Serializes everything buffered so far as a Chrome trace-event JSON
    /// array: one `ph:"M"` thread-name metadata event per thread seen,
    /// then one `ph:"X"` complete event per span.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock();
        let pid = std::process::id();
        let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        let mut out = String::from("[\n");
        let mut first = true;
        for tid in tids {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"calibre-worker-{tid}\"}}}}"
            );
        }
        for e in events.iter() {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"cat\":\"calibre\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":{pid},\"tid\":{},\"args\":{{\"items\":{},\"bytes\":{}}}}}",
                e.name, e.ts_us, e.dur_us, e.tid, e.items, e.bytes
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Writes [`TraceCollector::to_chrome_json`] to `path`.
    pub fn write_chrome_trace<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

impl SpanSink for TraceCollector {
    fn span_closed(&self, span: &ClosedSpan<'_>) {
        self.events.lock().push(TraceEvent {
            name: span.name(),
            ts_us: span.start_us,
            dur_us: span.dur_us,
            tid: span.tid,
            items: span.items,
            bytes: span.bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn close(c: &TraceCollector, name: &'static str, tid: u64, ts: f64, dur: f64) {
        c.span_closed(&ClosedSpan {
            path: &[name],
            start_us: ts,
            dur_us: dur,
            self_us: dur,
            tid,
            items: 2,
            bytes: 5,
        });
    }

    #[test]
    fn emits_complete_events_with_required_fields() {
        let c = TraceCollector::new();
        close(&c, "round", 1, 0.0, 100.0);
        close(&c, "client", 2, 10.0, 50.0);
        let parsed = JsonValue::parse(&c.to_chrome_json()).expect("valid json");
        let events = parsed.as_array().expect("array");
        // 2 metadata + 2 span events.
        assert_eq!(events.len(), 4);
        for e in events {
            for field in ["name", "ph", "pid", "tid"] {
                assert!(e.get(field).is_some(), "missing {field}");
            }
        }
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            assert!(s.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(s.get("dur").and_then(JsonValue::as_f64).is_some());
        }
        let tids: std::collections::HashSet<i64> = spans
            .iter()
            .filter_map(|s| s.get("tid").and_then(JsonValue::as_i64))
            .collect();
        assert_eq!(tids.len(), 2, "spans keep their distinct tids");
    }

    #[test]
    fn metadata_names_each_thread_once() {
        let c = TraceCollector::new();
        close(&c, "a", 7, 0.0, 1.0);
        close(&c, "b", 7, 1.0, 1.0);
        let json = c.to_chrome_json();
        assert_eq!(json.matches("thread_name").count(), 1);
        assert!(json.contains("calibre-worker-7"));
    }

    #[test]
    fn empty_collector_serializes_to_empty_array() {
        let c = TraceCollector::new();
        assert!(c.is_empty());
        let parsed = JsonValue::parse(&c.to_chrome_json()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }
}
