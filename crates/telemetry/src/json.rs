//! A minimal JSON reader for the crate's own artifacts.
//!
//! The workspace builds hermetically without a serialization framework, so
//! the telemetry crate hand-rolls both directions: encoding lives next to
//! each producer ([`crate::Event::to_json`], profile/trace serializers) and
//! this module provides the decoding half — enough of RFC 8259 to read back
//! profile JSON for the `calibre-bench regression` gate and to validate
//! Chrome trace files in tests. Numbers are kept as `f64`; strings support
//! the standard escapes (`\"`, `\\`, `\/`, `\b`, `\f`, `\n`, `\r`, `\t`,
//! `\uXXXX`).
//!
//! ```
//! use calibre_telemetry::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"spans":[{"name":"matmul","self_us":12.5}]}"#).unwrap();
//! let spans = v.get("spans").unwrap().as_array().unwrap();
//! assert_eq!(spans[0].get("name").unwrap().as_str(), Some("matmul"));
//! assert_eq!(spans[0].get("self_us").unwrap().as_f64(), Some(12.5));
//! ```

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as a double.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    // analyze:allow(schema-drift) -- parse delegates to Parser::value;
    // `Null` is produced by the `null` literal arm, never named here
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is a number with an exact integer
    /// value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key → value map if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.consume(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our encoders;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or(&[]);
        let text = std::str::from_utf8(digits).map_err(|_| "invalid utf-8 in number")?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-2.5e2").unwrap(),
            JsonValue::Number(-250.0)
        );
        assert_eq!(
            JsonValue::parse(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,{"b":false}],"c":"x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].get("b").unwrap(), &JsonValue::Bool(false));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse(r#"{"a":1"#).is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn round_trips_event_jsonl() {
        // The PR-1 event encoder's output must be readable by this parser.
        use crate::recorder::{MemoryRecorder, Recorder};
        let rec = MemoryRecorder::new();
        rec.round_start(3, &[1, 4]);
        rec.round_end(3, 1.25, &[10.0, 12.5], &[1.2, 1.3], 64, 32);
        for event in rec.events() {
            let v = JsonValue::parse(&event.to_json()).expect("event json parses");
            assert!(v.get("type").is_some());
        }
    }
}
