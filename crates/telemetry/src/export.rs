//! Hand-rolled, dependency-free HTTP exposition of live metrics.
//!
//! [`MetricsServer`] runs a blocking [`std::net::TcpListener`] on one
//! background thread — the same no-new-deps spirit as the hand-rolled JSON
//! layer — and serves two endpoints:
//!
//! * `GET /metrics` — the process-wide [`crate::metrics`] registry
//!   plus hub-derived fairness/round/communication families, in the
//!   Prometheus text exposition format (version 0.0.4);
//! * `GET /status` — the full [`HubSnapshot`](crate::HubSnapshot) as JSON,
//!   byte-for-byte the struct the console summary renders from.
//!
//! The server is strictly an *observer*: it never mutates the hub or the
//! registry, and binding it does not by itself enable metric collection —
//! `calibre_bench::obs` flips the registry on when `--metrics-addr` is
//! given. Training that never scrapes stays bit-identical.

use crate::hub::MetricsHub;
use crate::metrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Errors from binding, serving, or scraping the exposition endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// The listener could not bind the requested address.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// A socket read/write/configure step failed.
    Io {
        /// Which step failed (static context, e.g. `"read response"`).
        context: &'static str,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// The peer sent something that is not the HTTP we speak.
    Http {
        /// What was malformed.
        detail: String,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Bind { addr, detail } => {
                write!(f, "cannot bind metrics listener on {addr}: {detail}")
            }
            ExportError::Io { context, detail } => write!(f, "metrics I/O ({context}): {detail}"),
            ExportError::Http { detail } => write!(f, "malformed HTTP: {detail}"),
        }
    }
}

impl std::error::Error for ExportError {}

/// How long the accept loop naps when no connection is pending. Bounds
/// shutdown latency; scrapes themselves are handled synchronously.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Per-connection socket timeout — a stuck scraper cannot wedge the server.
const CONN_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head we accept before dropping the connection.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A background HTTP server exposing `/metrics` and `/status`.
///
/// Dropping (or [`shutdown`](MetricsServer::shutdown)ing) the server stops
/// the accept loop and joins the thread.
///
/// ```no_run
/// use calibre_telemetry::{export::MetricsServer, MetricsHub};
/// use std::sync::Arc;
///
/// let hub = Arc::new(MetricsHub::new());
/// let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub))?;
/// println!("serving http://{}/metrics", server.local_addr());
/// # Ok::<(), calibre_telemetry::export::ExportError>(())
/// ```
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9185"`, port `0` for ephemeral) and
    /// starts serving the given hub on a background thread.
    pub fn bind(addr: &str, hub: Arc<MetricsHub>) -> Result<Self, ExportError> {
        let listener = TcpListener::bind(addr).map_err(|e| ExportError::Bind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ExportError::Io {
            context: "query local addr",
            detail: e.to_string(),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ExportError::Io {
                context: "set listener nonblocking",
                detail: e.to_string(),
            })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("calibre-metrics-export".to_string())
            .spawn(move || serve_loop(listener, hub, stop_thread))
            .map_err(|e| ExportError::Io {
                context: "spawn export thread",
                detail: e.to_string(),
            })?;
        Ok(MetricsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound — resolves port `0` to the real port.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            // A panicked serving thread has nothing left to clean up.
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, hub: Arc<MetricsHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve synchronously: scrapes are tiny and rare, and one
                // thread keeps the failure surface small.
                let _ = handle_conn(stream, &hub);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake): back
                // off briefly and keep serving.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_conn(mut stream: TcpStream, hub: &Arc<MetricsHub>) -> Result<(), ExportError> {
    stream.set_nonblocking(false).map_err(|e| ExportError::Io {
        context: "set stream blocking",
        detail: e.to_string(),
    })?;
    stream
        .set_read_timeout(Some(CONN_TIMEOUT))
        .map_err(|e| ExportError::Io {
            context: "set read timeout",
            detail: e.to_string(),
        })?;
    stream
        .set_write_timeout(Some(CONN_TIMEOUT))
        .map_err(|e| ExportError::Io {
            context: "set write timeout",
            detail: e.to_string(),
        })?;

    let head = read_head(&mut stream)?;
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                exposition(hub),
            ),
            "/status" => ("200 OK", "application/json", hub.snapshot().to_json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics or /status\n".to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(response.as_bytes())
        .map_err(|e| ExportError::Io {
            context: "write response",
            detail: e.to_string(),
        })
}

/// Reads the request head (everything up to the blank line). The body, if
/// any, is ignored — both endpoints are GET-only.
fn read_head(stream: &mut TcpStream) -> Result<String, ExportError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).map_err(|e| ExportError::Io {
            context: "read request",
            detail: e.to_string(),
        })?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ExportError::Http {
                detail: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
    }
    String::from_utf8(buf).map_err(|_| ExportError::Http {
        detail: "request head is not UTF-8".to_string(),
    })
}

/// Renders the full `/metrics` body: the process-wide registry first, then
/// families derived from the hub snapshot. The hub-derived fairness family
/// is **always** present (zeros before any personalization) so dashboards
/// can alert on its absence-of-change rather than absence-of-series.
pub fn exposition(hub: &Arc<MetricsHub>) -> String {
    let mut out = metrics::global().render_prometheus();
    let snap = hub.snapshot();

    let fairness = snap.fairness.unwrap_or(crate::hub::FairnessSummary {
        num_clients: 0,
        mean: 0.0,
        std: 0.0,
        worst_10pct: 0.0,
    });
    push_gauge(
        &mut out,
        "calibre_fairness_clients",
        "clients with a personalized accuracy so far",
        fairness.num_clients as f64,
    );
    push_gauge(
        &mut out,
        "calibre_fairness_accuracy_mean",
        "mean personalized accuracy across clients",
        f64::from(fairness.mean),
    );
    push_gauge(
        &mut out,
        "calibre_fairness_accuracy_std",
        "standard deviation of personalized accuracy",
        f64::from(fairness.std),
    );
    push_gauge(
        &mut out,
        "calibre_fairness_worst_decile",
        "mean accuracy of the worst 10% of clients",
        f64::from(fairness.worst_10pct),
    );
    push_gauge(
        &mut out,
        "calibre_rounds_completed",
        "rounds folded into the hub",
        snap.rounds.len() as f64,
    );
    push_gauge(
        &mut out,
        "calibre_comm_planned_bytes",
        "total planned communication bytes",
        snap.planned_bytes as f64,
    );
    push_gauge(
        &mut out,
        "calibre_comm_observed_bytes",
        "total observed communication bytes",
        snap.observed_bytes as f64,
    );
    push_gauge(
        &mut out,
        "calibre_resilience_faults_injected",
        "faults injected by the chaos layer",
        snap.resilience.faults_injected as f64,
    );
    push_gauge(
        &mut out,
        "calibre_resilience_faults_detected",
        "injected faults the executor detected",
        snap.resilience.faults_detected as f64,
    );
    push_gauge(
        &mut out,
        "calibre_resilience_rounds_skipped",
        "rounds skipped for missing quorum",
        snap.resilience.rounds_skipped as f64,
    );
    push_gauge(
        &mut out,
        "calibre_attack_injected",
        "byzantine attacks injected by the adversary layer",
        snap.attacks.attacks_injected as f64,
    );
    for (name, help, value) in [
        (
            "calibre_attack_flips",
            "sign-flip attacks injected",
            snap.attacks.flips,
        ),
        (
            "calibre_attack_scales",
            "scaling attacks injected",
            snap.attacks.scales,
        ),
        (
            "calibre_attack_replaces",
            "model-replacement attacks injected",
            snap.attacks.replaces,
        ),
        (
            "calibre_attack_noises",
            "inlier-fitted noise attacks injected",
            snap.attacks.noises,
        ),
        (
            "calibre_attack_colludes",
            "colluding-group attacks injected",
            snap.attacks.colludes,
        ),
    ] {
        push_gauge(&mut out, name, help, value as f64);
    }
    push_gauge(
        &mut out,
        "calibre_reputation_quarantined",
        "clients quarantined by the reputation book",
        snap.attacks.quarantined as f64,
    );
    push_gauge(
        &mut out,
        "calibre_reputation_max_suspicion",
        "largest suspicion score seen at quarantine time",
        f64::from(snap.attacks.max_suspicion),
    );
    push_gauge(
        &mut out,
        "calibre_cohort_points",
        "cohort sweep points recorded",
        snap.cohorts.len() as f64,
    );
    out
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    if value.is_finite() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name} NaN");
    }
}

/// Minimal HTTP/1.1 GET against a [`MetricsServer`] (or anything speaking
/// plain HTTP), returning the response body. Used by the bench's
/// `--metrics-snapshot` self-scrape, the CI smoke step, and tests — it
/// keeps the scrape path dependency-free too.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, ExportError> {
    let mut stream =
        TcpStream::connect_timeout(&addr, CONN_TIMEOUT).map_err(|e| ExportError::Io {
            context: "connect",
            detail: e.to_string(),
        })?;
    stream
        .set_read_timeout(Some(CONN_TIMEOUT))
        .map_err(|e| ExportError::Io {
            context: "set read timeout",
            detail: e.to_string(),
        })?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| ExportError::Io {
            context: "write request",
            detail: e.to_string(),
        })?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| ExportError::Io {
            context: "read response",
            detail: e.to_string(),
        })?;
    let body_at = response.find("\r\n\r\n").ok_or_else(|| ExportError::Http {
        detail: "response has no header/body separator".to_string(),
    })?;
    Ok(response.split_off(body_at + 4))
}
