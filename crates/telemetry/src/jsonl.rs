//! Streaming JSON-lines file sink.

use crate::event::Event;
use crate::recorder::Recorder;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A [`Recorder`] that appends one JSON object per event to a file.
///
/// Writes go through a buffered writer behind a mutex, so the sink is safe
/// to share across the worker threads of a federated round. The buffer is
/// flushed on [`JsonlSink::flush`] and on drop; a write failure after
/// construction is reported to stderr once rather than panicking, because
/// telemetry must never take down a training run.
///
/// The output is the machine-readable artifact of a run:
///
/// ```text
/// {"type":"round_start","round":0,"selected":[0,3]}
/// {"type":"client_update","round":0,"client":0,"wall_ms":41.8,...}
/// {"type":"round_end","round":0,"mean_loss":2.1,"client_wall_ms":[41.8,41.0],...}
/// ```
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    failed: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            failed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Flushes buffered events to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().flush()
    }

    fn note_failure(&self, err: io::Error) {
        use std::sync::atomic::Ordering;
        if !self.failed.swap(true, Ordering::Relaxed) {
            eprintln!("telemetry: dropping events, write failed: {err}");
        }
    }
}

impl Recorder for JsonlSink {
    fn flush(&self) {
        if let Err(err) = JsonlSink::flush(self) {
            self.note_failure(err);
        }
    }

    fn record(&self, event: Event) {
        use std::sync::atomic::Ordering;
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let line = event.to_json();
        let mut writer = self.writer.lock();
        if let Err(err) = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
        {
            drop(writer);
            self.note_failure(err);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.get_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ClientLosses;
    use crate::recorder::Fanout;
    use std::time::Duration;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "calibre-telemetry-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn writes_one_json_object_per_event() {
        let path = temp_path("basic.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.round_start(0, &[0, 1]);
            sink.client_update(0, 0, Duration::from_millis(2), ClientLosses::default(), 0.0);
            sink.round_end(0, 1.0, &[2.0], &[1.0], 8, 8);
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"round_start\""));
        assert!(lines[2].contains("\"observed_bytes\":8"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fanout_flush_reaches_the_file_sink() {
        // Satellite: flush must propagate through Fanout so bench binaries
        // can force events to disk without dropping the recorder.
        let path = temp_path("fanout-flush.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let fan = Fanout::new().with(Box::new(sink));
        fan.round_start(0, &[0]);
        fan.flush();
        // The sink is still alive (not dropped) — flush alone must suffice.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text:?}");
        drop(fan);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_writes_produce_whole_lines() {
        let path = temp_path("concurrent.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            std::thread::scope(|scope| {
                for client in 0..16usize {
                    let sink = &sink;
                    scope.spawn(move || {
                        sink.client_update(
                            0,
                            client,
                            Duration::from_micros(5),
                            ClientLosses::default(),
                            0.0,
                        );
                    });
                }
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 16);
        for line in text.lines() {
            assert!(line.starts_with("{\"type\":\"client_update\""), "{line}");
            assert!(line.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }
}
