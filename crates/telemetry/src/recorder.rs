//! The [`Recorder`] trait and its basic implementations.

use crate::event::{ClientLosses, Event};
use parking_lot::Mutex;
use std::time::Duration;

/// Something that consumes telemetry [`Event`]s.
///
/// Implementations must be `Send + Sync` because the federated loop records
/// per-client events from inside the worker threads spawned by
/// `calibre_fl::parallel`. All methods take `&self`; interior mutability is
/// the implementation's concern.
///
/// The named span-style methods (`round_start`, `client_update`, ...) are the
/// API the instrumented loop calls; they construct the event and forward it
/// to [`Recorder::record`], so implementors normally override only `record`.
///
/// ```
/// use calibre_telemetry::{MemoryRecorder, Recorder};
///
/// let rec = MemoryRecorder::new();
/// rec.round_start(0, &[2, 5]);
/// rec.personalize(5, 0.91);
/// let events = rec.events();
/// assert_eq!(events[0].round(), Some(0));
/// assert_eq!(events[1].round(), None);
/// ```
pub trait Recorder: Send + Sync {
    /// Consumes one event. The single required method.
    fn record(&self, event: Event);

    /// A federated round began; `selected` holds the participating client ids.
    fn round_start(&self, round: usize, selected: &[usize]) {
        self.record(Event::RoundStart {
            round,
            selected: selected.to_vec(),
        });
    }

    /// One client finished its local update, taking `wall` of wall-clock time.
    fn client_update(
        &self,
        round: usize,
        client: usize,
        wall: Duration,
        losses: ClientLosses,
        divergence: f32,
    ) {
        self.record(Event::ClientUpdate {
            round,
            client,
            wall_ms: wall.as_secs_f64() * 1e3,
            losses,
            divergence,
        });
    }

    /// The server aggregated `num_clients` payloads with total weight
    /// `total_weight`.
    fn aggregate(&self, round: usize, num_clients: usize, total_weight: f32) {
        self.record(Event::Aggregate {
            round,
            num_clients,
            total_weight,
        });
    }

    /// A federated round completed, with per-client wall-clock and loss
    /// vectors in selection order and the round's communication volume.
    fn round_end(
        &self,
        round: usize,
        mean_loss: f32,
        client_wall_ms: &[f64],
        client_loss: &[f32],
        planned_bytes: u64,
        observed_bytes: u64,
    ) {
        self.record(Event::RoundEnd {
            round,
            mean_loss,
            client_wall_ms: client_wall_ms.to_vec(),
            client_loss: client_loss.to_vec(),
            planned_bytes,
            observed_bytes,
        });
    }

    /// One client finished the personalization stage with the given
    /// personalized test accuracy.
    fn personalize(&self, client: usize, accuracy: f32) {
        self.record(Event::Personalize { client, accuracy });
    }

    /// A fault was injected into (`detected: false`) or observed in
    /// (`detected: true`) one client's round. See [`Event::Fault`] for the
    /// `kind` vocabulary.
    fn fault(
        &self,
        round: usize,
        client: usize,
        attempt: usize,
        kind: &'static str,
        detected: bool,
    ) {
        self.record(Event::Fault {
            round,
            client,
            attempt,
            kind,
            detected,
        });
    }

    /// Per-round resilience accounting from the resilient round executor.
    /// Only emitted for rounds where faults, retries, rejections or a
    /// missed quorum occurred.
    fn round_resilience(
        &self,
        round: usize,
        injected: usize,
        detected: usize,
        retries: usize,
        quorum: usize,
        skipped: bool,
    ) {
        self.record(Event::RoundResilience {
            round,
            injected,
            detected,
            retries,
            quorum,
            skipped,
        });
    }

    /// A Byzantine attack was injected into one client's update. See
    /// [`Event::Attack`] for the `kind` vocabulary.
    fn attack(&self, round: usize, client: usize, kind: &'static str) {
        self.record(Event::Attack {
            round,
            client,
            kind,
        });
    }

    /// A client crossed the quarantine threshold of the server's
    /// reputation book (see [`Event::Quarantine`]).
    fn quarantine(&self, round: usize, client: usize, suspicion: f32) {
        self.record(Event::Quarantine {
            round,
            client,
            suspicion,
        });
    }

    /// One point of a massive-cohort scaling sweep completed (see
    /// [`Event::CohortPoint`]).
    #[allow(clippy::too_many_arguments)] // mirrors the event's fields
    fn cohort_point(
        &self,
        cohort: usize,
        dim: usize,
        groups: usize,
        rounds: usize,
        rounds_per_sec: f64,
        peak_state_bytes: u64,
        peak_rss_bytes: u64,
    ) {
        self.record(Event::CohortPoint {
            cohort,
            dim,
            groups,
            rounds,
            rounds_per_sec,
            peak_state_bytes,
            peak_rss_bytes,
        });
    }

    /// Pushes buffered events to their destination. A no-op for most
    /// recorders; file-backed sinks override it. Bench binaries call this
    /// explicitly at end-of-run so a hard exit can't truncate the output,
    /// and [`Fanout`] forwards it to every sink.
    fn flush(&self) {}
}

impl<T: Recorder + ?Sized> Recorder for std::sync::Arc<T> {
    fn record(&self, event: Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

impl<T: Recorder + ?Sized> Recorder for Box<T> {
    fn record(&self, event: Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// A recorder that discards every event. The default when telemetry is off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// A recorder that keeps every event in memory, in arrival order.
///
/// Intended for tests: run the loop, then assert on [`MemoryRecorder::events`].
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a snapshot of all events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        self.events.lock().push(event);
    }
}

/// Broadcasts every event to a set of recorders.
///
/// Used by the bench binaries to feed a [`crate::JsonlSink`] and a
/// [`crate::MetricsHub`] from a single instrumented run.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Recorder>>,
}

impl Fanout {
    /// Creates an empty fanout (records to nothing, like [`NullRecorder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a recorder to the broadcast set.
    pub fn with(mut self, sink: Box<dyn Recorder>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Recorder for Fanout {
    fn record(&self, event: Event) {
        match self.sinks.split_last() {
            None => {}
            Some((last, rest)) => {
                for sink in rest {
                    sink.record(event.clone());
                }
                last.record(event);
            }
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_preserves_event_order() {
        // The acceptance-criterion ordering test: a miniature two-stage run
        // must come back in exactly the order the loop emitted it.
        let rec = MemoryRecorder::new();
        rec.round_start(0, &[0, 1]);
        rec.client_update(0, 0, Duration::from_millis(3), ClientLosses::default(), 0.1);
        rec.client_update(0, 1, Duration::from_millis(4), ClientLosses::default(), 0.2);
        rec.aggregate(0, 2, 2.0);
        rec.round_end(0, 1.0, &[3.0, 4.0], &[1.0, 1.0], 64, 64);
        rec.personalize(0, 0.8);
        rec.personalize(1, 0.9);

        let events = rec.events();
        assert_eq!(events.len(), 7);
        assert!(matches!(events[0], Event::RoundStart { round: 0, .. }));
        assert!(matches!(events[1], Event::ClientUpdate { client: 0, .. }));
        assert!(matches!(events[2], Event::ClientUpdate { client: 1, .. }));
        assert!(matches!(events[3], Event::Aggregate { num_clients: 2, .. }));
        assert!(matches!(events[4], Event::RoundEnd { round: 0, .. }));
        assert!(matches!(events[5], Event::Personalize { client: 0, .. }));
        assert!(matches!(events[6], Event::Personalize { client: 1, .. }));
    }

    #[test]
    fn memory_recorder_is_usable_across_threads() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for client in 0..8usize {
                let rec = &rec;
                scope.spawn(move || {
                    rec.client_update(
                        0,
                        client,
                        Duration::from_micros(10),
                        ClientLosses::default(),
                        0.0,
                    );
                });
            }
        });
        assert_eq!(rec.len(), 8);
    }

    #[test]
    fn fanout_broadcasts_to_all_sinks() {
        use std::sync::Arc;
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let fan = Fanout::new()
            .with(Box::new(Arc::clone(&a)))
            .with(Box::new(Arc::clone(&b)));
        fan.round_start(0, &[1]);
        fan.personalize(1, 0.5);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn null_recorder_accepts_everything() {
        let rec = NullRecorder;
        rec.round_start(0, &[]);
        rec.round_end(0, 0.0, &[], &[], 0, 0);
    }
}
