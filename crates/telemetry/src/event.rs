//! Telemetry event types and their JSON-lines encoding.

use crate::json::JsonValue;
use std::fmt::Write as _;

/// The per-client loss decomposition from the Calibre objective
/// (`L = L_ssl + alpha * L_n + beta * L_p`).
///
/// Methods that do not use the prototype regularizers report zero for
/// [`ClientLosses::l_n`] and [`ClientLosses::l_p`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientLosses {
    /// Total local training loss (the value the optimizer stepped on).
    pub total: f32,
    /// Self-supervised contrastive term `L_ssl` (`l_s` in the paper).
    pub ssl: f32,
    /// Prototype-noise regularizer `L_n`.
    pub l_n: f32,
    /// Prototype-alignment regularizer `L_p`.
    pub l_p: f32,
}

/// One observable moment in the federated loop.
///
/// Events are plain data: producing one has no side effects, and every field
/// is public so sinks can reduce them however they like.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A federated round began with this set of selected client ids.
    RoundStart {
        /// Zero-based round index.
        round: usize,
        /// Ids of the clients selected for this round.
        selected: Vec<usize>,
    },
    /// One client finished its local update.
    ClientUpdate {
        /// Zero-based round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Wall-clock time of the local update, measured in the worker
        /// thread that ran it, in milliseconds.
        wall_ms: f64,
        /// Loss decomposition at the end of the local update.
        losses: ClientLosses,
        /// Divergence between the client's model and the global model
        /// (the paper's divergence-aware aggregation signal).
        divergence: f32,
    },
    /// The server aggregated the round's client payloads.
    Aggregate {
        /// Zero-based round index.
        round: usize,
        /// Number of client payloads aggregated.
        num_clients: usize,
        /// Sum of aggregation weights (sample counts or divergence weights).
        total_weight: f32,
    },
    /// A federated round completed.
    RoundEnd {
        /// Zero-based round index.
        round: usize,
        /// Mean of the selected clients' total losses.
        mean_loss: f32,
        /// Per-client wall-clock times in milliseconds, in selection order.
        client_wall_ms: Vec<f64>,
        /// Per-client total losses, in selection order.
        client_loss: Vec<f32>,
        /// Bytes the communication model predicts for this round
        /// (both directions, from `calibre_fl::comm::CommReport`).
        planned_bytes: u64,
        /// Bytes actually moved through the aggregator this round.
        observed_bytes: u64,
    },
    /// One client finished the personalization stage.
    Personalize {
        /// Client id.
        client: usize,
        /// Personalized test accuracy of the local probe, in `[0, 1]`.
        accuracy: f32,
    },
    /// A fault was injected into (or detected in) one client's round.
    ///
    /// Emitted twice per fault in the common case: once at injection time
    /// (`detected: false`) by the chaos layer, and once more (`detected:
    /// true`) if the resilient executor catches it — a caught panic, a
    /// noticed dropout, or an update rejected by validation. Silent
    /// corruptions (sign flips, norm blow-ups under the clip threshold)
    /// only produce the injection event.
    Fault {
        /// Zero-based round index.
        round: usize,
        /// Client id the fault applies to.
        client: usize,
        /// Zero-based delivery attempt within the round.
        attempt: usize,
        /// Fault kind tag: `"dropout"`, `"straggle"`, `"panic"`,
        /// `"corrupt_nan"`, `"corrupt_inf"`, `"corrupt_norm"`,
        /// `"corrupt_sign"`.
        kind: &'static str,
        /// `false` when the chaos layer injected the fault, `true` when the
        /// executor/validator observed it.
        detected: bool,
    },
    /// A Byzantine attack was injected into one client's update by the
    /// adversary layer (`calibre_fl::adversary`).
    ///
    /// Emitted once per attacked `(round, client)` cell, by the server-side
    /// path that applied the perturbation — never by the defense, which
    /// only sees anonymous updates. Replaying the same seeds reproduces
    /// the exact same attack events.
    Attack {
        /// Zero-based round index.
        round: usize,
        /// Client id the attack was applied to.
        client: usize,
        /// Attack kind tag: `"attack_flip"`, `"attack_scale"`,
        /// `"attack_replace"`, `"attack_noise"`, `"attack_collude"`.
        kind: &'static str,
    },
    /// A client crossed the quarantine threshold of the server's
    /// reputation book and will no longer be sampled.
    Quarantine {
        /// Zero-based round index of the offending observation.
        round: usize,
        /// Client id being quarantined.
        client: usize,
        /// EWMA suspicion score at the moment of quarantine.
        suspicion: f32,
    },
    /// One point of a massive-cohort scaling sweep, emitted by the
    /// `cohort` bench: how fast streaming rounds ran at a given simulated
    /// cohort size and how much accumulator state aggregation held at peak.
    CohortPoint {
        /// Simulated cohort size (clients folded per round).
        cohort: usize,
        /// Model dimension (floats per update).
        dim: usize,
        /// Number of edge groups (0 = flat streaming sink).
        groups: usize,
        /// Rounds executed at this sweep point.
        rounds: usize,
        /// Throughput over the sweep point, in rounds per second.
        rounds_per_sec: f64,
        /// Peak bytes held by the aggregation path (sink state + quorum
        /// buffer + in-flight wave) across all rounds of the point.
        peak_state_bytes: u64,
        /// Peak resident set size of the process after the point, in
        /// bytes (0 when the platform does not expose it).
        peak_rss_bytes: u64,
    },
    /// Per-round resilience accounting, emitted by the resilient round
    /// executor only for rounds where something non-nominal happened
    /// (faults, retries, rejections, or a missed quorum).
    RoundResilience {
        /// Zero-based round index.
        round: usize,
        /// Faults the chaos layer injected this round.
        injected: usize,
        /// Faults the executor detected (panics caught, dropouts noticed,
        /// updates rejected by validation).
        detected: usize,
        /// Client update attempts that were retried.
        retries: usize,
        /// Number of client updates that survived into aggregation.
        quorum: usize,
        /// Whether the round was skipped because `quorum < min_quorum`.
        skipped: bool,
    },
}

/// Formats a float as JSON, mapping non-finite values to `null`.
fn json_num(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn json_usize_array(xs: &[usize], out: &mut String) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

fn json_f64_array(xs: &[f64], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_num(x, out);
    }
    out.push(']');
}

fn json_f32_array(xs: &[f32], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_num(f64::from(x), out);
    }
    out.push(']');
}

impl Event {
    /// Encodes the event as a single JSON object (one JSONL line, without
    /// the trailing newline).
    ///
    /// The encoding is hand-rolled: every field is numeric or an array of
    /// numbers, and the only strings are the fixed `"type"` tags, so no
    /// escaping is needed. Non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            Event::RoundStart { round, selected } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"round_start\",\"round\":{round},\"selected\":"
                );
                json_usize_array(selected, &mut s);
                s.push('}');
            }
            Event::ClientUpdate {
                round,
                client,
                wall_ms,
                losses,
                divergence,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"client_update\",\"round\":{round},\"client\":{client},\"wall_ms\":"
                );
                json_num(*wall_ms, &mut s);
                s.push_str(",\"loss\":");
                json_num(f64::from(losses.total), &mut s);
                s.push_str(",\"l_ssl\":");
                json_num(f64::from(losses.ssl), &mut s);
                s.push_str(",\"l_n\":");
                json_num(f64::from(losses.l_n), &mut s);
                s.push_str(",\"l_p\":");
                json_num(f64::from(losses.l_p), &mut s);
                s.push_str(",\"divergence\":");
                json_num(f64::from(*divergence), &mut s);
                s.push('}');
            }
            Event::Aggregate {
                round,
                num_clients,
                total_weight,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"aggregate\",\"round\":{round},\"num_clients\":{num_clients},\"total_weight\":"
                );
                json_num(f64::from(*total_weight), &mut s);
                s.push('}');
            }
            Event::RoundEnd {
                round,
                mean_loss,
                client_wall_ms,
                client_loss,
                planned_bytes,
                observed_bytes,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"round_end\",\"round\":{round},\"mean_loss\":"
                );
                json_num(f64::from(*mean_loss), &mut s);
                s.push_str(",\"client_wall_ms\":");
                json_f64_array(client_wall_ms, &mut s);
                s.push_str(",\"client_loss\":");
                json_f32_array(client_loss, &mut s);
                let _ = write!(
                    s,
                    ",\"planned_bytes\":{planned_bytes},\"observed_bytes\":{observed_bytes}}}"
                );
            }
            Event::Personalize { client, accuracy } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"personalize\",\"client\":{client},\"accuracy\":"
                );
                json_num(f64::from(*accuracy), &mut s);
                s.push('}');
            }
            Event::Fault {
                round,
                client,
                attempt,
                kind,
                detected,
            } => {
                // `kind` comes from a fixed set of static tags, so it needs
                // no JSON escaping.
                let _ = write!(
                    s,
                    "{{\"type\":\"fault\",\"round\":{round},\"client\":{client},\
                     \"attempt\":{attempt},\"kind\":\"{kind}\",\"detected\":{detected}}}"
                );
            }
            Event::RoundResilience {
                round,
                injected,
                detected,
                retries,
                quorum,
                skipped,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"round_resilience\",\"round\":{round},\
                     \"injected\":{injected},\"detected\":{detected},\
                     \"retries\":{retries},\"quorum\":{quorum},\"skipped\":{skipped}}}"
                );
            }
            Event::Attack {
                round,
                client,
                kind,
            } => {
                // `kind` comes from a fixed set of static tags, so it needs
                // no JSON escaping.
                let _ = write!(
                    s,
                    "{{\"type\":\"attack\",\"round\":{round},\"client\":{client},\
                     \"kind\":\"{kind}\"}}"
                );
            }
            Event::Quarantine {
                round,
                client,
                suspicion,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"quarantine\",\"round\":{round},\"client\":{client},\
                     \"suspicion\":"
                );
                json_num(f64::from(*suspicion), &mut s);
                s.push('}');
            }
            Event::CohortPoint {
                cohort,
                dim,
                groups,
                rounds,
                rounds_per_sec,
                peak_state_bytes,
                peak_rss_bytes,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"cohort_point\",\"cohort\":{cohort},\"dim\":{dim},\
                     \"groups\":{groups},\"rounds\":{rounds},\"rounds_per_sec\":"
                );
                json_num(*rounds_per_sec, &mut s);
                let _ = write!(
                    s,
                    ",\"peak_state_bytes\":{peak_state_bytes},\"peak_rss_bytes\":{peak_rss_bytes}}}"
                );
            }
        }
        s
    }

    /// Decodes one JSONL line produced by [`Event::to_json`].
    ///
    /// The inverse of the encoder, with the same conventions: `null` in a
    /// numeric position decodes to `NaN` (so non-finite losses survive a
    /// round trip), a *missing* numeric field is an error. Unknown `"type"`
    /// tags are errors too — a telemetry file from a newer writer should
    /// fail loudly, not fold silently wrong.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let value = JsonValue::parse(line)?;
        Event::from_value(&value)
    }

    /// Decodes an already-parsed JSON object into an event. See
    /// [`Event::from_json`].
    pub fn from_value(value: &JsonValue) -> Result<Event, String> {
        let tag = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "event object has no \"type\" tag".to_string())?;
        match tag {
            "round_start" => Ok(Event::RoundStart {
                round: field_usize(value, "round")?,
                selected: field_usize_array(value, "selected")?,
            }),
            "client_update" => Ok(Event::ClientUpdate {
                round: field_usize(value, "round")?,
                client: field_usize(value, "client")?,
                wall_ms: field_f64(value, "wall_ms")?,
                losses: ClientLosses {
                    total: field_f32(value, "loss")?,
                    ssl: field_f32(value, "l_ssl")?,
                    l_n: field_f32(value, "l_n")?,
                    l_p: field_f32(value, "l_p")?,
                },
                divergence: field_f32(value, "divergence")?,
            }),
            "aggregate" => Ok(Event::Aggregate {
                round: field_usize(value, "round")?,
                num_clients: field_usize(value, "num_clients")?,
                total_weight: field_f32(value, "total_weight")?,
            }),
            "round_end" => Ok(Event::RoundEnd {
                round: field_usize(value, "round")?,
                mean_loss: field_f32(value, "mean_loss")?,
                client_wall_ms: field_f64_array(value, "client_wall_ms")?,
                client_loss: field_f32_array(value, "client_loss")?,
                planned_bytes: field_u64(value, "planned_bytes")?,
                observed_bytes: field_u64(value, "observed_bytes")?,
            }),
            "personalize" => Ok(Event::Personalize {
                client: field_usize(value, "client")?,
                accuracy: field_f32(value, "accuracy")?,
            }),
            "fault" => Ok(Event::Fault {
                round: field_usize(value, "round")?,
                client: field_usize(value, "client")?,
                attempt: field_usize(value, "attempt")?,
                kind: intern_fault_kind(
                    value
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| "fault event has no \"kind\" string".to_string())?,
                ),
                detected: field_bool(value, "detected")?,
            }),
            "round_resilience" => Ok(Event::RoundResilience {
                round: field_usize(value, "round")?,
                injected: field_usize(value, "injected")?,
                detected: field_usize(value, "detected")?,
                retries: field_usize(value, "retries")?,
                quorum: field_usize(value, "quorum")?,
                skipped: field_bool(value, "skipped")?,
            }),
            "attack" => Ok(Event::Attack {
                round: field_usize(value, "round")?,
                client: field_usize(value, "client")?,
                kind: intern_attack_kind(
                    value
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| "attack event has no \"kind\" string".to_string())?,
                ),
            }),
            "quarantine" => Ok(Event::Quarantine {
                round: field_usize(value, "round")?,
                client: field_usize(value, "client")?,
                suspicion: field_f32(value, "suspicion")?,
            }),
            "cohort_point" => Ok(Event::CohortPoint {
                cohort: field_usize(value, "cohort")?,
                dim: field_usize(value, "dim")?,
                groups: field_usize(value, "groups")?,
                rounds: field_usize(value, "rounds")?,
                rounds_per_sec: field_f64(value, "rounds_per_sec")?,
                peak_state_bytes: field_u64(value, "peak_state_bytes")?,
                peak_rss_bytes: field_u64(value, "peak_rss_bytes")?,
            }),
            other => Err(format!("unknown event type tag {other:?}")),
        }
    }

    /// Returns the round index the event belongs to, if it is round-scoped.
    ///
    /// [`Event::Personalize`] happens after training finishes and returns
    /// `None`.
    pub fn round(&self) -> Option<usize> {
        match self {
            Event::RoundStart { round, .. }
            | Event::ClientUpdate { round, .. }
            | Event::Aggregate { round, .. }
            | Event::RoundEnd { round, .. }
            | Event::Fault { round, .. }
            | Event::RoundResilience { round, .. }
            | Event::Attack { round, .. }
            | Event::Quarantine { round, .. } => Some(*round),
            Event::Personalize { .. } | Event::CohortPoint { .. } => None,
        }
    }
}

/// Maps a decoded fault-kind string back to the static tag the producers
/// use. Unknown kinds (from a newer writer) fold to `"other"` — faults
/// still count, the label just coarsens.
fn intern_fault_kind(kind: &str) -> &'static str {
    match kind {
        "dropout" => "dropout",
        "straggle" => "straggle",
        "panic" => "panic",
        "corrupt_nan" => "corrupt_nan",
        "corrupt_inf" => "corrupt_inf",
        "corrupt_norm" => "corrupt_norm",
        "corrupt_sign" => "corrupt_sign",
        "invalid" => "invalid",
        _ => "other",
    }
}

/// Maps a decoded attack-kind string back to the static tag the adversary
/// layer uses. Unknown kinds (from a newer writer) fold to `"other"`.
fn intern_attack_kind(kind: &str) -> &'static str {
    match kind {
        "attack_flip" => "attack_flip",
        "attack_scale" => "attack_scale",
        "attack_replace" => "attack_replace",
        "attack_noise" => "attack_noise",
        "attack_collude" => "attack_collude",
        _ => "other",
    }
}

/// A required non-negative integer field.
fn field_usize(value: &JsonValue, name: &str) -> Result<usize, String> {
    let raw = value
        .get(name)
        .and_then(JsonValue::as_i64)
        .ok_or_else(|| format!("missing or non-integer field {name:?}"))?;
    usize::try_from(raw).map_err(|_| format!("field {name:?} is negative: {raw}"))
}

/// A required non-negative integer field, widened to `u64`.
fn field_u64(value: &JsonValue, name: &str) -> Result<u64, String> {
    let raw = value
        .get(name)
        .and_then(JsonValue::as_i64)
        .ok_or_else(|| format!("missing or non-integer field {name:?}"))?;
    u64::try_from(raw).map_err(|_| format!("field {name:?} is negative: {raw}"))
}

/// A required numeric field; `null` decodes to `NaN` (the encoder writes
/// non-finite values as `null`), absence is an error.
fn field_f64(value: &JsonValue, name: &str) -> Result<f64, String> {
    match value.get(name) {
        Some(JsonValue::Null) => Ok(f64::NAN),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field {name:?} is not a number")),
        None => Err(format!("missing numeric field {name:?}")),
    }
}

fn field_f32(value: &JsonValue, name: &str) -> Result<f32, String> {
    field_f64(value, name).map(|v| v as f32)
}

fn field_bool(value: &JsonValue, name: &str) -> Result<bool, String> {
    value
        .get(name)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing or non-bool field {name:?}"))
}

fn field_usize_array(value: &JsonValue, name: &str) -> Result<Vec<usize>, String> {
    let items = value
        .get(name)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or non-array field {name:?}"))?;
    items
        .iter()
        .map(|v| {
            let raw = v
                .as_i64()
                .ok_or_else(|| format!("non-integer element in {name:?}"))?;
            usize::try_from(raw).map_err(|_| format!("negative element in {name:?}"))
        })
        .collect()
}

fn field_f64_array(value: &JsonValue, name: &str) -> Result<Vec<f64>, String> {
    let items = value
        .get(name)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or non-array field {name:?}"))?;
    items
        .iter()
        .map(|v| match v {
            JsonValue::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or_else(|| format!("non-numeric element in {name:?}")),
        })
        .collect()
}

fn field_f32_array(value: &JsonValue, name: &str) -> Result<Vec<f32>, String> {
    field_f64_array(value, name).map(|xs| xs.into_iter().map(|x| x as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_start_encodes_selection() {
        let e = Event::RoundStart {
            round: 3,
            selected: vec![0, 4, 7],
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"round_start\",\"round\":3,\"selected\":[0,4,7]}"
        );
    }

    #[test]
    fn client_update_carries_loss_decomposition() {
        let e = Event::ClientUpdate {
            round: 1,
            client: 9,
            wall_ms: 12.5,
            losses: ClientLosses {
                total: 2.0,
                ssl: 1.5,
                l_n: 0.25,
                l_p: 0.25,
            },
            divergence: 0.125,
        };
        let json = e.to_json();
        assert!(json.contains("\"wall_ms\":12.5"));
        assert!(json.contains("\"l_ssl\":1.5"));
        assert!(json.contains("\"l_n\":0.25"));
        assert!(json.contains("\"l_p\":0.25"));
        assert!(json.contains("\"divergence\":0.125"));
    }

    #[test]
    fn round_end_arrays_and_bytes() {
        let e = Event::RoundEnd {
            round: 0,
            mean_loss: 1.5,
            client_wall_ms: vec![1.0, 2.5],
            client_loss: vec![1.0, 2.0],
            planned_bytes: 100,
            observed_bytes: 120,
        };
        let json = e.to_json();
        assert!(json.contains("\"client_wall_ms\":[1,2.5]"));
        assert!(json.contains("\"client_loss\":[1,2]"));
        assert!(json.contains("\"planned_bytes\":100"));
        assert!(json.contains("\"observed_bytes\":120"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::Personalize {
            client: 0,
            accuracy: f32::NAN,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"personalize\",\"client\":0,\"accuracy\":null}"
        );
    }

    #[test]
    fn fault_event_encodes_kind_and_detection() {
        let e = Event::Fault {
            round: 2,
            client: 5,
            attempt: 1,
            kind: "corrupt_nan",
            detected: true,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"fault\",\"round\":2,\"client\":5,\"attempt\":1,\
             \"kind\":\"corrupt_nan\",\"detected\":true}"
        );
        assert_eq!(e.round(), Some(2));
    }

    #[test]
    fn round_resilience_encodes_counters() {
        let e = Event::RoundResilience {
            round: 7,
            injected: 3,
            detected: 2,
            retries: 1,
            quorum: 4,
            skipped: false,
        };
        let json = e.to_json();
        assert!(json.contains("\"type\":\"round_resilience\""));
        assert!(json.contains("\"injected\":3"));
        assert!(json.contains("\"detected\":2"));
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"quorum\":4"));
        assert!(json.contains("\"skipped\":false"));
        assert_eq!(e.round(), Some(7));
    }

    #[test]
    fn cohort_point_encodes_scaling_fields() {
        let e = Event::CohortPoint {
            cohort: 10_000,
            dim: 1024,
            groups: 0,
            rounds: 5,
            rounds_per_sec: 12.5,
            peak_state_bytes: 4096,
            peak_rss_bytes: 1 << 20,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"cohort_point\",\"cohort\":10000,\"dim\":1024,\
             \"groups\":0,\"rounds\":5,\"rounds_per_sec\":12.5,\
             \"peak_state_bytes\":4096,\"peak_rss_bytes\":1048576"
                .to_owned()
                + "}"
        );
        assert_eq!(e.round(), None, "sweep points are not round-scoped");
    }

    #[test]
    fn every_variant_roundtrips_through_json() {
        let events = vec![
            Event::RoundStart {
                round: 3,
                selected: vec![0, 4, 7],
            },
            Event::ClientUpdate {
                round: 1,
                client: 9,
                wall_ms: 12.5,
                losses: ClientLosses {
                    total: 2.0,
                    ssl: 1.5,
                    l_n: 0.25,
                    l_p: 0.25,
                },
                divergence: 0.125,
            },
            Event::Aggregate {
                round: 2,
                num_clients: 5,
                total_weight: 5.5,
            },
            Event::RoundEnd {
                round: 0,
                mean_loss: 1.5,
                client_wall_ms: vec![1.0, 2.5],
                client_loss: vec![1.0, 2.0],
                planned_bytes: 100,
                observed_bytes: 120,
            },
            Event::Personalize {
                client: 4,
                accuracy: 0.875,
            },
            Event::Fault {
                round: 2,
                client: 5,
                attempt: 1,
                kind: "corrupt_nan",
                detected: true,
            },
            Event::RoundResilience {
                round: 7,
                injected: 3,
                detected: 2,
                retries: 1,
                quorum: 4,
                skipped: false,
            },
            Event::CohortPoint {
                cohort: 10_000,
                dim: 1024,
                groups: 8,
                rounds: 5,
                rounds_per_sec: 12.5,
                peak_state_bytes: 4096,
                peak_rss_bytes: 1 << 20,
            },
            Event::Attack {
                round: 4,
                client: 2,
                kind: "attack_collude",
            },
            Event::Quarantine {
                round: 5,
                client: 2,
                suspicion: 3.25,
            },
        ];
        for event in events {
            let decoded = Event::from_json(&event.to_json()).expect("roundtrip decode");
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn null_decodes_to_nan() {
        let decoded = Event::from_json("{\"type\":\"personalize\",\"client\":0,\"accuracy\":null}")
            .expect("null accuracy decodes");
        match decoded {
            Event::Personalize { client, accuracy } => {
                assert_eq!(client, 0);
                assert!(accuracy.is_nan());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn attack_event_encodes_kind_and_unknown_kinds_fold() {
        let e = Event::Attack {
            round: 1,
            client: 3,
            kind: "attack_flip",
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"attack\",\"round\":1,\"client\":3,\"kind\":\"attack_flip\"}"
        );
        assert_eq!(e.round(), Some(1));
        let decoded = Event::from_json(
            "{\"type\":\"attack\",\"round\":0,\"client\":1,\"kind\":\"attack_from_the_future\"}",
        )
        .expect("unknown attack kinds still decode");
        assert!(matches!(decoded, Event::Attack { kind: "other", .. }));
    }

    #[test]
    fn unknown_fault_kind_folds_to_other() {
        let decoded = Event::from_json(
            "{\"type\":\"fault\",\"round\":0,\"client\":1,\"attempt\":0,\
             \"kind\":\"brand_new_kind\",\"detected\":false}",
        )
        .expect("unknown kinds still decode");
        assert!(matches!(decoded, Event::Fault { kind: "other", .. }));
    }

    #[test]
    fn decode_errors_are_loud() {
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"round\":1}").is_err(), "no type tag");
        assert!(
            Event::from_json("{\"type\":\"warp_drive\",\"round\":1}").is_err(),
            "unknown tag"
        );
        assert!(
            Event::from_json("{\"type\":\"personalize\",\"client\":0}").is_err(),
            "missing numeric field"
        );
        assert!(
            Event::from_json("{\"type\":\"round_start\",\"round\":-1,\"selected\":[]}").is_err(),
            "negative round"
        );
    }

    #[test]
    fn round_accessor() {
        let start = Event::RoundStart {
            round: 2,
            selected: vec![],
        };
        assert_eq!(start.round(), Some(2));
        let p = Event::Personalize {
            client: 0,
            accuracy: 0.5,
        };
        assert_eq!(p.round(), None);
    }
}
