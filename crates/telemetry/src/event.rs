//! Telemetry event types and their JSON-lines encoding.

use std::fmt::Write as _;

/// The per-client loss decomposition from the Calibre objective
/// (`L = L_ssl + alpha * L_n + beta * L_p`).
///
/// Methods that do not use the prototype regularizers report zero for
/// [`ClientLosses::l_n`] and [`ClientLosses::l_p`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientLosses {
    /// Total local training loss (the value the optimizer stepped on).
    pub total: f32,
    /// Self-supervised contrastive term `L_ssl` (`l_s` in the paper).
    pub ssl: f32,
    /// Prototype-noise regularizer `L_n`.
    pub l_n: f32,
    /// Prototype-alignment regularizer `L_p`.
    pub l_p: f32,
}

/// One observable moment in the federated loop.
///
/// Events are plain data: producing one has no side effects, and every field
/// is public so sinks can reduce them however they like.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A federated round began with this set of selected client ids.
    RoundStart {
        /// Zero-based round index.
        round: usize,
        /// Ids of the clients selected for this round.
        selected: Vec<usize>,
    },
    /// One client finished its local update.
    ClientUpdate {
        /// Zero-based round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Wall-clock time of the local update, measured in the worker
        /// thread that ran it, in milliseconds.
        wall_ms: f64,
        /// Loss decomposition at the end of the local update.
        losses: ClientLosses,
        /// Divergence between the client's model and the global model
        /// (the paper's divergence-aware aggregation signal).
        divergence: f32,
    },
    /// The server aggregated the round's client payloads.
    Aggregate {
        /// Zero-based round index.
        round: usize,
        /// Number of client payloads aggregated.
        num_clients: usize,
        /// Sum of aggregation weights (sample counts or divergence weights).
        total_weight: f32,
    },
    /// A federated round completed.
    RoundEnd {
        /// Zero-based round index.
        round: usize,
        /// Mean of the selected clients' total losses.
        mean_loss: f32,
        /// Per-client wall-clock times in milliseconds, in selection order.
        client_wall_ms: Vec<f64>,
        /// Per-client total losses, in selection order.
        client_loss: Vec<f32>,
        /// Bytes the communication model predicts for this round
        /// (both directions, from `calibre_fl::comm::CommReport`).
        planned_bytes: u64,
        /// Bytes actually moved through the aggregator this round.
        observed_bytes: u64,
    },
    /// One client finished the personalization stage.
    Personalize {
        /// Client id.
        client: usize,
        /// Personalized test accuracy of the local probe, in `[0, 1]`.
        accuracy: f32,
    },
    /// A fault was injected into (or detected in) one client's round.
    ///
    /// Emitted twice per fault in the common case: once at injection time
    /// (`detected: false`) by the chaos layer, and once more (`detected:
    /// true`) if the resilient executor catches it — a caught panic, a
    /// noticed dropout, or an update rejected by validation. Silent
    /// corruptions (sign flips, norm blow-ups under the clip threshold)
    /// only produce the injection event.
    Fault {
        /// Zero-based round index.
        round: usize,
        /// Client id the fault applies to.
        client: usize,
        /// Zero-based delivery attempt within the round.
        attempt: usize,
        /// Fault kind tag: `"dropout"`, `"straggle"`, `"panic"`,
        /// `"corrupt_nan"`, `"corrupt_inf"`, `"corrupt_norm"`,
        /// `"corrupt_sign"`.
        kind: &'static str,
        /// `false` when the chaos layer injected the fault, `true` when the
        /// executor/validator observed it.
        detected: bool,
    },
    /// One point of a massive-cohort scaling sweep, emitted by the
    /// `cohort` bench: how fast streaming rounds ran at a given simulated
    /// cohort size and how much accumulator state aggregation held at peak.
    CohortPoint {
        /// Simulated cohort size (clients folded per round).
        cohort: usize,
        /// Model dimension (floats per update).
        dim: usize,
        /// Number of edge groups (0 = flat streaming sink).
        groups: usize,
        /// Rounds executed at this sweep point.
        rounds: usize,
        /// Throughput over the sweep point, in rounds per second.
        rounds_per_sec: f64,
        /// Peak bytes held by the aggregation path (sink state + quorum
        /// buffer + in-flight wave) across all rounds of the point.
        peak_state_bytes: u64,
        /// Peak resident set size of the process after the point, in
        /// bytes (0 when the platform does not expose it).
        peak_rss_bytes: u64,
    },
    /// Per-round resilience accounting, emitted by the resilient round
    /// executor only for rounds where something non-nominal happened
    /// (faults, retries, rejections, or a missed quorum).
    RoundResilience {
        /// Zero-based round index.
        round: usize,
        /// Faults the chaos layer injected this round.
        injected: usize,
        /// Faults the executor detected (panics caught, dropouts noticed,
        /// updates rejected by validation).
        detected: usize,
        /// Client update attempts that were retried.
        retries: usize,
        /// Number of client updates that survived into aggregation.
        quorum: usize,
        /// Whether the round was skipped because `quorum < min_quorum`.
        skipped: bool,
    },
}

/// Formats a float as JSON, mapping non-finite values to `null`.
fn json_num(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn json_usize_array(xs: &[usize], out: &mut String) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

fn json_f64_array(xs: &[f64], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_num(x, out);
    }
    out.push(']');
}

fn json_f32_array(xs: &[f32], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_num(f64::from(x), out);
    }
    out.push(']');
}

impl Event {
    /// Encodes the event as a single JSON object (one JSONL line, without
    /// the trailing newline).
    ///
    /// The encoding is hand-rolled: every field is numeric or an array of
    /// numbers, and the only strings are the fixed `"type"` tags, so no
    /// escaping is needed. Non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            Event::RoundStart { round, selected } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"round_start\",\"round\":{round},\"selected\":"
                );
                json_usize_array(selected, &mut s);
                s.push('}');
            }
            Event::ClientUpdate {
                round,
                client,
                wall_ms,
                losses,
                divergence,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"client_update\",\"round\":{round},\"client\":{client},\"wall_ms\":"
                );
                json_num(*wall_ms, &mut s);
                s.push_str(",\"loss\":");
                json_num(f64::from(losses.total), &mut s);
                s.push_str(",\"l_ssl\":");
                json_num(f64::from(losses.ssl), &mut s);
                s.push_str(",\"l_n\":");
                json_num(f64::from(losses.l_n), &mut s);
                s.push_str(",\"l_p\":");
                json_num(f64::from(losses.l_p), &mut s);
                s.push_str(",\"divergence\":");
                json_num(f64::from(*divergence), &mut s);
                s.push('}');
            }
            Event::Aggregate {
                round,
                num_clients,
                total_weight,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"aggregate\",\"round\":{round},\"num_clients\":{num_clients},\"total_weight\":"
                );
                json_num(f64::from(*total_weight), &mut s);
                s.push('}');
            }
            Event::RoundEnd {
                round,
                mean_loss,
                client_wall_ms,
                client_loss,
                planned_bytes,
                observed_bytes,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"round_end\",\"round\":{round},\"mean_loss\":"
                );
                json_num(f64::from(*mean_loss), &mut s);
                s.push_str(",\"client_wall_ms\":");
                json_f64_array(client_wall_ms, &mut s);
                s.push_str(",\"client_loss\":");
                json_f32_array(client_loss, &mut s);
                let _ = write!(
                    s,
                    ",\"planned_bytes\":{planned_bytes},\"observed_bytes\":{observed_bytes}}}"
                );
            }
            Event::Personalize { client, accuracy } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"personalize\",\"client\":{client},\"accuracy\":"
                );
                json_num(f64::from(*accuracy), &mut s);
                s.push('}');
            }
            Event::Fault {
                round,
                client,
                attempt,
                kind,
                detected,
            } => {
                // `kind` comes from a fixed set of static tags, so it needs
                // no JSON escaping.
                let _ = write!(
                    s,
                    "{{\"type\":\"fault\",\"round\":{round},\"client\":{client},\
                     \"attempt\":{attempt},\"kind\":\"{kind}\",\"detected\":{detected}}}"
                );
            }
            Event::RoundResilience {
                round,
                injected,
                detected,
                retries,
                quorum,
                skipped,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"round_resilience\",\"round\":{round},\
                     \"injected\":{injected},\"detected\":{detected},\
                     \"retries\":{retries},\"quorum\":{quorum},\"skipped\":{skipped}}}"
                );
            }
            Event::CohortPoint {
                cohort,
                dim,
                groups,
                rounds,
                rounds_per_sec,
                peak_state_bytes,
                peak_rss_bytes,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"cohort_point\",\"cohort\":{cohort},\"dim\":{dim},\
                     \"groups\":{groups},\"rounds\":{rounds},\"rounds_per_sec\":"
                );
                json_num(*rounds_per_sec, &mut s);
                let _ = write!(
                    s,
                    ",\"peak_state_bytes\":{peak_state_bytes},\"peak_rss_bytes\":{peak_rss_bytes}}}"
                );
            }
        }
        s
    }

    /// Returns the round index the event belongs to, if it is round-scoped.
    ///
    /// [`Event::Personalize`] happens after training finishes and returns
    /// `None`.
    pub fn round(&self) -> Option<usize> {
        match self {
            Event::RoundStart { round, .. }
            | Event::ClientUpdate { round, .. }
            | Event::Aggregate { round, .. }
            | Event::RoundEnd { round, .. }
            | Event::Fault { round, .. }
            | Event::RoundResilience { round, .. } => Some(*round),
            Event::Personalize { .. } | Event::CohortPoint { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_start_encodes_selection() {
        let e = Event::RoundStart {
            round: 3,
            selected: vec![0, 4, 7],
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"round_start\",\"round\":3,\"selected\":[0,4,7]}"
        );
    }

    #[test]
    fn client_update_carries_loss_decomposition() {
        let e = Event::ClientUpdate {
            round: 1,
            client: 9,
            wall_ms: 12.5,
            losses: ClientLosses {
                total: 2.0,
                ssl: 1.5,
                l_n: 0.25,
                l_p: 0.25,
            },
            divergence: 0.125,
        };
        let json = e.to_json();
        assert!(json.contains("\"wall_ms\":12.5"));
        assert!(json.contains("\"l_ssl\":1.5"));
        assert!(json.contains("\"l_n\":0.25"));
        assert!(json.contains("\"l_p\":0.25"));
        assert!(json.contains("\"divergence\":0.125"));
    }

    #[test]
    fn round_end_arrays_and_bytes() {
        let e = Event::RoundEnd {
            round: 0,
            mean_loss: 1.5,
            client_wall_ms: vec![1.0, 2.5],
            client_loss: vec![1.0, 2.0],
            planned_bytes: 100,
            observed_bytes: 120,
        };
        let json = e.to_json();
        assert!(json.contains("\"client_wall_ms\":[1,2.5]"));
        assert!(json.contains("\"client_loss\":[1,2]"));
        assert!(json.contains("\"planned_bytes\":100"));
        assert!(json.contains("\"observed_bytes\":120"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::Personalize {
            client: 0,
            accuracy: f32::NAN,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"personalize\",\"client\":0,\"accuracy\":null}"
        );
    }

    #[test]
    fn fault_event_encodes_kind_and_detection() {
        let e = Event::Fault {
            round: 2,
            client: 5,
            attempt: 1,
            kind: "corrupt_nan",
            detected: true,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"fault\",\"round\":2,\"client\":5,\"attempt\":1,\
             \"kind\":\"corrupt_nan\",\"detected\":true}"
        );
        assert_eq!(e.round(), Some(2));
    }

    #[test]
    fn round_resilience_encodes_counters() {
        let e = Event::RoundResilience {
            round: 7,
            injected: 3,
            detected: 2,
            retries: 1,
            quorum: 4,
            skipped: false,
        };
        let json = e.to_json();
        assert!(json.contains("\"type\":\"round_resilience\""));
        assert!(json.contains("\"injected\":3"));
        assert!(json.contains("\"detected\":2"));
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"quorum\":4"));
        assert!(json.contains("\"skipped\":false"));
        assert_eq!(e.round(), Some(7));
    }

    #[test]
    fn cohort_point_encodes_scaling_fields() {
        let e = Event::CohortPoint {
            cohort: 10_000,
            dim: 1024,
            groups: 0,
            rounds: 5,
            rounds_per_sec: 12.5,
            peak_state_bytes: 4096,
            peak_rss_bytes: 1 << 20,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"cohort_point\",\"cohort\":10000,\"dim\":1024,\
             \"groups\":0,\"rounds\":5,\"rounds_per_sec\":12.5,\
             \"peak_state_bytes\":4096,\"peak_rss_bytes\":1048576"
                .to_owned()
                + "}"
        );
        assert_eq!(e.round(), None, "sweep points are not round-scoped");
    }

    #[test]
    fn round_accessor() {
        let start = Event::RoundStart {
            round: 2,
            selected: vec![],
        };
        assert_eq!(start.round(), Some(2));
        let p = Event::Personalize {
            client: 0,
            accuracy: 0.5,
        };
        assert_eq!(p.round(), None);
    }
}
