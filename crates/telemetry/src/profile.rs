//! Aggregated hot-path profile built from closed spans.
//!
//! [`ProfileCollector`] is a [`SpanSink`] that folds
//! every closed span into per-path statistics: call count, total and *self*
//! wall-time (self = total minus time in child spans), min/max durations,
//! and the items/bytes counters. Contention is kept low by sharding the
//! underlying maps by path hash, so worker threads closing `client` spans
//! rarely touch the same lock.
//!
//! A finished run is snapshotted into a [`ProfileReport`], which renders
//! two views:
//!
//! * [`ProfileReport::tree_string`] — the full call tree, indented, children
//!   sorted by total time;
//! * [`ProfileReport::top_self_table`] — the top-N spans by *self* time
//!   aggregated across all paths with the same leaf name, which is the
//!   "where does the time actually go" table the ROADMAP's performance work
//!   navigates by.
//!
//! ```
//! use calibre_telemetry::profile::ProfileCollector;
//! use calibre_telemetry::span::{ClosedSpan, SpanSink};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(ProfileCollector::new());
//! collector.span_closed(&ClosedSpan {
//!     path: &["round", "client"],
//!     start_us: 0.0, dur_us: 900.0, self_us: 900.0,
//!     tid: 1, items: 16, bytes: 0,
//! });
//! collector.span_closed(&ClosedSpan {
//!     path: &["round"],
//!     start_us: 0.0, dur_us: 1000.0, self_us: 100.0,
//!     tid: 1, items: 0, bytes: 0,
//! });
//! let report = collector.report();
//! assert_eq!(report.entries().len(), 2);
//! assert!(report.top_self_table(5).contains("client"));
//! ```

use crate::span::{ClosedSpan, SpanSink};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

const SHARDS: usize = 16;

/// Accumulated statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    /// Number of times the span closed.
    pub calls: u64,
    /// Total wall-time across all calls, microseconds.
    pub total_us: f64,
    /// Self wall-time (total minus child spans), microseconds.
    pub self_us: f64,
    /// Shortest single call, microseconds.
    pub min_us: f64,
    /// Longest single call, microseconds.
    pub max_us: f64,
    /// Sum of the items counter across calls.
    pub items: u64,
    /// Sum of the bytes counter across calls.
    pub bytes: u64,
}

impl SpanStats {
    fn fold(&mut self, span: &ClosedSpan<'_>) {
        if self.calls == 0 {
            self.min_us = span.dur_us;
            self.max_us = span.dur_us;
        } else {
            self.min_us = self.min_us.min(span.dur_us);
            self.max_us = self.max_us.max(span.dur_us);
        }
        self.calls += 1;
        self.total_us += span.dur_us;
        self.self_us += span.self_us;
        self.items = self.items.saturating_add(span.items);
        self.bytes = self.bytes.saturating_add(span.bytes);
    }

    fn merge(&mut self, other: &SpanStats) {
        if self.calls == 0 {
            self.min_us = other.min_us;
            self.max_us = other.max_us;
        } else if other.calls > 0 {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
        self.calls += other.calls;
        self.total_us += other.total_us;
        self.self_us += other.self_us;
        self.items = self.items.saturating_add(other.items);
        self.bytes = self.bytes.saturating_add(other.bytes);
    }
}

/// A [`SpanSink`] that aggregates closed spans into per-path statistics.
///
/// Sharded by path hash to keep multi-threaded rounds from serializing on
/// one lock.
pub struct ProfileCollector {
    shards: Vec<Mutex<BTreeMap<Vec<&'static str>, SpanStats>>>,
}

impl Default for ProfileCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ProfileCollector {
            shards: (0..SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    fn shard_for(&self, path: &[&'static str]) -> &Mutex<BTreeMap<Vec<&'static str>, SpanStats>> {
        let mut hasher = DefaultHasher::new();
        path.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Snapshots the accumulated statistics into a report.
    pub fn report(&self) -> ProfileReport {
        let mut merged: BTreeMap<Vec<&'static str>, SpanStats> = BTreeMap::new();
        for shard in &self.shards {
            for (path, stats) in shard.lock().iter() {
                merged.entry(path.clone()).or_default().merge(stats);
            }
        }
        // Paths are unique keys, so iterating the BTreeMap already yields
        // the lexicographic order the report promises.
        ProfileReport {
            entries: merged.into_iter().collect(),
        }
    }
}

impl SpanSink for ProfileCollector {
    fn span_closed(&self, span: &ClosedSpan<'_>) {
        let mut shard = self.shard_for(span.path).lock();
        match shard.get_mut(span.path) {
            Some(stats) => stats.fold(span),
            None => {
                let mut stats = SpanStats::default();
                stats.fold(span);
                shard.insert(span.path.to_vec(), stats);
            }
        }
    }
}

/// An immutable snapshot of a [`ProfileCollector`], ready for rendering.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// (path, stats) pairs sorted lexicographically by path.
    entries: Vec<(Vec<&'static str>, SpanStats)>,
}

impl ProfileReport {
    /// All (path, stats) pairs, sorted by path.
    pub fn entries(&self) -> &[(Vec<&'static str>, SpanStats)] {
        &self.entries
    }

    /// Statistics for an exact path, if that path ever closed.
    pub fn stats(&self, path: &[&str]) -> Option<&SpanStats> {
        self.entries
            .iter()
            .find(|(p, _)| p.len() == path.len() && p.iter().zip(path).all(|(a, b)| a == b))
            .map(|(_, s)| s)
    }

    /// Aggregates statistics across every path ending in `name`.
    pub fn by_name(&self, name: &str) -> SpanStats {
        let mut out = SpanStats::default();
        for (path, stats) in &self.entries {
            if path.last().copied() == Some(name) {
                out.merge(stats);
            }
        }
        out
    }

    /// Total self time across all spans, microseconds. Since self times are
    /// disjoint this approximates instrumented wall-time per thread.
    pub fn total_self_us(&self) -> f64 {
        self.entries.iter().map(|(_, s)| s.self_us).sum()
    }

    /// Renders the full call tree, indented two spaces per level, siblings
    /// sorted by total time descending.
    pub fn tree_string(&self) -> String {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        // Sort by path prefix with total-time as the sibling tiebreak:
        // compare element-wise; where names differ, the heavier subtree wins.
        let subtree_total = |path: &[&'static str]| -> f64 {
            self.entries
                .iter()
                .filter(|(p, _)| p.len() >= path.len() && p[..path.len()] == *path)
                .map(|(_, s)| s.total_us)
                .sum()
        };
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&self.entries[a].0, &self.entries[b].0);
            let shared = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
            match (pa.len() == shared, pb.len() == shared) {
                (true, _) | (_, true) => pa.len().cmp(&pb.len()),
                _ => {
                    let ta = subtree_total(&pa[..shared + 1]);
                    let tb = subtree_total(&pb[..shared + 1]);
                    tb.total_cmp(&ta).then_with(|| pa[shared].cmp(pb[shared]))
                }
            }
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<42} {:>8} {:>11} {:>11} {:>9} {:>9}",
            "span", "calls", "total(ms)", "self(ms)", "min(ms)", "max(ms)"
        );
        for &i in &order {
            let (path, s) = &self.entries[i];
            let indent = "  ".repeat(path.len().saturating_sub(1));
            let name = format!("{indent}{}", path.last().copied().unwrap_or(""));
            let _ = writeln!(
                out,
                "{:<42} {:>8} {:>11.3} {:>11.3} {:>9.3} {:>9.3}",
                name,
                s.calls,
                s.total_us / 1e3,
                s.self_us / 1e3,
                s.min_us / 1e3,
                s.max_us / 1e3
            );
        }
        out
    }

    /// Renders the top-`n` spans by aggregated *self* time, grouped by leaf
    /// name across paths — the "where the time goes" table.
    pub fn top_self_table(&self, n: usize) -> String {
        let mut by_name: BTreeMap<&'static str, SpanStats> = BTreeMap::new();
        for (path, stats) in &self.entries {
            if let Some(name) = path.last() {
                by_name.entry(name).or_default().merge(stats);
            }
        }
        let grand_self: f64 = by_name.values().map(|s| s.self_us).sum::<f64>().max(1e-9);
        let mut rows: Vec<(&'static str, SpanStats)> = by_name.into_iter().collect();
        rows.sort_by(|a, b| b.1.self_us.total_cmp(&a.1.self_us).then(a.0.cmp(b.0)));
        rows.truncate(n);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>11} {:>11} {:>7} {:>12} {:>12}",
            "span", "calls", "self(ms)", "total(ms)", "self%", "items", "bytes"
        );
        for (name, s) in &rows {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>11.3} {:>11.3} {:>6.1}% {:>12} {:>12}",
                name,
                s.calls,
                s.self_us / 1e3,
                s.total_us / 1e3,
                100.0 * s.self_us / grand_self,
                s.items,
                s.bytes
            );
        }
        out
    }

    /// Serializes the per-name aggregate as JSON — the schema consumed by
    /// `calibre-bench regression` and committed as
    /// `results/bench_baseline.json`:
    ///
    /// ```text
    /// {"spans":[{"name":"matmul","calls":12,"total_us":...,"self_us":...,
    ///            "min_us":...,"max_us":...,"items":...,"bytes":...},...]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut by_name: BTreeMap<&'static str, SpanStats> = BTreeMap::new();
        for (path, stats) in &self.entries {
            if let Some(name) = path.last() {
                by_name.entry(name).or_default().merge(stats);
            }
        }
        // BTreeMap iteration is already name-sorted, matching the committed
        // baseline schema's ordering.
        let mut out = String::from("{\"spans\":[");
        for (i, (name, s)) in by_name.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"calls\":{},\"total_us\":{:.3},\"self_us\":{:.3},\
                 \"min_us\":{:.3},\"max_us\":{:.3},\"items\":{},\"bytes\":{}}}",
                name, s.calls, s.total_us, s.self_us, s.min_us, s.max_us, s.items, s.bytes
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(collector: &ProfileCollector, path: &[&'static str], dur: f64, self_us: f64) {
        collector.span_closed(&ClosedSpan {
            path,
            start_us: 0.0,
            dur_us: dur,
            self_us,
            tid: 1,
            items: 1,
            bytes: 10,
        });
    }

    #[test]
    fn folds_calls_into_stats() {
        let c = ProfileCollector::new();
        close(&c, &["round", "client"], 100.0, 80.0);
        close(&c, &["round", "client"], 300.0, 250.0);
        close(&c, &["round"], 500.0, 100.0);
        let report = c.report();
        let stats = report.stats(&["round", "client"]).unwrap();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.total_us, 400.0);
        assert_eq!(stats.self_us, 330.0);
        assert_eq!(stats.min_us, 100.0);
        assert_eq!(stats.max_us, 300.0);
        assert_eq!(stats.items, 2);
        assert_eq!(stats.bytes, 20);
    }

    #[test]
    fn by_name_aggregates_across_paths() {
        let c = ProfileCollector::new();
        close(&c, &["round", "client", "matmul"], 10.0, 10.0);
        close(&c, &["personalize", "matmul"], 30.0, 30.0);
        let agg = c.report().by_name("matmul");
        assert_eq!(agg.calls, 2);
        assert_eq!(agg.total_us, 40.0);
    }

    #[test]
    fn tree_renders_children_indented_under_parents() {
        let c = ProfileCollector::new();
        close(&c, &["round"], 500.0, 100.0);
        close(&c, &["round", "client"], 400.0, 400.0);
        let tree = c.report().tree_string();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[1].starts_with("round"));
        assert!(lines[2].starts_with("  client"));
    }

    #[test]
    fn top_table_sorts_by_self_time() {
        let c = ProfileCollector::new();
        close(&c, &["a"], 100.0, 10.0);
        close(&c, &["b"], 50.0, 50.0);
        let table = c.report().top_self_table(10);
        let b_pos = table.find("\nb").unwrap();
        let a_pos = table.find("\na").unwrap();
        assert!(
            b_pos < a_pos,
            "b has more self time, must come first:\n{table}"
        );
    }

    #[test]
    fn json_has_one_row_per_name() {
        let c = ProfileCollector::new();
        close(&c, &["round", "matmul"], 10.0, 10.0);
        close(&c, &["probe", "matmul"], 20.0, 20.0);
        close(&c, &["round"], 40.0, 30.0);
        let json = c.report().to_json();
        assert!(json.starts_with("{\"spans\":["));
        assert_eq!(json.matches("\"name\":\"matmul\"").count(), 1);
        assert!(json.contains("\"calls\":2"));
    }

    #[test]
    fn concurrent_folding_loses_nothing() {
        let c = ProfileCollector::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = &c;
                scope.spawn(move || {
                    for _ in 0..100 {
                        c.span_closed(&ClosedSpan {
                            path: &["round", "client"],
                            start_us: 0.0,
                            dur_us: 1.0,
                            self_us: 1.0,
                            tid: t,
                            items: 1,
                            bytes: 1,
                        });
                    }
                });
            }
        });
        assert_eq!(c.report().stats(&["round", "client"]).unwrap().calls, 800);
    }
}
