//! Deterministic metrics registry: counters, gauges, and log₂-bucket
//! histograms with a Prometheus text exposition.
//!
//! The registry is the *live* face of observability: the round executors in
//! `calibre-fl` and the bench drivers publish counters (rounds, accepted/
//! dropped/rejected clients, faults), gauges (mean loss, peak sink bytes)
//! and histograms (round duration, achieved quorum) into it, and the
//! export server (`crate::export`) renders the whole thing on demand.
//!
//! # Determinism
//!
//! Metrics must never perturb training:
//!
//! * The registry is **disabled by default**. Every update begins with one
//!   relaxed atomic load and returns immediately when the registry is off,
//!   so runs without `--metrics-addr` execute the exact instruction stream
//!   they always did — the golden-checksum tests stay green.
//! * All state is keyed by `BTreeMap`, so two identical runs render
//!   byte-identical expositions (no hash-order noise).
//! * Histograms use **fixed** power-of-two bucket boundaries — replaying a
//!   run reproduces the same snapshot, and merging per-shard histograms is
//!   associative and order-independent (element-wise sums).
//! * Only this crate observes the clock: [`MetricsRegistry::start_timer`]
//!   hands out a guard that samples `Instant` internally (and not at all
//!   while the registry is disabled), so instrumented crates never name a
//!   clock type and the `calibre-analyze` wallclock rule keeps holding.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of log₂ buckets every [`Log2Histogram`] carries. Bucket 0 covers
/// `[0, 1)`, bucket `i` covers `[2^(i-1), 2^i)`, and the final bucket is
/// the open-ended overflow — enough range for milliseconds-scale timings up
/// to ~18 hours and for quorum counts up to ~67 million clients.
pub const LOG2_BUCKETS: usize = 28;

/// A fixed-boundary log₂ histogram: power-of-two buckets plus an exact sum
/// and count, so the Prometheus `_bucket`/`_sum`/`_count` exposition is
/// loss-free for rates and means.
///
/// Boundaries never depend on the data, which buys two properties the
/// deterministic-replay story needs: the same observations always land in
/// the same buckets, and merging histograms (element-wise) is associative
/// and order-independent — the property-based tests pin both.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    sum: f64,
    total: u64,
}

impl Log2Histogram {
    /// Adds one observation. Negative values count into bucket 0 (the
    /// boundaries start at zero); non-finite values are ignored entirely —
    /// a poisoned timing must not poison the sum.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut idx = 0usize;
        let mut bound = 1.0f64;
        while value >= bound && idx < LOG2_BUCKETS - 1 {
            bound *= 2.0;
            idx += 1;
        }
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.sum += value.max(0.0);
        self.total += 1;
    }

    /// Per-bucket counts, bucket 0 first, overflow bucket last.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all (non-negative-clamped) observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one, element-wise. Because the
    /// boundaries are fixed, `a.merge(b)` equals `b.merge(a)` equals
    /// observing the union of both streams in any order.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.total += other.total;
    }

    /// The inclusive upper bound of bucket `i` as Prometheus renders it:
    /// `1, 2, 4, …` and `+Inf` for the overflow bucket.
    fn le_label(i: usize) -> String {
        if i + 1 >= LOG2_BUCKETS {
            "+Inf".to_string()
        } else {
            // Bucket i covers [2^(i-1), 2^i): its upper bound is 2^i.
            format!("{}", 1u64 << i)
        }
    }
}

/// The value side of one registry entry.
#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    // Boxed: a histogram is ~240 B of fixed buckets, far larger than the
    // other variants.
    Histogram(Box<Log2Histogram>),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Key: metric family name plus the pre-rendered, sorted label pairs.
type MetricKey = (String, String);

/// A deterministic, thread-safe metrics registry.
///
/// See the [module docs](self) for the determinism contract. Most callers
/// use the process-wide registry via the free functions ([`counter_add`],
/// [`gauge_set`], [`gauge_max`], [`observe`], [`start_timer`]); local
/// registries exist so tests can assert in isolation.
///
/// ```
/// use calibre_telemetry::metrics::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter_add("calibre_rounds_total", &[("path", "collect")], 1);
/// reg.observe("calibre_round_quorum", &[], 24.0);
/// let text = reg.render_prometheus();
/// assert!(text.contains("# TYPE calibre_rounds_total counter"));
/// assert!(text.contains("calibre_rounds_total{path=\"collect\"} 1"));
/// assert!(text.contains("calibre_round_quorum_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    state: Mutex<BTreeMap<MetricKey, MetricValue>>,
}

/// Escapes a label value for the Prometheus text format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders label pairs as `k="v",k2="v2"`, sorted by key so the same label
/// set always produces the same registry key and exposition line.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let sorted: BTreeMap<&str, &str> = labels.iter().copied().collect();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out
}

/// Formats a float the way Prometheus expects (`NaN`, `+Inf`, `-Inf` for
/// the non-finite values).
fn fmt_f64(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

impl MetricsRegistry {
    /// An enabled registry (for tests and embedding).
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// A disabled registry — every update is a no-op until
    /// [`MetricsRegistry::set_enabled`] turns it on. The process-wide
    /// registry starts in this state so default runs stay bit-identical.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Turns collection on or off. Off is the hot-path no-op state.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether updates are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds `delta` to a monotonic counter, creating it at zero first.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let key = (name.to_string(), render_labels(labels));
        let mut state = self.state.lock();
        // Type mismatch with an existing family drops the update rather
        // than corrupt or panic — the exposition stays self-consistent.
        if let MetricValue::Counter(c) = state.entry(key).or_insert(MetricValue::Counter(0)) {
            *c = c.saturating_add(delta);
        }
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauge_update(name, labels, value, |_old, new| new);
    }

    /// Raises a gauge to `value` if it is higher than the current value —
    /// the idiom for peaks (e.g. peak aggregation-state bytes).
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauge_update(name, labels, value, f64::max);
    }

    fn gauge_update(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        f: fn(f64, f64) -> f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let key = (name.to_string(), render_labels(labels));
        let mut state = self.state.lock();
        if let MetricValue::Gauge(g) = state.entry(key).or_insert(MetricValue::Gauge(f64::NAN)) {
            *g = if g.is_nan() { value } else { f(*g, value) };
        }
    }

    /// Records one observation into a log₂ histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.is_enabled() {
            return;
        }
        let key = (name.to_string(), render_labels(labels));
        self.observe_rendered(key, value);
    }

    fn observe_rendered(&self, key: MetricKey, value: f64) {
        let mut state = self.state.lock();
        if let MetricValue::Histogram(h) = state
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            h.observe(value);
        }
    }

    /// Starts a wall-clock timer that, when dropped, observes the elapsed
    /// milliseconds into the named histogram. While the registry is
    /// disabled the guard holds no clock sample at all, so instrumented
    /// code pays nothing and — crucially — never observes time.
    pub fn start_timer(&self, name: &str, labels: &[(&str, &str)]) -> Timer<'_> {
        if !self.is_enabled() {
            return Timer {
                registry: self,
                key: None,
                start: None,
            };
        }
        Timer {
            registry: self,
            key: Some((name.to_string(), render_labels(labels))),
            start: Some(Instant::now()),
        }
    }

    /// Current value of a counter (zero when absent) — test support.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = (name.to_string(), render_labels(labels));
        match self.state.lock().get(&key) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge, if one exists — test support.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = (name.to_string(), render_labels(labels));
        match self.state.lock().get(&key) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A clone of a histogram, if one exists — test support.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Log2Histogram> {
        let key = (name.to_string(), render_labels(labels));
        match self.state.lock().get(&key) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref().clone()),
            _ => None,
        }
    }

    /// Drops every recorded series (the enabled flag is untouched). Test
    /// support — production code never resets a live registry.
    pub fn reset(&self) {
        self.state.lock().clear();
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per family, counter/gauge sample
    /// lines, and cumulative `_bucket`/`_sum`/`_count` lines for
    /// histograms. Output order is fully deterministic (sorted by family
    /// name, then label set).
    pub fn render_prometheus(&self) -> String {
        let state = self.state.lock();
        let mut out = String::with_capacity(256 * state.len().max(1));
        let mut last_family: Option<&str> = None;
        for ((name, labels), value) in state.iter() {
            if last_family != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} {}", value.type_name());
                last_family = Some(name.as_str());
            }
            match value {
                MetricValue::Counter(c) => {
                    render_sample_u64(&mut out, name, labels, "", *c);
                }
                MetricValue::Gauge(g) => {
                    render_sample_f64(&mut out, name, labels, "", *g);
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, count) in h.counts().iter().enumerate() {
                        cumulative += count;
                        let le = Log2Histogram::le_label(i);
                        let mut labels_with_le = labels.clone();
                        if !labels_with_le.is_empty() {
                            labels_with_le.push(',');
                        }
                        let _ = write!(labels_with_le, "le=\"{le}\"");
                        render_sample_u64(&mut out, name, &labels_with_le, "_bucket", cumulative);
                    }
                    render_sample_f64(&mut out, name, labels, "_sum", h.sum());
                    render_sample_u64(&mut out, name, labels, "_count", h.total());
                }
            }
        }
        out
    }
}

fn render_sample_u64(out: &mut String, name: &str, labels: &str, suffix: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name}{suffix} {value}");
    } else {
        let _ = writeln!(out, "{name}{suffix}{{{labels}}} {value}");
    }
}

fn render_sample_f64(out: &mut String, name: &str, labels: &str, suffix: &str, value: f64) {
    if labels.is_empty() {
        let _ = write!(out, "{name}{suffix} ");
    } else {
        let _ = write!(out, "{name}{suffix}{{{labels}}} ");
    }
    fmt_f64(value, out);
    out.push('\n');
}

/// RAII guard from [`MetricsRegistry::start_timer`]: observes the elapsed
/// wall-clock milliseconds into its histogram on drop. Inert (no clock
/// sample taken, nothing recorded) when the registry was disabled at start.
#[derive(Debug)]
pub struct Timer<'a> {
    registry: &'a MetricsRegistry,
    key: Option<MetricKey>,
    start: Option<Instant>,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if let (Some(key), Some(start)) = (self.key.take(), self.start.take()) {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            self.registry.observe_rendered(key, ms);
        }
    }
}

/// The process-wide registry the instrumented crates publish into. Starts
/// disabled; `--metrics-addr` (via `calibre_bench::obs`) enables it.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::disabled)
}

/// Enables or disables the process-wide registry.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Adds `delta` to a counter in the process-wide registry.
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    global().counter_add(name, labels, delta);
}

/// Sets a gauge in the process-wide registry.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    global().gauge_set(name, labels, value);
}

/// Raises a gauge in the process-wide registry to `value` if higher.
pub fn gauge_max(name: &str, labels: &[(&str, &str)], value: f64) {
    global().gauge_max(name, labels, value);
}

/// Records a histogram observation in the process-wide registry.
pub fn observe(name: &str, labels: &[(&str, &str)], value: f64) {
    global().observe(name, labels, value);
}

/// Starts a duration timer against the process-wide registry.
pub fn start_timer(name: &str, labels: &[(&str, &str)]) -> Timer<'static> {
    global().start_timer(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        reg.counter_add("c", &[], 5);
        reg.gauge_set("g", &[], 1.0);
        reg.observe("h", &[], 3.0);
        assert_eq!(reg.counter_value("c", &[]), 0);
        assert!(reg.gauge_value("g", &[]).is_none());
        assert!(reg.histogram("h", &[]).is_none());
        assert!(reg.render_prometheus().is_empty());
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = MetricsRegistry::new();
        reg.counter_add("calibre_rounds_total", &[("path", "collect")], 1);
        reg.counter_add("calibre_rounds_total", &[("path", "collect")], 2);
        reg.counter_add("calibre_rounds_total", &[("path", "streaming")], 7);
        assert_eq!(
            reg.counter_value("calibre_rounds_total", &[("path", "collect")]),
            3
        );
        assert_eq!(
            reg.counter_value("calibre_rounds_total", &[("path", "streaming")]),
            7
        );
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        reg.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(reg.counter_value("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn gauge_max_keeps_the_peak() {
        let reg = MetricsRegistry::new();
        reg.gauge_max("peak", &[], 10.0);
        reg.gauge_max("peak", &[], 4.0);
        reg.gauge_max("peak", &[], 12.0);
        assert_eq!(reg.gauge_value("peak", &[]), Some(12.0));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Log2Histogram::default();
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 1
        h.observe(3.9); // bucket 2
        h.observe(1e12); // overflow
        h.observe(f64::NAN); // ignored
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts().first().copied(), Some(1));
        assert_eq!(h.counts().get(1).copied(), Some(1));
        assert_eq!(h.counts().get(2).copied(), Some(1));
        assert_eq!(h.counts().last().copied(), Some(1));
        assert!((h.sum() - (0.5 + 1.0 + 3.9 + 1e12)).abs() < 1.0);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter_add("calibre_rounds_total", &[("path", "collect")], 3);
        reg.gauge_set("calibre_round_mean_loss", &[], 1.25);
        reg.observe("calibre_round_duration_ms", &[("path", "collect")], 1.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE calibre_rounds_total counter"));
        assert!(text.contains("calibre_rounds_total{path=\"collect\"} 3"));
        assert!(text.contains("# TYPE calibre_round_mean_loss gauge"));
        assert!(text.contains("calibre_round_mean_loss 1.25"));
        assert!(text.contains("# TYPE calibre_round_duration_ms histogram"));
        assert!(text.contains("calibre_round_duration_ms_bucket{path=\"collect\",le=\"2\"} 1"));
        assert!(text.contains("calibre_round_duration_ms_bucket{path=\"collect\",le=\"+Inf\"} 1"));
        assert!(text.contains("calibre_round_duration_ms_count{path=\"collect\"} 1"));
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE calibre_rounds_total ").count(), 1);
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter_add("b_total", &[], 1);
            reg.counter_add("a_total", &[("k", "v")], 2);
            reg.observe("h_ms", &[], 7.0);
            reg.render_prometheus()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn type_mismatch_is_ignored_not_corrupted() {
        let reg = MetricsRegistry::new();
        reg.counter_add("x", &[], 1);
        reg.gauge_set("x", &[], 99.0); // ignored: x is a counter
        reg.observe("x", &[], 5.0); // ignored too
        assert_eq!(reg.counter_value("x", &[]), 1);
        assert!(reg.gauge_value("x", &[]).is_none());
    }

    #[test]
    fn timer_observes_elapsed_ms() {
        let reg = MetricsRegistry::new();
        {
            let _t = reg.start_timer("op_ms", &[]);
        }
        let h = reg.histogram("op_ms", &[]).unwrap_or_default();
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn timer_on_disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        {
            let _t = reg.start_timer("op_ms", &[]);
        }
        assert!(reg.histogram("op_ms", &[]).is_none());
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", &[("k", "a\"b\\c\nd")], 1);
        let text = reg.render_prometheus();
        assert!(text.contains("k=\"a\\\"b\\\\c\\nd\""));
    }
}
