//! One-shot, self-contained snapshot of a [`MetricsHub`](crate::MetricsHub).
//!
//! Console summaries (`calibre_bench::obs`), the HTTP `/status` endpoint
//! (`crate::export`), and the `calibre-obs` CLI all render from this one
//! struct, so the three surfaces can never drift apart: what you read in
//! the terminal is exactly what a scraper or the query CLI sees.

use crate::hub::{AttackSummary, CohortSummary, FairnessSummary, ResilienceSummary, RoundSummary};
use std::fmt::Write as _;

/// A consistent point-in-time copy of everything a
/// [`MetricsHub`](crate::MetricsHub) has folded so far.
///
/// Obtain via [`MetricsHub::snapshot`](crate::MetricsHub::snapshot); render
/// with [`HubSnapshot::render_text`] for humans or
/// [`HubSnapshot::to_json`] for machines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HubSnapshot {
    /// Per-round summaries in round order.
    pub rounds: Vec<RoundSummary>,
    /// Fairness over personalized accuracies, when any were recorded.
    pub fairness: Option<FairnessSummary>,
    /// Run-level chaos/resilience totals.
    pub resilience: ResilienceSummary,
    /// Run-level adversary totals (all zeros for an unattacked run).
    pub attacks: AttackSummary,
    /// Massive-cohort sweep points (empty outside the `cohort` bench).
    pub cohorts: Vec<CohortSummary>,
    /// Total planned communication bytes across completed rounds.
    pub planned_bytes: u64,
    /// Total observed communication bytes across completed rounds.
    pub observed_bytes: u64,
}

impl HubSnapshot {
    /// Renders the end-of-run console summary. Lines match the historical
    /// `calibre_bench` output format so existing eyeballs and scripts keep
    /// working; the caller owns any leading blank line and trailing
    /// "wrote …" line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== telemetry summary ({} round events) ==",
            self.rounds.len()
        );
        for s in &self.rounds {
            let _ = writeln!(
                out,
                "round {:>3}: {} clients, mean loss {:.4}, wall mean {:.1} ms / max {:.1} ms",
                s.round, s.num_clients, s.mean_loss, s.mean_wall_ms, s.max_wall_ms
            );
        }
        let _ = writeln!(
            out,
            "comm: planned {:.2} MiB, observed {:.2} MiB",
            self.planned_bytes as f64 / (1024.0 * 1024.0),
            self.observed_bytes as f64 / (1024.0 * 1024.0)
        );
        if let Some(fairness) = &self.fairness {
            let _ = writeln!(
                out,
                "fairness over {} personalizations: mean {:.3}, std {:.3}, worst-10% {:.3}",
                fairness.num_clients, fairness.mean, fairness.std, fairness.worst_10pct
            );
        }
        if !self.cohorts.is_empty() {
            let _ = writeln!(out, "cohort sweep ({} points):", self.cohorts.len());
            for c in &self.cohorts {
                let _ = writeln!(
                    out,
                    "  cohort {:>7} (dim {}, groups {}): {:.2} rounds/sec, peak agg {} B, peak rss {:.1} MiB",
                    c.cohort,
                    c.dim,
                    c.groups,
                    c.rounds_per_sec,
                    c.peak_state_bytes,
                    c.peak_rss_bytes as f64 / (1024.0 * 1024.0)
                );
            }
        }
        if self.resilience != ResilienceSummary::default() {
            let _ = writeln!(
                out,
                "resilience: {} faults injected ({} detected), {} retries, {} rounds skipped, min quorum {}",
                self.resilience.faults_injected,
                self.resilience.faults_detected,
                self.resilience.retries,
                self.resilience.rounds_skipped,
                self.resilience
                    .min_quorum_seen
                    .map_or_else(|| "-".to_string(), |q| q.to_string()),
            );
        }
        if self.attacks != AttackSummary::default() {
            let a = &self.attacks;
            let _ = writeln!(
                out,
                "attacks: {} injected (flip {}, scale {}, replace {}, noise {}, collude {}), {} quarantined, max suspicion {:.2}",
                a.attacks_injected,
                a.flips,
                a.scales,
                a.replaces,
                a.noises,
                a.colludes,
                a.quarantined,
                a.max_suspicion,
            );
        }
        out
    }

    /// Serializes the snapshot as a JSON object — the `/status` payload.
    /// Non-finite floats encode as `null`, matching the event stream's
    /// convention.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"num_clients\":{},\"mean_loss\":",
                r.round, r.num_clients
            );
            push_num(&mut out, f64::from(r.mean_loss));
            out.push_str(",\"mean_wall_ms\":");
            push_num(&mut out, r.mean_wall_ms);
            out.push_str(",\"max_wall_ms\":");
            push_num(&mut out, r.max_wall_ms);
            let _ = write!(
                out,
                ",\"planned_bytes\":{},\"observed_bytes\":{}}}",
                r.planned_bytes, r.observed_bytes
            );
        }
        out.push_str("],\"fairness\":");
        match &self.fairness {
            Some(f) => {
                let _ = write!(out, "{{\"num_clients\":{},\"mean\":", f.num_clients);
                push_num(&mut out, f64::from(f.mean));
                out.push_str(",\"std\":");
                push_num(&mut out, f64::from(f.std));
                out.push_str(",\"worst_10pct\":");
                push_num(&mut out, f64::from(f.worst_10pct));
                out.push('}');
            }
            None => out.push_str("null"),
        }
        let r = &self.resilience;
        let _ = write!(
            out,
            ",\"resilience\":{{\"faults_injected\":{},\"faults_detected\":{},\"retries\":{},\"rounds_skipped\":{},\"min_quorum_seen\":{}}}",
            r.faults_injected,
            r.faults_detected,
            r.retries,
            r.rounds_skipped,
            r.min_quorum_seen
                .map_or_else(|| "null".to_string(), |q| q.to_string()),
        );
        let a = &self.attacks;
        let _ = write!(
            out,
            ",\"attacks\":{{\"attacks_injected\":{},\"flips\":{},\"scales\":{},\
             \"replaces\":{},\"noises\":{},\"colludes\":{},\"quarantined\":{},\
             \"max_suspicion\":",
            a.attacks_injected, a.flips, a.scales, a.replaces, a.noises, a.colludes, a.quarantined,
        );
        push_num(&mut out, f64::from(a.max_suspicion));
        out.push('}');
        out.push_str(",\"cohorts\":[");
        for (i, c) in self.cohorts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cohort\":{},\"dim\":{},\"groups\":{},\"rounds\":{},\"rounds_per_sec\":",
                c.cohort, c.dim, c.groups, c.rounds
            );
            push_num(&mut out, c.rounds_per_sec);
            let _ = write!(
                out,
                ",\"peak_state_bytes\":{},\"peak_rss_bytes\":{}}}",
                c.peak_state_bytes, c.peak_rss_bytes
            );
        }
        let _ = write!(
            out,
            "],\"planned_bytes\":{},\"observed_bytes\":{}}}",
            self.planned_bytes, self.observed_bytes
        );
        out
    }
}

/// JSON number with the event-stream convention: non-finite → `null`.
fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Histogram;
    use crate::json::JsonValue;

    fn sample() -> HubSnapshot {
        HubSnapshot {
            rounds: vec![RoundSummary {
                round: 0,
                num_clients: 3,
                mean_loss: 1.5,
                mean_wall_ms: 2.0,
                max_wall_ms: 3.0,
                wall_histogram: Histogram::default(),
                planned_bytes: 96,
                observed_bytes: 96,
            }],
            fairness: Some(FairnessSummary {
                num_clients: 10,
                mean: 0.8,
                std: 0.05,
                worst_10pct: 0.7,
            }),
            resilience: ResilienceSummary {
                faults_injected: 2,
                faults_detected: 1,
                retries: 1,
                rounds_skipped: 0,
                min_quorum_seen: Some(4),
            },
            attacks: AttackSummary {
                attacks_injected: 3,
                flips: 2,
                colludes: 1,
                quarantined: 1,
                max_suspicion: 2.5,
                ..AttackSummary::default()
            },
            cohorts: vec![CohortSummary {
                cohort: 1000,
                dim: 256,
                groups: 0,
                rounds: 2,
                rounds_per_sec: 12.5,
                peak_state_bytes: 4096,
                peak_rss_bytes: 0,
            }],
            planned_bytes: 96,
            observed_bytes: 96,
        }
    }

    #[test]
    fn text_rendering_covers_every_section() {
        let text = sample().render_text();
        assert!(text.starts_with("== telemetry summary (1 round events) =="));
        assert!(text.contains("round   0: 3 clients, mean loss 1.5000"));
        assert!(text.contains("comm: planned 0.00 MiB, observed 0.00 MiB"));
        assert!(text
            .contains("fairness over 10 personalizations: mean 0.800, std 0.050, worst-10% 0.700"));
        assert!(text.contains("cohort sweep (1 points):"));
        assert!(text.contains(
            "resilience: 2 faults injected (1 detected), 1 retries, 0 rounds skipped, min quorum 4"
        ));
        assert!(text.contains(
            "attacks: 3 injected (flip 2, scale 0, replace 0, noise 0, collude 1), 1 quarantined"
        ));
    }

    #[test]
    fn quiet_sections_stay_silent() {
        let text = HubSnapshot::default().render_text();
        assert!(!text.contains("fairness"));
        assert!(!text.contains("cohort sweep"));
        assert!(!text.contains("resilience:"));
        assert!(!text.contains("attacks:"));
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let json = sample().to_json();
        let value = JsonValue::parse(&json).expect("snapshot JSON must parse");
        assert_eq!(
            value
                .get("rounds")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        assert_eq!(
            value
                .get("fairness")
                .and_then(|f| f.get("num_clients"))
                .and_then(JsonValue::as_i64),
            Some(10)
        );
        assert_eq!(
            value
                .get("resilience")
                .and_then(|r| r.get("min_quorum_seen"))
                .and_then(JsonValue::as_i64),
            Some(4)
        );
        assert_eq!(
            value
                .get("attacks")
                .and_then(|a| a.get("attacks_injected"))
                .and_then(JsonValue::as_i64),
            Some(3)
        );
        assert_eq!(
            value
                .get("attacks")
                .and_then(|a| a.get("quarantined"))
                .and_then(JsonValue::as_i64),
            Some(1)
        );
        assert_eq!(
            value
                .get("cohorts")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        assert_eq!(
            value.get("planned_bytes").and_then(JsonValue::as_i64),
            Some(96)
        );
    }

    #[test]
    fn empty_snapshot_encodes_nulls() {
        let json = HubSnapshot::default().to_json();
        let value = JsonValue::parse(&json).expect("empty snapshot JSON must parse");
        assert!(matches!(value.get("fairness"), Some(JsonValue::Null)));
        assert!(matches!(
            value
                .get("resilience")
                .and_then(|r| r.get("min_quorum_seen")),
            Some(JsonValue::Null)
        ));
    }
}
