//! Thread-safe aggregation of the event stream into run-level summaries.

use crate::event::Event;
use crate::recorder::Recorder;
use crate::snapshot::HubSnapshot;
use parking_lot::Mutex;

/// Summary statistics for one completed federated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSummary {
    /// Zero-based round index.
    pub round: usize,
    /// Number of clients that reported a local update this round.
    pub num_clients: usize,
    /// Mean of the clients' total local losses.
    pub mean_loss: f32,
    /// Mean per-client wall-clock time, milliseconds.
    pub mean_wall_ms: f64,
    /// Maximum per-client wall-clock time (the round's straggler),
    /// milliseconds.
    pub max_wall_ms: f64,
    /// Histogram of per-client wall-clock times for this round.
    pub wall_histogram: Histogram,
    /// Bytes the communication model predicted for the round.
    pub planned_bytes: u64,
    /// Bytes actually moved through the aggregator.
    pub observed_bytes: u64,
}

/// Fairness summary over per-client personalized accuracies, matching the
/// paper's evaluation protocol (Table 1 reports mean and the bottom decile).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessSummary {
    /// Number of clients evaluated.
    pub num_clients: usize,
    /// Mean accuracy across clients.
    pub mean: f32,
    /// Population standard deviation of accuracy across clients.
    pub std: f32,
    /// Mean accuracy of the worst 10% of clients (at least one client).
    pub worst_10pct: f32,
}

/// A small fixed-bucket histogram of per-client wall-clock times.
///
/// Buckets are powers of two in milliseconds: `<1ms, <2ms, <4ms, ...` with a
/// final overflow bucket. Coarse on purpose — the point is spotting straggler
/// skew at a glance, not profiling.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    counts: [u32; Histogram::BUCKETS],
}

impl Histogram {
    const BUCKETS: usize = 12;

    /// Adds one observation in milliseconds.
    pub fn observe(&mut self, ms: f64) {
        let mut idx = 0usize;
        let mut bound = 1.0f64;
        while ms >= bound && idx < Self::BUCKETS - 1 {
            bound *= 2.0;
            idx += 1;
        }
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Bucket counts; bucket `i` covers `[2^(i-1), 2^i)` milliseconds
    /// (bucket 0 is `[0, 1)`, the last bucket is open-ended).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }
}

#[derive(Default)]
struct RoundInProgress {
    wall_ms: Vec<f64>,
    losses: Vec<f32>,
}

#[derive(Default)]
struct HubState {
    current: Option<RoundInProgress>,
    rounds: Vec<RoundSummary>,
    accuracies: Vec<f32>,
    resilience: ResilienceSummary,
    attacks: AttackSummary,
    cohort_points: Vec<CohortSummary>,
}

/// One point of a massive-cohort scaling sweep, folded from
/// [`Event::CohortPoint`]. See the `cohort` bench and `DESIGN.md` §11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortSummary {
    /// Simulated cohort size (clients folded per round).
    pub cohort: usize,
    /// Model dimension (floats per update).
    pub dim: usize,
    /// Number of edge groups (0 = flat streaming sink).
    pub groups: usize,
    /// Rounds executed at this sweep point.
    pub rounds: usize,
    /// Throughput over the sweep point, rounds per second.
    pub rounds_per_sec: f64,
    /// Peak bytes held by the aggregation path across the point's rounds.
    pub peak_state_bytes: u64,
    /// Peak process RSS after the point, bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
}

/// Run-level totals of the chaos/resilience event stream.
///
/// All zeros for a run with no fault injection and no failures — the
/// resilient executor only emits [`Event::Fault`] / [`Event::RoundResilience`]
/// when something non-nominal happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSummary {
    /// Faults the chaos layer injected across all rounds.
    pub faults_injected: usize,
    /// Faults the executor detected (caught panics, noticed dropouts,
    /// validation rejections).
    pub faults_detected: usize,
    /// Client update attempts that were retried.
    pub retries: usize,
    /// Rounds skipped because the surviving quorum was below `min_quorum`.
    pub rounds_skipped: usize,
    /// Smallest quorum that was actually aggregated, if any round reported.
    pub min_quorum_seen: Option<usize>,
}

/// Run-level totals of the adversary event stream.
///
/// All zeros for a run with no attack plan — the adversary layer only
/// emits [`Event::Attack`] / [`Event::Quarantine`] when a seeded attack
/// actually fired, so a nominal run's summary stays `Default`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttackSummary {
    /// Attacks injected across all rounds (all kinds).
    pub attacks_injected: usize,
    /// Sign-flip attacks (`"attack_flip"`).
    pub flips: usize,
    /// Scaling attacks (`"attack_scale"`).
    pub scales: usize,
    /// Model-replacement attacks (`"attack_replace"`).
    pub replaces: usize,
    /// Inlier-fitted noise attacks (`"attack_noise"`).
    pub noises: usize,
    /// Colluding-group attacks (`"attack_collude"`).
    pub colludes: usize,
    /// Clients quarantined by the reputation book.
    pub quarantined: usize,
    /// Largest suspicion score seen at quarantine time (0 when none).
    pub max_suspicion: f32,
}

/// A thread-safe reducer over the telemetry stream.
///
/// Implements [`Recorder`], so it can sit directly in the loop (usually via
/// [`crate::Fanout`] next to a [`crate::JsonlSink`]) and fold events into
/// [`RoundSummary`]s and a final [`FairnessSummary`] without keeping the raw
/// stream in memory.
///
/// ```
/// use calibre_telemetry::{MetricsHub, Recorder};
///
/// let hub = MetricsHub::new();
/// hub.round_start(0, &[0, 1]);
/// hub.round_end(0, 0.5, &[2.0, 9.0], &[0.4, 0.6], 128, 128);
/// hub.personalize(0, 0.7);
/// hub.personalize(1, 0.9);
///
/// let rounds = hub.round_summaries();
/// assert_eq!(rounds.len(), 1);
/// assert_eq!(rounds[0].max_wall_ms, 9.0);
/// let fairness = hub.fairness_summary().unwrap();
/// assert_eq!(fairness.num_clients, 2);
/// assert!((fairness.mean - 0.8).abs() < 1e-6);
/// assert!((fairness.worst_10pct - 0.7).abs() < 1e-6);
/// ```
#[derive(Default)]
pub struct MetricsHub {
    state: Mutex<HubState>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summaries of all rounds that have ended, in round order.
    pub fn round_summaries(&self) -> Vec<RoundSummary> {
        self.state.lock().rounds.clone()
    }

    /// Fairness summary over the personalized accuracies seen so far, or
    /// `None` if no [`Event::Personalize`] has been recorded.
    pub fn fairness_summary(&self) -> Option<FairnessSummary> {
        let state = self.state.lock();
        let accs = &state.accuracies;
        if accs.is_empty() {
            return None;
        }
        let n = accs.len();
        let mean = accs.iter().sum::<f32>() / n as f32;
        let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n as f32;
        let mut sorted = accs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let worst_n = (n as f32 * 0.1).ceil().max(1.0) as usize;
        let worst = sorted.iter().take(worst_n).sum::<f32>() / worst_n as f32;
        Some(FairnessSummary {
            num_clients: n,
            mean,
            std: var.sqrt(),
            worst_10pct: worst,
        })
    }

    /// Run-level chaos/resilience totals (all zeros for a nominal run).
    pub fn resilience_summary(&self) -> ResilienceSummary {
        self.state.lock().resilience
    }

    /// Run-level adversary totals (all zeros for an unattacked run).
    pub fn attack_summary(&self) -> AttackSummary {
        self.state.lock().attacks
    }

    /// The massive-cohort sweep points recorded so far, in arrival order
    /// (empty for training runs — only the `cohort` bench emits them).
    pub fn cohort_summaries(&self) -> Vec<CohortSummary> {
        self.state.lock().cohort_points.clone()
    }

    /// Total planned and observed communication bytes across all completed
    /// rounds, as `(planned, observed)`.
    pub fn total_bytes(&self) -> (u64, u64) {
        let state = self.state.lock();
        state.rounds.iter().fold((0, 0), |(p, o), r| {
            (p + r.planned_bytes, o + r.observed_bytes)
        })
    }

    /// A consistent point-in-time copy of everything folded so far: the
    /// single source for console summaries, the `/status` endpoint, and the
    /// `calibre-obs` CLI. All sections are captured under one lock
    /// acquisition per accessor, taken back-to-back — good enough for a
    /// hub that is only appended to.
    pub fn snapshot(&self) -> HubSnapshot {
        let (planned_bytes, observed_bytes) = self.total_bytes();
        HubSnapshot {
            rounds: self.round_summaries(),
            fairness: self.fairness_summary(),
            resilience: self.resilience_summary(),
            attacks: self.attack_summary(),
            cohorts: self.cohort_summaries(),
            planned_bytes,
            observed_bytes,
        }
    }
}

impl Recorder for MetricsHub {
    fn record(&self, event: Event) {
        let mut state = self.state.lock();
        match event {
            Event::RoundStart { .. } => {
                state.current = Some(RoundInProgress::default());
            }
            Event::ClientUpdate {
                wall_ms, losses, ..
            } => {
                let cur = state.current.get_or_insert_with(RoundInProgress::default);
                cur.wall_ms.push(wall_ms);
                cur.losses.push(losses.total);
            }
            Event::Aggregate { .. } => {}
            Event::RoundEnd {
                round,
                mean_loss,
                client_wall_ms,
                client_loss,
                planned_bytes,
                observed_bytes,
            } => {
                // Prefer the per-client vectors carried by the event itself;
                // fall back to what client_update events accumulated.
                let cur = state.current.take();
                let wall = if client_wall_ms.is_empty() {
                    cur.as_ref().map(|c| c.wall_ms.clone()).unwrap_or_default()
                } else {
                    client_wall_ms
                };
                let losses = if client_loss.is_empty() {
                    cur.as_ref().map(|c| c.losses.clone()).unwrap_or_default()
                } else {
                    client_loss
                };
                let mut hist = Histogram::default();
                for &ms in &wall {
                    hist.observe(ms);
                }
                let n = wall.len();
                let mean_wall = if n == 0 {
                    0.0
                } else {
                    wall.iter().sum::<f64>() / n as f64
                };
                let max_wall = wall.iter().cloned().fold(0.0f64, f64::max);
                let mean_loss = if !mean_loss.is_finite() && !losses.is_empty() {
                    losses.iter().sum::<f32>() / losses.len() as f32
                } else {
                    mean_loss
                };
                state.rounds.push(RoundSummary {
                    round,
                    num_clients: n.max(losses.len()),
                    mean_loss,
                    mean_wall_ms: mean_wall,
                    max_wall_ms: max_wall,
                    wall_histogram: hist,
                    planned_bytes,
                    observed_bytes,
                });
            }
            Event::Personalize { accuracy, .. } => {
                state.accuracies.push(accuracy);
            }
            Event::Fault { detected, .. } => {
                state.resilience.faults_injected += 1;
                if detected {
                    state.resilience.faults_detected += 1;
                }
            }
            Event::RoundResilience {
                retries,
                quorum,
                skipped,
                ..
            } => {
                state.resilience.retries += retries;
                if skipped {
                    state.resilience.rounds_skipped += 1;
                } else {
                    let best = state
                        .resilience
                        .min_quorum_seen
                        .map_or(quorum, |q| q.min(quorum));
                    state.resilience.min_quorum_seen = Some(best);
                }
            }
            Event::Attack { kind, .. } => {
                state.attacks.attacks_injected += 1;
                match kind {
                    "attack_flip" => state.attacks.flips += 1,
                    "attack_scale" => state.attacks.scales += 1,
                    "attack_replace" => state.attacks.replaces += 1,
                    "attack_noise" => state.attacks.noises += 1,
                    "attack_collude" => state.attacks.colludes += 1,
                    _ => {}
                }
            }
            Event::Quarantine { suspicion, .. } => {
                state.attacks.quarantined += 1;
                if suspicion > state.attacks.max_suspicion {
                    state.attacks.max_suspicion = suspicion;
                }
            }
            Event::CohortPoint {
                cohort,
                dim,
                groups,
                rounds,
                rounds_per_sec,
                peak_state_bytes,
                peak_rss_bytes,
            } => {
                state.cohort_points.push(CohortSummary {
                    cohort,
                    dim,
                    groups,
                    rounds,
                    rounds_per_sec,
                    peak_state_bytes,
                    peak_rss_bytes,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ClientLosses;
    use std::time::Duration;

    #[test]
    fn folds_resilience_counters() {
        let hub = MetricsHub::new();
        assert_eq!(hub.resilience_summary(), ResilienceSummary::default());
        hub.fault(0, 3, 0, "dropout", false);
        hub.fault(0, 3, 0, "dropout", true);
        hub.fault(1, 2, 1, "corrupt_nan", false);
        hub.round_resilience(0, 1, 1, 1, 4, false);
        hub.round_resilience(1, 1, 0, 0, 2, false);
        hub.round_resilience(2, 0, 0, 0, 0, true);
        let s = hub.resilience_summary();
        assert_eq!(s.faults_injected, 3, "every fault event counts as injected");
        assert_eq!(
            s.faults_detected, 1,
            "only flagged faults count as detected"
        );
        assert_eq!(s.retries, 1);
        assert_eq!(s.rounds_skipped, 1);
        assert_eq!(s.min_quorum_seen, Some(2));
    }

    #[test]
    fn folds_attack_counters() {
        let hub = MetricsHub::new();
        assert_eq!(hub.attack_summary(), AttackSummary::default());
        hub.attack(0, 1, "attack_flip");
        hub.attack(0, 2, "attack_scale");
        hub.attack(1, 1, "attack_flip");
        hub.attack(1, 3, "attack_collude");
        hub.quarantine(2, 1, 3.5);
        hub.quarantine(3, 3, 2.25);
        let s = hub.attack_summary();
        assert_eq!(s.attacks_injected, 4);
        assert_eq!(s.flips, 2);
        assert_eq!(s.scales, 1);
        assert_eq!(s.colludes, 1);
        assert_eq!(s.quarantined, 2);
        assert!((s.max_suspicion - 3.5).abs() < 1e-6);
    }

    #[test]
    fn folds_rounds_and_fairness() {
        let hub = MetricsHub::new();
        for round in 0..3usize {
            hub.round_start(round, &[0, 1, 2]);
            for client in 0..3usize {
                hub.client_update(
                    round,
                    client,
                    Duration::from_millis(1 + client as u64),
                    ClientLosses {
                        total: 1.0,
                        ..Default::default()
                    },
                    0.0,
                );
            }
            hub.aggregate(round, 3, 3.0);
            hub.round_end(round, 1.0, &[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], 96, 96);
        }
        for client in 0..10usize {
            hub.personalize(client, 0.5 + client as f32 * 0.05);
        }

        let rounds = hub.round_summaries();
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[1].round, 1);
        assert_eq!(rounds[1].num_clients, 3);
        assert!((rounds[1].mean_wall_ms - 2.0).abs() < 1e-9);
        assert_eq!(rounds[1].max_wall_ms, 3.0);
        assert_eq!(rounds[1].wall_histogram.total(), 3);

        let fairness = hub.fairness_summary().unwrap();
        assert_eq!(fairness.num_clients, 10);
        assert!((fairness.mean - 0.725).abs() < 1e-5);
        // Worst 10% of 10 clients is exactly the single worst client.
        assert!((fairness.worst_10pct - 0.5).abs() < 1e-6);
        assert!(fairness.std > 0.0);

        assert_eq!(hub.total_bytes(), (288, 288));
    }

    #[test]
    fn round_end_falls_back_to_accumulated_client_updates() {
        let hub = MetricsHub::new();
        hub.round_start(0, &[0, 1]);
        hub.client_update(
            0,
            0,
            Duration::from_millis(4),
            ClientLosses {
                total: 2.0,
                ..Default::default()
            },
            0.0,
        );
        hub.client_update(
            0,
            1,
            Duration::from_millis(6),
            ClientLosses {
                total: 4.0,
                ..Default::default()
            },
            0.0,
        );
        // Empty vectors in round_end: the hub uses what it saw in
        // client_update events.
        hub.round_end(0, f32::NAN, &[], &[], 0, 0);
        let rounds = hub.round_summaries();
        assert_eq!(rounds[0].num_clients, 2);
        assert!((rounds[0].mean_wall_ms - 5.0).abs() < 0.1);
        assert!((rounds[0].mean_loss - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fairness_empty_is_none() {
        assert!(MetricsHub::new().fairness_summary().is_none());
    }

    #[test]
    fn folds_cohort_sweep_points() {
        let hub = MetricsHub::new();
        assert!(hub.cohort_summaries().is_empty());
        hub.cohort_point(1_000, 1024, 0, 5, 20.0, 8192, 0);
        hub.cohort_point(10_000, 1024, 32, 5, 18.5, 262_144, 1 << 20);
        let points = hub.cohort_summaries();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].cohort, 1_000);
        assert_eq!(points[1].groups, 32);
        assert_eq!(points[1].peak_state_bytes, 262_144);
    }

    #[test]
    fn round_with_zero_accepted_clients_folds_to_zeros() {
        // A below-quorum round ends with no client data at all; the summary
        // must fold to zeros instead of NaN-ing or panicking on division.
        let hub = MetricsHub::new();
        hub.round_start(0, &[]);
        hub.round_end(0, f32::NAN, &[], &[], 0, 0);
        let rounds = hub.round_summaries();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].num_clients, 0);
        assert_eq!(rounds[0].mean_wall_ms, 0.0);
        assert_eq!(rounds[0].max_wall_ms, 0.0);
        assert_eq!(rounds[0].wall_histogram.total(), 0);
        // mean_loss stays NaN (there is nothing to recompute it from) —
        // the JSON layer encodes that as null downstream.
        assert!(rounds[0].mean_loss.is_nan());
        assert_eq!(hub.total_bytes(), (0, 0));
    }

    #[test]
    fn single_round_run_summarizes_cleanly() {
        let hub = MetricsHub::new();
        hub.round_start(0, &[0]);
        hub.round_end(0, 0.25, &[4.0], &[0.25], 64, 64);
        hub.personalize(0, 0.9);
        let snap = hub.snapshot();
        assert_eq!(snap.rounds.len(), 1);
        assert_eq!(snap.rounds[0].num_clients, 1);
        assert_eq!(snap.rounds[0].mean_wall_ms, 4.0);
        assert_eq!(snap.rounds[0].max_wall_ms, 4.0);
        let fairness = snap.fairness.expect("one personalize event recorded");
        // With a single client, mean == worst-10% and std is zero.
        assert_eq!(fairness.num_clients, 1);
        assert!((fairness.mean - 0.9).abs() < 1e-6);
        assert!((fairness.worst_10pct - 0.9).abs() < 1e-6);
        assert_eq!(fairness.std, 0.0);
        assert_eq!((snap.planned_bytes, snap.observed_bytes), (64, 64));
    }

    #[test]
    fn snapshot_mirrors_the_accessors() {
        let hub = MetricsHub::new();
        hub.round_start(0, &[0, 1]);
        hub.round_end(0, 0.5, &[1.0, 2.0], &[0.4, 0.6], 128, 120);
        hub.personalize(0, 0.7);
        hub.cohort_point(100, 16, 0, 2, 5.0, 1024, 0);
        hub.round_resilience(0, 0, 0, 1, 2, false);
        let snap = hub.snapshot();
        assert_eq!(snap.rounds, hub.round_summaries());
        assert_eq!(snap.fairness, hub.fairness_summary());
        assert_eq!(snap.resilience, hub.resilience_summary());
        assert_eq!(snap.cohorts, hub.cohort_summaries());
        assert_eq!((snap.planned_bytes, snap.observed_bytes), hub.total_bytes());
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::default();
        h.observe(0.5); // bucket 0: [0, 1)
        h.observe(1.0); // bucket 1: [1, 2)
        h.observe(3.9); // bucket 2: [2, 4)
        h.observe(1e9); // overflow bucket
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[2], 1);
        assert_eq!(h.counts()[Histogram::BUCKETS - 1], 1);
        assert_eq!(h.total(), 4);
    }
}
