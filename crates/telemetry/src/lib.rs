//! Round-level telemetry for the Calibre federated loop.
//!
//! In Algorithm 1 terms this crate observes both stages without taking part
//! in either: the *training stage* emits one [`Event::RoundStart`], one
//! [`Event::ClientUpdate`] per selected client, one [`Event::Aggregate`] and
//! one [`Event::RoundEnd`] per federated round, and the *personalization
//! stage* emits one [`Event::Personalize`] per client when the frozen global
//! encoder is evaluated with a local linear probe.
//!
//! The design splits cleanly into three layers:
//!
//! * **Events** ([`Event`], [`ClientLosses`]) — plain-data descriptions of
//!   what happened, with a hand-rolled JSON encoding ([`Event::to_json`]) so
//!   the crate works in hermetic builds without a serialization framework.
//! * **Recorders** ([`Recorder`]) — where events go. [`NullRecorder`]
//!   discards them, [`MemoryRecorder`] keeps them for tests,
//!   [`JsonlSink`] streams them to a JSON-lines file, and [`Fanout`]
//!   broadcasts to several recorders at once.
//! * **Aggregation** ([`MetricsHub`]) — a thread-safe reducer that folds the
//!   event stream into per-round wall-clock/loss summaries and a final
//!   fairness summary (mean, std, worst-10% accuracy) matching the paper's
//!   evaluation protocol.
//!
//! Every recorder is `Send + Sync`, so a single `&dyn Recorder` can be
//! captured by the closure that `calibre_fl::parallel::parallel_map_owned`
//! fans out across worker threads: per-client events are recorded from the
//! thread that ran the client.
//!
//! Below the round-level events sits a second, finer-grained layer added in
//! PR 2: **spans** ([`mod@span`]) — RAII-guarded named regions with thread-local
//! nesting — consumed by an aggregating profiler ([`profile`]) and a
//! Chrome trace-event exporter for Perfetto ([`trace`]). [`json`] is the
//! matching hand-rolled reader used by the perf-regression gate.
//!
//! PR 7 adds the *live* surface: a deterministic metrics registry
//! ([`metrics`] — counters, gauges, log₂-bucket histograms, disabled by
//! default so training stays bit-identical), a dependency-free HTTP
//! exposition server ([`export`] — `/metrics` in Prometheus text format,
//! `/status` as JSON), and [`HubSnapshot`] — the single struct that the
//! console summary, `/status`, and the `calibre-obs` CLI all render from.
//!
//! ```
//! use calibre_telemetry::{ClientLosses, MemoryRecorder, Recorder};
//! use std::time::Duration;
//!
//! let rec = MemoryRecorder::new();
//! rec.round_start(0, &[0, 1]);
//! rec.client_update(0, 1, Duration::from_millis(12),
//!                   ClientLosses { total: 1.5, ssl: 1.4, l_n: 0.06, l_p: 0.04 },
//!                   0.2);
//! rec.aggregate(0, 2, 2.0);
//! rec.round_end(0, 1.5, &[12.0, 13.5], &[1.5, 1.6], 4096, 4096);
//! assert_eq!(rec.events().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

mod event;
pub mod export;
mod hub;
pub mod json;
mod jsonl;
pub mod metrics;
pub mod profile;
mod recorder;
mod snapshot;
pub mod span;
pub mod trace;

pub use event::{ClientLosses, Event};
pub use export::MetricsServer;
pub use hub::{
    AttackSummary, CohortSummary, FairnessSummary, MetricsHub, ResilienceSummary, RoundSummary,
};
pub use json::JsonValue;
pub use jsonl::JsonlSink;
pub use profile::{ProfileCollector, ProfileReport, SpanStats};
pub use recorder::{Fanout, MemoryRecorder, NullRecorder, Recorder};
pub use snapshot::HubSnapshot;
pub use span::{
    collector_installed, install_collector, span, uninstall_collector, SpanFanout, SpanGuard,
    SpanSink,
};
pub use trace::TraceCollector;
