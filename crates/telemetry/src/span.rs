//! RAII span guards with thread-local span stacks — the tracing substrate
//! underneath the profiler ([`crate::profile`]) and the Perfetto exporter
//! ([`crate::trace`]).
//!
//! A *span* is a named region of wall-clock time. Spans nest: entering a
//! span while another is open makes it a child, so an instrumented Calibre
//! round produces paths like `round > client > ssl_forward > matmul`. Every
//! span can carry two counters (items processed, bytes moved) that
//! consumers aggregate alongside the timings.
//!
//! # Cost model
//!
//! When no collector is installed ([`install_collector`] has not run, or
//! [`uninstall_collector`] ran), [`span`] is one relaxed atomic load and the
//! returned guard's drop is a branch — the instrumented hot paths of the
//! `tensor`/`ssl`/`cluster` crates pay effectively nothing. When a collector
//! is installed, entering pushes a frame onto a thread-local stack and
//! closing pops it, computes total/self time, and hands a [`ClosedSpan`] to
//! the installed [`SpanSink`].
//!
//! # Unwinding and out-of-order drops
//!
//! Guards are index-addressed, not pointer-addressed: a guard dropped while
//! deeper spans are still open closes those children first, and a guard
//! whose frame was already closed by an ancestor is a no-op. Combined with
//! RAII this means the thread-local stack is balanced under arbitrary drop
//! orders *and* under panics caught with `std::panic::catch_unwind` — the
//! proptest suite in `tests/span_invariants.rs` drives random interleavings
//! of both.
//!
//! ```
//! use calibre_telemetry::span;
//!
//! // No collector installed: spans are free and guards are inert.
//! let outer = span::span("round");
//! {
//!     let inner = span::span("client");
//!     inner.add_items(3);
//! } // inner closes first
//! drop(outer);
//! assert_eq!(span::current_depth(), 0);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// A span that finished: name, position in the span tree, timings and
/// counters. Handed to the installed [`SpanSink`] when the span closes.
#[derive(Debug, Clone)]
pub struct ClosedSpan<'a> {
    /// Full path from the outermost open span to this one (inclusive); the
    /// last element is this span's name.
    pub path: &'a [&'static str],
    /// Start time in microseconds since the collector was installed.
    pub start_us: f64,
    /// Total wall-clock duration in microseconds.
    pub dur_us: f64,
    /// Self time: total minus time spent in child spans, in microseconds.
    pub self_us: f64,
    /// Stable id of the thread the span ran on (assigned per thread,
    /// starting at 1).
    pub tid: u64,
    /// Items-processed counter accumulated via [`SpanGuard::add_items`].
    pub items: u64,
    /// Bytes-moved counter accumulated via [`SpanGuard::add_bytes`].
    pub bytes: u64,
}

impl ClosedSpan<'_> {
    /// The span's own name (last path element).
    pub fn name(&self) -> &'static str {
        self.path.last().copied().unwrap_or("")
    }
}

/// A consumer of closed spans. Implementations must be `Send + Sync`:
/// spans close on whatever thread ran them, including the federated
/// runtime's worker threads.
pub trait SpanSink: Send + Sync {
    /// Called once per span, when it closes.
    fn span_closed(&self, span: &ClosedSpan<'_>);
}

/// Broadcasts every closed span to several sinks — used by the bench
/// harness to feed the profiler and the trace exporter from one run.
#[derive(Default)]
pub struct SpanFanout {
    sinks: Vec<Arc<dyn SpanSink>>,
}

impl SpanFanout {
    /// Creates an empty fanout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink to the broadcast set.
    pub fn with(mut self, sink: Arc<dyn SpanSink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl SpanSink for SpanFanout {
    fn span_closed(&self, span: &ClosedSpan<'_>) {
        for sink in &self.sinks {
            sink.span_closed(span);
        }
    }
}

struct Collector {
    epoch: Instant,
    sink: Arc<dyn SpanSink>,
}

/// Fast path: instrumented code checks this before touching anything else.
static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: RwLock<Option<Collector>> = RwLock::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Installs `sink` as the process-wide span collector, replacing any
/// previous one. Spans entered from this point on are reported to it.
///
/// Spans that are already open when the collector is installed will report
/// with their start clamped to the install instant.
pub fn install_collector(sink: Arc<dyn SpanSink>) {
    let mut slot = COLLECTOR.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(Collector {
        epoch: Instant::now(),
        sink,
    });
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed collector; subsequent spans are free no-ops.
/// Spans still open keep their frames and close silently.
pub fn uninstall_collector() {
    let mut slot = COLLECTOR.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Release);
    *slot = None;
}

/// Whether a collector is currently installed.
pub fn collector_installed() -> bool {
    ENABLED.load(Ordering::Acquire)
}

struct Frame {
    name: &'static str,
    start: Instant,
    child: Duration,
    items: u64,
    bytes: u64,
}

struct SpanStack {
    frames: Vec<Frame>,
    tid: u64,
}

thread_local! {
    static STACK: RefCell<SpanStack> = RefCell::new(SpanStack {
        frames: Vec::with_capacity(16),
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
    });
}

/// Depth of the current thread's open-span stack. Test hook: instrumented
/// code should always return this to its previous value.
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().frames.len())
}

/// Stable id of the current thread as used in [`ClosedSpan::tid`].
pub fn current_tid() -> u64 {
    STACK.with(|s| s.borrow().tid)
}

/// RAII guard for one open span; closing (dropping) it reports the span to
/// the installed collector. Created by [`span`]. Not `Send`: a span
/// belongs to the thread that opened it.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    /// Index of this span's frame in the thread-local stack, or `usize::MAX`
    /// for an inert guard (no collector installed at entry).
    depth: usize,
    /// Keeps the guard `!Send + !Sync`.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a span named `name`, nested under the thread's innermost open
/// span. The span closes when the returned guard drops.
///
/// With no collector installed this is one atomic load and the guard is
/// inert.
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            depth: usize::MAX,
            _not_send: std::marker::PhantomData,
        };
    }
    let depth = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.frames.push(Frame {
            name,
            start: Instant::now(),
            child: Duration::ZERO,
            items: 0,
            bytes: 0,
        });
        stack.frames.len() - 1
    });
    SpanGuard {
        depth,
        _not_send: std::marker::PhantomData,
    }
}

impl SpanGuard {
    /// Whether this guard refers to a live frame (a collector was installed
    /// when the span was entered).
    pub fn is_active(&self) -> bool {
        self.depth != usize::MAX
    }

    /// Adds to the span's items-processed counter.
    pub fn add_items(&self, n: u64) {
        if !self.is_active() {
            return;
        }
        STACK.with(|s| {
            if let Some(f) = s.borrow_mut().frames.get_mut(self.depth) {
                f.items = f.items.saturating_add(n);
            }
        });
    }

    /// Adds to the span's bytes-moved counter.
    pub fn add_bytes(&self, n: u64) {
        if !self.is_active() {
            return;
        }
        STACK.with(|s| {
            if let Some(f) = s.borrow_mut().frames.get_mut(self.depth) {
                f.bytes = f.bytes.saturating_add(n);
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == usize::MAX {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Already closed by an ancestor guard that dropped before us.
            if stack.frames.len() <= self.depth {
                return;
            }
            let collector = COLLECTOR.read().unwrap_or_else(|e| e.into_inner());
            // Close stragglers above us first (out-of-order drops), then our
            // own frame, so the stack is balanced under any drop order.
            while stack.frames.len() > self.depth {
                close_top(&mut stack, collector.as_ref());
            }
        });
    }
}

/// Pops the top frame, folds its duration into its parent's child time, and
/// reports it to `collector` (if one is installed).
fn close_top(stack: &mut SpanStack, collector: Option<&Collector>) {
    let frame = stack
        .frames
        .pop()
        // analyze:allow(no-expect) -- callers check the stack is non-empty;
        // an unbalanced close is a bug worth a loud panic in the tracer.
        .expect("close_top requires an open frame");
    let dur = frame.start.elapsed();
    if let Some(parent) = stack.frames.last_mut() {
        parent.child += dur;
    }
    let Some(collector) = collector else { return };
    let self_time = dur.saturating_sub(frame.child);
    // `saturating_duration_since`: the span may predate the collector.
    let start = frame
        .start
        .saturating_duration_since(collector.epoch)
        .as_secs_f64()
        * 1e6;
    let mut path: Vec<&'static str> = Vec::with_capacity(stack.frames.len() + 1);
    path.extend(stack.frames.iter().map(|f| f.name));
    path.push(frame.name);
    collector.sink.span_closed(&ClosedSpan {
        path: &path,
        start_us: start,
        dur_us: dur.as_secs_f64() * 1e6,
        self_us: self_time.as_secs_f64() * 1e6,
        tid: stack.tid,
        items: frame.items,
        bytes: frame.bytes,
    });
}

#[cfg(test)]
pub(crate) mod test_support {
    /// Serializes tests that install the process-wide collector.
    pub static COLLECTOR_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

#[cfg(test)]
mod tests {
    use super::test_support::COLLECTOR_LOCK;
    use super::*;
    use parking_lot::Mutex;

    /// (path, tid, items, bytes) of one closed span.
    type ClosedRecord = (Vec<&'static str>, u64, u64, u64);

    /// Records a [`ClosedRecord`] per closed span.
    #[derive(Default)]
    struct MemorySink {
        closed: Mutex<Vec<ClosedRecord>>,
    }

    impl SpanSink for MemorySink {
        fn span_closed(&self, span: &ClosedSpan<'_>) {
            assert!(span.dur_us >= span.self_us);
            self.closed
                .lock()
                .push((span.path.to_vec(), span.tid, span.items, span.bytes));
        }
    }

    #[test]
    fn spans_without_collector_are_inert() {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall_collector();
        let g = span("free");
        assert!(!g.is_active());
        g.add_items(5);
        drop(g);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn nested_spans_report_full_paths_in_close_order() {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::default());
        install_collector(sink.clone());
        {
            let outer = span("round");
            {
                let inner = span("client");
                inner.add_items(2);
                inner.add_bytes(64);
            }
            drop(outer);
        }
        uninstall_collector();
        let closed = sink.closed.lock();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].0, vec!["round", "client"]);
        assert_eq!(closed[1].0, vec!["round"]);
        assert_eq!(closed[0].2, 2);
        assert_eq!(closed[0].3, 64);
        assert_eq!(closed[0].1, closed[1].1, "same thread, same tid");
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn out_of_order_drop_closes_children_first() {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::default());
        install_collector(sink.clone());
        let a = span("a");
        let b = span("b");
        drop(a); // closes b then a
        drop(b); // frame already gone: no-op
        uninstall_collector();
        let closed = sink.closed.lock();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].0, vec!["a", "b"]);
        assert_eq!(closed[1].0, vec!["a"]);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn panics_unwind_spans_cleanly() {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::default());
        install_collector(sink.clone());
        let result = std::panic::catch_unwind(|| {
            let _outer = span("outer");
            let _inner = span("inner");
            panic!("boom");
        });
        assert!(result.is_err());
        uninstall_collector();
        assert_eq!(current_depth(), 0);
        assert_eq!(sink.closed.lock().len(), 2);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _lock = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::default());
        install_collector(sink.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span("worker");
                });
            }
        });
        uninstall_collector();
        let closed = sink.closed.lock();
        let tids: std::collections::HashSet<u64> = closed.iter().map(|c| c.1).collect();
        assert_eq!(closed.len(), 4);
        assert_eq!(tids.len(), 4, "each thread has its own tid");
    }
}
