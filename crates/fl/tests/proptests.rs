//! Property-based tests for aggregation, metrics and checkpoint invariants.

use calibre_fl::aggregate::{
    aggregate_robust, clip_norm, coordinate_median, divergence_weights, geometric_median, krum,
    sample_count_weights, trimmed_mean, uniform_average, weighted_average, weighted_average_refs,
    AggregateError, Aggregator, StreamingWeightedSink, UpdateSink,
};
use calibre_fl::chaos::{FaultInjector, FaultPlan};
use calibre_fl::checkpoint;
use calibre_fl::comm::CommReport;
use calibre_fl::model::{supervised_step, supervised_step_in, ClassifierModel, TrainScope};
use calibre_fl::{jain_index, worst_fraction_mean, Stats};
use calibre_ssl::SslConfig;
use calibre_tensor::nn::{Activation, Mlp, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, StepArena};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn weighted_average_is_within_input_hull(
        updates in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 1..6),
        weights in prop::collection::vec(0.0f32..5.0, 6),
    ) {
        let weights = &weights[..updates.len()];
        let avg = weighted_average(&updates, weights);
        for (j, v) in avg.iter().enumerate() {
            let lo = updates.iter().map(|u| u[j]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|u| u[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(*v >= lo - 1e-4 && *v <= hi + 1e-4, "coord {j}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn uniform_average_of_identical_updates_is_identity(
        update in prop::collection::vec(-10.0f32..10.0, 8),
        copies in 1usize..6,
    ) {
        let updates = vec![update.clone(); copies];
        let avg = uniform_average(&updates);
        for (a, b) in avg.iter().zip(update.iter()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn aggregation_is_permutation_invariant(
        a in prop::collection::vec(-5.0f32..5.0, 4),
        b in prop::collection::vec(-5.0f32..5.0, 4),
        c in prop::collection::vec(-5.0f32..5.0, 4),
        wa in 0.1f32..3.0, wb in 0.1f32..3.0, wc in 0.1f32..3.0,
    ) {
        let fwd = weighted_average(&[a.clone(), b.clone(), c.clone()], &[wa, wb, wc]);
        let rev = weighted_average(&[c, b, a], &[wc, wb, wa]);
        for (x, y) in fwd.iter().zip(rev.iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn divergence_weights_are_positive_and_antitone(divs in prop::collection::vec(0.0f32..10.0, 2..10)) {
        let w = divergence_weights(&divs);
        prop_assert!(w.iter().all(|&v| v > 0.0 && v.is_finite()));
        for i in 0..divs.len() {
            for j in 0..divs.len() {
                if divs[i] < divs[j] {
                    prop_assert!(w[i] >= w[j], "lower divergence must not get less weight");
                }
            }
        }
    }

    #[test]
    fn stats_mean_is_within_min_max(values in prop::collection::vec(0.0f32..1.0, 1..30)) {
        let s = Stats::from_accuracies(&values);
        prop_assert!(s.mean >= s.min - 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.std * s.std - s.variance).abs() < 1e-4);
    }

    #[test]
    fn jain_index_bounds(values in prop::collection::vec(0.01f32..1.0, 1..30)) {
        let j = jain_index(&values);
        let n = values.len() as f32;
        prop_assert!(j >= 1.0 / n - 1e-5 && j <= 1.0 + 1e-5, "jain {j} for n={n}");
    }

    #[test]
    fn worst_fraction_is_a_lower_bound_on_mean(values in prop::collection::vec(0.0f32..1.0, 1..30)) {
        let s = Stats::from_accuracies(&values);
        let w = worst_fraction_mean(&values, 0.2);
        prop_assert!(w <= s.mean + 1e-5);
    }

    #[test]
    fn checkpoint_roundtrip_any_architecture(
        hidden in 1usize..12,
        output in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut r = rng::seeded(seed);
        let original = Mlp::new(&[5, hidden, output], Activation::Relu, &mut r);
        let tensors = checkpoint::parse(&checkpoint::to_string(&original)).unwrap();
        let mut restored = Mlp::new(&[5, hidden, output], Activation::Relu, &mut r);
        checkpoint::restore(&mut restored, &tensors).unwrap();
        prop_assert_eq!(restored.to_flat(), original.to_flat());
    }

    #[test]
    fn supervised_arena_training_is_bit_identical(seed in 0u64..200, scope_idx in 0usize..3) {
        // Arena-recycled supervised steps must match the fresh-graph path
        // bit for bit under every training scope — the frozen-scope gradient
        // mask and the pooled tape are both numerically transparent.
        let scope = [TrainScope::Full, TrainScope::EncoderOnly, TrainScope::HeadOnly][scope_idx];
        let cfg = SslConfig::for_input(64);
        let mut r = rng::seeded(seed);
        let x = rng::normal_matrix(&mut r, 10, 64, 1.0);
        let y: Vec<usize> = (0..10).map(|i| i % 10).collect();
        let mut fresh = ClassifierModel::new(&cfg, 10, seed);
        let mut pooled = fresh.clone();
        let mut opt_fresh = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut opt_pooled = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut arena = StepArena::new();
        for step in 0..3 {
            let lf = supervised_step(&mut fresh, &x, &y, &mut opt_fresh, scope);
            let lp = supervised_step_in(&mut pooled, &x, &y, &mut opt_pooled, scope, &mut arena);
            prop_assert_eq!(lf.to_bits(), lp.to_bits(), "loss diverged at step {}", step);
        }
        let fresh_flat = fresh.to_flat();
        let pooled_flat = pooled.to_flat();
        prop_assert_eq!(fresh_flat.len(), pooled_flat.len());
        for (a, b) in fresh_flat.iter().zip(pooled_flat.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "params diverged: {} vs {}", a, b);
        }
    }

    #[test]
    fn comm_report_is_consistent(params in 1usize..100_000, rounds in 1usize..300, clients in 1usize..50) {
        let report = CommReport::new(params, rounds, clients);
        prop_assert_eq!(report.total, 2 * report.upload_per_round * rounds);
        prop_assert_eq!(report.upload_per_round, params * 4 * clients);
    }

    #[test]
    fn robust_weighted_average_is_bit_identical_to_legacy(
        updates in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 1..6),
        weights in prop::collection::vec(0.1f32..5.0, 6),
    ) {
        let weights = &weights[..updates.len()];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let robust = aggregate_robust(Aggregator::WeightedAverage, &refs, weights).unwrap();
        let legacy = weighted_average(&updates, weights);
        for (a, b) in robust.iter().zip(legacy.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "robust path drifted from legacy");
        }
    }

    #[test]
    fn trimmed_mean_with_zero_ratio_matches_weighted_average(
        updates in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 1..6),
        weights in prop::collection::vec(0.1f32..5.0, 6),
    ) {
        let weights = &weights[..updates.len()];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let trimmed = trimmed_mean(&refs, weights, 0.0).unwrap();
        let legacy = weighted_average(&updates, weights);
        for (a, b) in trimmed.iter().zip(legacy.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "trim(0) {a} vs mean {b}");
        }
    }

    #[test]
    fn robust_aggregators_agree_on_identical_updates(
        update in prop::collection::vec(-10.0f32..10.0, 8),
        copies in 1usize..6,
        ratio in 0.0f32..0.45,
    ) {
        // With every client reporting the same update, trimming and the
        // weighted median cannot move the aggregate. Cohorts too small to
        // survive the trim must take the typed skipped-round path instead
        // of silently averaging nothing.
        let owned = vec![update.clone(); copies];
        let refs: Vec<&[f32]> = owned.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0f32; copies];
        let med = coordinate_median(&refs, &weights).unwrap();
        // analyze:allow(lossy-cast) -- mirrors the production trim count.
        let trim = (ratio * copies as f32).ceil() as usize;
        match trimmed_mean(&refs, &weights, ratio) {
            Ok(trm) => {
                prop_assert!(trim == 0 || copies > 2 * trim, "undersized cohort was averaged");
                for (t, v) in trm.iter().zip(update.iter()) {
                    prop_assert!((t - v).abs() < 1e-5, "trimmed mean moved: {t} vs {v}");
                }
            }
            Err(AggregateError::CohortTooSmall { needed, got }) => {
                prop_assert!(trim > 0 && copies <= 2 * trim, "sufficient cohort rejected");
                prop_assert_eq!(needed, 2 * trim + 1);
                prop_assert_eq!(got, copies);
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
        for (m, v) in med.iter().zip(update.iter()) {
            prop_assert!((m - v).abs() < 1e-5, "median moved: {m} vs {v}");
        }
    }

    #[test]
    fn clip_norm_enforces_the_cap(
        mut update in prop::collection::vec(-100.0f32..100.0, 1..32),
        max_norm in 0.5f32..10.0,
    ) {
        let before: f32 = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        let clipped = clip_norm(&mut update, max_norm);
        let after: f32 = update.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!(after <= max_norm * (1.0 + 1e-4), "norm {after} above cap {max_norm}");
        prop_assert_eq!(clipped, before > max_norm, "clip flag disagrees with norms");
        if !clipped {
            prop_assert!((after - before).abs() < 1e-6, "unclipped update was modified");
        }
    }

    #[test]
    fn streaming_sink_canonical_order_is_bit_identical_to_refs(
        updates in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 1..8),
        weights in prop::collection::vec(0.1f32..5.0, 8),
    ) {
        // The bit-identity contract behind the golden checksums: folding in
        // selection-slot order through the cohort-mode sink reproduces
        // `weighted_average_refs` bit for bit.
        let weights = &weights[..updates.len()];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let expected = weighted_average_refs(&refs, weights);
        let total: f32 = weights.iter().sum();
        let mut sink = StreamingWeightedSink::for_cohort(total, updates.len());
        for (slot, (u, &w)) in updates.iter().zip(weights.iter()).enumerate() {
            sink.fold(slot, u, w).unwrap();
        }
        let got = sink.finish().unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(g.to_bits(), e.to_bits(), "streaming fold drifted from refs: {} vs {}", g, e);
        }
    }

    #[test]
    fn streaming_sink_fold_order_is_permutation_invariant(
        updates in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 2..8),
        weights in prop::collection::vec(0.1f32..5.0, 8),
        perm_seed in 0u64..1_000,
    ) {
        // Deferred-mode folds commute up to f32 rounding: any arrival order
        // lands within tolerance of the canonical order.
        use rand::Rng as _;
        let weights = &weights[..updates.len()];
        let mut canonical_sink = StreamingWeightedSink::new();
        for (slot, (u, &w)) in updates.iter().zip(weights.iter()).enumerate() {
            canonical_sink.fold(slot, u, w).unwrap();
        }
        let canonical = canonical_sink.finish().unwrap();

        let mut order: Vec<usize> = (0..updates.len()).collect();
        let mut r = rng::seeded(perm_seed);
        for i in (1..order.len()).rev() {
            let j = r.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut shuffled_sink = StreamingWeightedSink::new();
        for (slot, &i) in order.iter().enumerate() {
            shuffled_sink.fold(slot, &updates[i], weights[i]).unwrap();
        }
        let shuffled = shuffled_sink.finish().unwrap();
        for (a, b) in canonical.iter().zip(shuffled.iter()) {
            prop_assert!(
                (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs())),
                "fold order changed the aggregate beyond f32 tolerance: {} vs {} (order {:?})",
                a, b, order
            );
        }
    }

    #[test]
    fn fault_injector_replays_identically(
        plan_seed in 0u64..10_000,
        run_seed in 0u64..10_000,
        drop_prob in 0.0f32..0.6,
        corrupt_prob in 0.0f32..0.6,
        panic_prob in 0.0f32..0.6,
    ) {
        // Fault decisions are a pure function of (plan, run seed, round,
        // client, attempt): two injectors built from the same inputs must
        // agree on every cell, including the corruption bytes.
        let plan = FaultPlan {
            drop_prob,
            corrupt_prob,
            panic_prob,
            straggle_prob: 0.1,
            seed: plan_seed,
            ..FaultPlan::default()
        };
        let a = FaultInjector::for_run(plan.clone(), run_seed);
        let b = FaultInjector::for_run(plan, run_seed);
        for round in 0..4 {
            for client in 0..4 {
                for attempt in 0..3 {
                    let fa = a.decide(round, client, attempt);
                    prop_assert_eq!(fa, b.decide(round, client, attempt));
                    if let Some(calibre_fl::chaos::ClientFault::Corrupt(kind)) = fa {
                        let mut ua = vec![1.0f32; 16];
                        let mut ub = ua.clone();
                        a.corrupt(round, client, attempt, kind, &mut ua);
                        b.corrupt(round, client, attempt, kind, &mut ub);
                        let bits_a: Vec<u32> = ua.iter().map(|v| v.to_bits()).collect();
                        let bits_b: Vec<u32> = ub.iter().map(|v| v.to_bits()).collect();
                        prop_assert_eq!(bits_a, bits_b, "corruption replay diverged");
                    }
                }
            }
        }
    }

    #[test]
    fn krum_is_permutation_invariant_and_picks_an_input(
        honest in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4), 4..7),
        perm_seed in 0u64..1_000,
    ) {
        // Krum selects an input verbatim, and relabeling the cohort cannot
        // change which update (by value) wins.
        let refs: Vec<&[f32]> = honest.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0f32; refs.len()];
        let out = krum(&refs, &weights, 1).unwrap();
        prop_assert!(refs.contains(&out.as_slice()), "krum invented an update");

        let mut order: Vec<usize> = (0..refs.len()).collect();
        // Deterministic Fisher–Yates from the case seed.
        let mut s = perm_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            // analyze:allow(lossy-cast) -- test permutation index.
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let permuted: Vec<&[f32]> = order.iter().map(|&i| refs[i]).collect();
        let out_p = krum(&permuted, &weights, 1).unwrap();
        prop_assert_eq!(out, out_p, "permutation changed the krum winner");
    }

    #[test]
    fn geometric_median_is_permutation_invariant_and_in_hull(
        updates in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4), 2..6),
    ) {
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0f32; refs.len()];
        let out = geometric_median(&refs, &weights).unwrap();
        for (j, v) in out.iter().enumerate() {
            let lo = updates.iter().map(|u| u[j]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|u| u[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(*v >= lo - 1e-3 && *v <= hi + 1e-3, "coord {j}: {v} outside [{lo}, {hi}]");
        }
        let reversed: Vec<&[f32]> = refs.iter().rev().copied().collect();
        let out_r = geometric_median(&reversed, &weights).unwrap();
        for (a, b) in out.iter().zip(out_r.iter()) {
            prop_assert!((a - b).abs() < 1e-3, "permutation moved the median: {a} vs {b}");
        }
    }

    #[test]
    fn attack_injector_replays_identically(
        plan_seed in 0u64..10_000,
        run_seed in 0u64..10_000,
        flip in 0.0f32..0.5,
        scale in 0.0f32..0.5,
        noise in 0.0f32..0.5,
        collude in 0.0f32..0.5,
    ) {
        use calibre_fl::{AttackInjector, AttackPlan};
        // Attack decisions and payloads are pure functions of
        // (plan, run seed, round, client): two injectors from the same
        // inputs replay bit-identically, which is what makes the
        // in-process and socket paths agree.
        let plan = AttackPlan {
            flip_prob: flip,
            scale_prob: scale,
            noise_prob: noise,
            collude_prob: collude,
            seed: plan_seed,
            ..AttackPlan::default()
        };
        let a = AttackInjector::for_run(plan.clone(), run_seed);
        let b = AttackInjector::for_run(plan, run_seed);
        for round in 0..4 {
            for client in 0..4 {
                let ka = a.decide(round, client);
                prop_assert_eq!(ka, b.decide(round, client));
                if let Some(kind) = ka {
                    let mut ua: Vec<f32> = (0..16).map(|i| (i as f32) * 0.25 - 2.0).collect();
                    let mut ub = ua.clone();
                    a.apply(round, client, kind, &mut ua);
                    b.apply(round, client, kind, &mut ub);
                    let bits_a: Vec<u32> = ua.iter().map(|v| v.to_bits()).collect();
                    let bits_b: Vec<u32> = ub.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(bits_a, bits_b, "attack replay diverged");
                    prop_assert!(ua.iter().all(|v| v.is_finite()), "attack produced non-finite values");
                }
            }
        }
    }
}

// Whole-training chaos runs are orders of magnitude slower than the pure
// aggregation properties above, so they get their own small-case block.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn chaos_training_never_panics_and_stays_finite(seed in 0u64..1_000) {
        use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
        use calibre_fl::pfl_ssl::train_pfl_ssl_encoder;
        use calibre_fl::{FlConfig, RoundPolicy};
        use calibre_ssl::SslKind;

        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 3,
                train_per_client: 40,
                test_per_client: 10,
                unlabeled_per_client: 0,
                non_iid: NonIid::Dirichlet { alpha: 0.3 },
                seed: 11,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 10;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 1;
        cfg.batch_size = 16;
        cfg.seed = seed;
        cfg.chaos = FaultPlan {
            drop_prob: 0.3,
            corrupt_prob: 0.2,
            panic_prob: 0.1,
            straggle_prob: 0.1,
            straggle_ms: 1,
            seed,
        };
        cfg.policy = RoundPolicy {
            min_quorum: 2,
            max_retries: 2,
            ..RoundPolicy::default()
        };
        let (encoder, losses) =
            train_pfl_ssl_encoder(&fed, &cfg, SslKind::SimClr, &AugmentConfig::default());
        prop_assert_eq!(losses.len(), cfg.rounds);
        prop_assert!(losses.iter().all(|l| l.is_finite()), "loss went non-finite: {:?}", losses);
        prop_assert!(
            encoder.to_flat().iter().all(|v| v.is_finite()),
            "global encoder picked up a non-finite parameter"
        );
    }
}

#[test]
fn sample_count_weights_preserve_ratios() {
    let w = sample_count_weights(&[5, 10, 0]);
    assert_eq!(w, vec![5.0, 10.0, 0.0]);
}
