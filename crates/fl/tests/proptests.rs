//! Property-based tests for aggregation, metrics and checkpoint invariants.

use calibre_fl::aggregate::{
    divergence_weights, sample_count_weights, uniform_average, weighted_average,
};
use calibre_fl::checkpoint;
use calibre_fl::comm::CommReport;
use calibre_fl::model::{supervised_step, supervised_step_in, ClassifierModel, TrainScope};
use calibre_fl::{jain_index, worst_fraction_mean, Stats};
use calibre_ssl::SslConfig;
use calibre_tensor::nn::{Activation, Mlp, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, StepArena};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn weighted_average_is_within_input_hull(
        updates in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 1..6),
        weights in prop::collection::vec(0.0f32..5.0, 6),
    ) {
        let weights = &weights[..updates.len()];
        let avg = weighted_average(&updates, weights);
        for (j, v) in avg.iter().enumerate() {
            let lo = updates.iter().map(|u| u[j]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|u| u[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(*v >= lo - 1e-4 && *v <= hi + 1e-4, "coord {j}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn uniform_average_of_identical_updates_is_identity(
        update in prop::collection::vec(-10.0f32..10.0, 8),
        copies in 1usize..6,
    ) {
        let updates = vec![update.clone(); copies];
        let avg = uniform_average(&updates);
        for (a, b) in avg.iter().zip(update.iter()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn aggregation_is_permutation_invariant(
        a in prop::collection::vec(-5.0f32..5.0, 4),
        b in prop::collection::vec(-5.0f32..5.0, 4),
        c in prop::collection::vec(-5.0f32..5.0, 4),
        wa in 0.1f32..3.0, wb in 0.1f32..3.0, wc in 0.1f32..3.0,
    ) {
        let fwd = weighted_average(&[a.clone(), b.clone(), c.clone()], &[wa, wb, wc]);
        let rev = weighted_average(&[c, b, a], &[wc, wb, wa]);
        for (x, y) in fwd.iter().zip(rev.iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn divergence_weights_are_positive_and_antitone(divs in prop::collection::vec(0.0f32..10.0, 2..10)) {
        let w = divergence_weights(&divs);
        prop_assert!(w.iter().all(|&v| v > 0.0 && v.is_finite()));
        for i in 0..divs.len() {
            for j in 0..divs.len() {
                if divs[i] < divs[j] {
                    prop_assert!(w[i] >= w[j], "lower divergence must not get less weight");
                }
            }
        }
    }

    #[test]
    fn stats_mean_is_within_min_max(values in prop::collection::vec(0.0f32..1.0, 1..30)) {
        let s = Stats::from_accuracies(&values);
        prop_assert!(s.mean >= s.min - 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.std * s.std - s.variance).abs() < 1e-4);
    }

    #[test]
    fn jain_index_bounds(values in prop::collection::vec(0.01f32..1.0, 1..30)) {
        let j = jain_index(&values);
        let n = values.len() as f32;
        prop_assert!(j >= 1.0 / n - 1e-5 && j <= 1.0 + 1e-5, "jain {j} for n={n}");
    }

    #[test]
    fn worst_fraction_is_a_lower_bound_on_mean(values in prop::collection::vec(0.0f32..1.0, 1..30)) {
        let s = Stats::from_accuracies(&values);
        let w = worst_fraction_mean(&values, 0.2);
        prop_assert!(w <= s.mean + 1e-5);
    }

    #[test]
    fn checkpoint_roundtrip_any_architecture(
        hidden in 1usize..12,
        output in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut r = rng::seeded(seed);
        let original = Mlp::new(&[5, hidden, output], Activation::Relu, &mut r);
        let tensors = checkpoint::parse(&checkpoint::to_string(&original)).unwrap();
        let mut restored = Mlp::new(&[5, hidden, output], Activation::Relu, &mut r);
        checkpoint::restore(&mut restored, &tensors).unwrap();
        prop_assert_eq!(restored.to_flat(), original.to_flat());
    }

    #[test]
    fn supervised_arena_training_is_bit_identical(seed in 0u64..200, scope_idx in 0usize..3) {
        // Arena-recycled supervised steps must match the fresh-graph path
        // bit for bit under every training scope — the frozen-scope gradient
        // mask and the pooled tape are both numerically transparent.
        let scope = [TrainScope::Full, TrainScope::EncoderOnly, TrainScope::HeadOnly][scope_idx];
        let cfg = SslConfig::for_input(64);
        let mut r = rng::seeded(seed);
        let x = rng::normal_matrix(&mut r, 10, 64, 1.0);
        let y: Vec<usize> = (0..10).map(|i| i % 10).collect();
        let mut fresh = ClassifierModel::new(&cfg, 10, seed);
        let mut pooled = fresh.clone();
        let mut opt_fresh = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut opt_pooled = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut arena = StepArena::new();
        for step in 0..3 {
            let lf = supervised_step(&mut fresh, &x, &y, &mut opt_fresh, scope);
            let lp = supervised_step_in(&mut pooled, &x, &y, &mut opt_pooled, scope, &mut arena);
            prop_assert_eq!(lf.to_bits(), lp.to_bits(), "loss diverged at step {}", step);
        }
        let fresh_flat = fresh.to_flat();
        let pooled_flat = pooled.to_flat();
        prop_assert_eq!(fresh_flat.len(), pooled_flat.len());
        for (a, b) in fresh_flat.iter().zip(pooled_flat.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "params diverged: {} vs {}", a, b);
        }
    }

    #[test]
    fn comm_report_is_consistent(params in 1usize..100_000, rounds in 1usize..300, clients in 1usize..50) {
        let report = CommReport::new(params, rounds, clients);
        prop_assert_eq!(report.total, 2 * report.upload_per_round * rounds);
        prop_assert_eq!(report.upload_per_round, params * 4 * clients);
    }
}

#[test]
fn sample_count_weights_preserve_ratios() {
    let w = sample_count_weights(&[5, 10, 0]);
    assert_eq!(w, vec![5.0, 10.0, 0.0]);
}
