//! Property tests: wire-frame decoding never panics. A `calibre-serve`
//! process reads frames from untrusted sockets — junk bytes, truncated
//! frames, and bit flips must all surface as typed [`WireError`]s, never
//! aborts or unbounded allocations.
#![recursion_limit = "1024"]

use calibre_fl::proto::{Msg, WireError, MAX_PAYLOAD_BYTES, PROTO_VERSION};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Arbitrary byte soup: decode returns a typed error or a valid
    // message — it must never panic, and never allocate anywhere near the
    // claimed length of a lying header.
    #[test]
    fn decode_never_panics_on_junk(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Msg::decode(&bytes);
    }

    // Byte soup that *starts like a real frame* (good version byte, valid
    // tag) exercises the deeper payload parsing paths.
    #[test]
    fn decode_never_panics_on_framed_junk(
        tag in 1u8..=6,
        body in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut bytes = vec![PROTO_VERSION, tag];
        let len = (body.len() as u32).to_le_bytes();
        bytes.extend_from_slice(&len);
        bytes.extend_from_slice(&body);
        let _ = Msg::decode(&bytes);
    }

    // Every strict prefix of a valid frame is a typed `Truncated`/`Io`
    // error — the failure mode of a torn read or a dropped connection.
    #[test]
    fn every_truncation_of_a_valid_frame_is_a_typed_error(
        round in 0u32..1000,
        slot in 0u32..64,
        model in prop::collection::vec(any::<f32>(), 0..32),
        keep in 0usize..400,
    ) {
        let frame = Msg::Assign { round, slot, attempt: 0, model }.encode();
        let keep = keep % frame.len(); // always a strict prefix
        match Msg::decode(&frame[..keep]) {
            Err(WireError::Truncated { .. } | WireError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "prefix decoded as a full frame"),
        }
    }

    // Flipping any byte of a valid frame is detected: the checksum (or an
    // earlier structural check) rejects it. A flip inside the length field
    // may also read as truncation — but never as silent acceptance of
    // different bytes.
    #[test]
    fn single_byte_corruption_is_always_detected(
        client in 0u64..1000,
        weight in -10.0f32..10.0,
        update in prop::collection::vec(-1.0f32..1.0, 1..16),
        flip_at in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let original = Msg::Update { round: 3, slot: 1, client, weight, loss: 0.5, update };
        let mut bytes = original.encode();
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        // Err is the expected outcome (typed rejection); an Ok decode is
        // only acceptable when the flip was somehow a no-op semantically.
        if let Ok((decoded, _)) = Msg::decode(&bytes) {
            prop_assert!(
                decoded == original,
                "corrupted frame decoded as different message"
            );
        }
    }

    // A header claiming an oversized payload is rejected up front, without
    // waiting for (or allocating) the claimed bytes.
    #[test]
    fn oversize_claims_are_rejected_before_allocation(extra in 1u32..1_000_000) {
        let len = MAX_PAYLOAD_BYTES.saturating_add(extra);
        let mut bytes = vec![PROTO_VERSION, 3];
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        prop_assert!(matches!(Msg::decode(&bytes), Err(WireError::Oversize(_))));
    }

    // Well-formed messages always round-trip bit-exactly, including
    // non-finite floats.
    #[test]
    fn roundtrip_is_bit_exact(
        round in 0u32..10_000,
        slot in 0u32..10_000,
        client in any::<u64>(),
        weight in any::<f32>(),
        loss in any::<f32>(),
        update in prop::collection::vec(any::<f32>(), 0..64),
    ) {
        let msg = Msg::Update { round, slot, client, weight, loss, update };
        let bytes = msg.encode();
        let (decoded, consumed) = Msg::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len());
        // Compare re-encodings, not messages: NaN payloads must round-trip
        // bit-exactly, and `f32::eq` would call NaN != NaN.
        prop_assert_eq!(decoded.encode(), bytes, "round trip changed the bytes");
    }
}
