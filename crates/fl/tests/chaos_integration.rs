//! End-to-end acceptance test for the chaos layer: a seeded run with heavy
//! dropout, corruption and at least one injected mid-update panic must
//! complete every round with finite losses, and the telemetry stream must
//! account for the injected faults.

use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::chaos::{ClientFault, FaultInjector, FaultPlan};
use calibre_fl::pfl_ssl::train_pfl_ssl_encoder_observed;
use calibre_fl::{FlConfig, RoundPolicy};
use calibre_ssl::SslKind;
use calibre_telemetry::{Event, MemoryRecorder, MetricsHub, Recorder};
use calibre_tensor::nn::Module;

fn tiny_fed() -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 3,
            train_per_client: 40,
            test_per_client: 10,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 11,
        },
    )
}

fn chaos_config(seed: u64) -> FlConfig {
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 8;
    cfg.clients_per_round = 3;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.seed = seed;
    cfg.chaos = FaultPlan {
        drop_prob: 0.3,
        corrupt_prob: 0.1,
        panic_prob: 0.15,
        straggle_prob: 0.0,
        seed,
        ..FaultPlan::default()
    };
    cfg.policy = RoundPolicy {
        min_quorum: 2,
        max_retries: 2,
        ..RoundPolicy::default()
    };
    cfg
}

/// Counts the faults the injector will fire at attempt 0 over the whole
/// schedule, as `(dropouts, panics, corruptions)`.
fn first_attempt_faults(cfg: &FlConfig, num_clients: usize) -> (usize, usize, usize) {
    let injector = FaultInjector::for_run(cfg.chaos.clone(), cfg.seed);
    let (mut drops, mut panics, mut corrupts) = (0, 0, 0);
    for (round, selected) in cfg.selection_schedule(num_clients).iter().enumerate() {
        for &client in selected {
            match injector.decide(round, client, 0) {
                Some(ClientFault::Dropout) => drops += 1,
                Some(ClientFault::PanicMidUpdate) => panics += 1,
                Some(ClientFault::Corrupt(_)) => corrupts += 1,
                _ => {}
            }
        }
    }
    (drops, panics, corrupts)
}

#[test]
fn heavy_chaos_run_completes_and_accounts_for_every_fault() {
    let fed = tiny_fed();

    // Pre-scan seeds so the run provably exercises all three fault kinds:
    // at least one dropout, one mid-update panic and one corrupted update.
    let cfg = (0u64..200)
        .map(chaos_config)
        .find(|cfg| {
            let (d, p, c) = first_attempt_faults(cfg, fed.num_clients());
            d >= 1 && p >= 1 && c >= 1
        })
        .expect("no seed in 0..200 fires all three fault kinds");
    let (drops, panics, corrupts) = first_attempt_faults(&cfg, fed.num_clients());
    let scanned = drops + panics + corrupts;

    let memory = MemoryRecorder::new();
    let (encoder, losses) = train_pfl_ssl_encoder_observed(
        &fed,
        &cfg,
        SslKind::SimClr,
        &AugmentConfig::default(),
        None,
        &memory,
    );

    // The run survived: every round produced a finite loss and the global
    // encoder never absorbed a corrupted update.
    assert_eq!(losses.len(), cfg.rounds, "a round went missing");
    assert!(
        losses.iter().all(|l| l.is_finite()),
        "chaos leaked a non-finite loss: {losses:?}"
    );
    assert!(
        encoder.to_flat().iter().all(|v| v.is_finite()),
        "global encoder picked up a non-finite parameter"
    );

    // The telemetry stream names every fault kind the pre-scan predicted.
    let events = memory.events();
    let fault_kinds: Vec<&'static str> = events
        .iter()
        .filter_map(|e| match e {
            Event::Fault { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert!(
        fault_kinds.contains(&"dropout"),
        "no dropout surfaced in telemetry: {fault_kinds:?}"
    );
    assert!(
        fault_kinds.contains(&"panic"),
        "no injected panic surfaced in telemetry: {fault_kinds:?}"
    );
    assert!(
        fault_kinds.iter().any(|k| k.starts_with("corrupt")),
        "no corruption surfaced in telemetry: {fault_kinds:?}"
    );
    assert!(
        fault_kinds.len() >= scanned,
        "telemetry reports fewer faults ({}) than the attempt-0 scan predicted ({scanned})",
        fault_kinds.len()
    );

    // Folding the same stream through the hub reproduces the totals.
    let hub = MetricsHub::new();
    for event in events {
        hub.record(event);
    }
    let summary = hub.resilience_summary();
    assert_eq!(summary.faults_injected, fault_kinds.len());
    assert!(
        summary.faults_detected >= drops + panics,
        "dropouts and caught panics must all count as detected"
    );
    if let Some(q) = summary.min_quorum_seen {
        assert!(
            q >= cfg.policy.min_quorum,
            "aggregated below the configured quorum"
        );
    }
}

#[test]
fn ten_thousand_client_streaming_round_accounts_for_every_client() {
    // The massive-cohort acceptance test: sampling + dropout + corruption +
    // quorum at a 10k-client simulated cohort. Every round must complete,
    // every selected client must land in exactly one of
    // accepted/dropped/rejected, and the whole run must replay
    // bit-identically from the same seeds.
    use calibre_fl::aggregate::StreamingWeightedSink;
    use calibre_fl::sampler::{Sampler, SamplerKind};
    use calibre_fl::scheduler::RoundScheduler;

    let run = || {
        let scheduler =
            RoundScheduler::sampled(Sampler::new(SamplerKind::Uniform, 13), 20_000, 10_000, 3)
                .with_chaos(
                    FaultPlan {
                        drop_prob: 0.15,
                        corrupt_prob: 0.05,
                        seed: 13,
                        ..FaultPlan::default()
                    },
                    13,
                )
                .with_policy(RoundPolicy {
                    min_quorum: 100,
                    ..RoundPolicy::default()
                });

        let memory = MemoryRecorder::new();
        let mut counts = Vec::new();
        let mut aggregates = Vec::new();
        for round in 0..scheduler.rounds() {
            let selected = scheduler.select(round, None);
            assert_eq!(selected.len(), 10_000, "sampler under-filled the cohort");
            let mut sink = StreamingWeightedSink::new();
            let out = scheduler.run_round_streaming(
                round,
                &selected,
                64,
                &mut sink,
                |id| (vec![(id % 7) as f32, 1.0, -0.5], 1.0),
                &memory,
            );
            assert_eq!(
                out.accepted + out.dropped + out.rejected,
                out.cohort,
                "round {round}: a client went unaccounted for"
            );
            assert!(out.dropped > 0, "15% dropout over 10k clients must fire");
            assert!(!out.skipped, "10k-client round cannot miss a quorum of 100");
            let agg = out.aggregated.expect("unskipped round must aggregate");
            assert!(agg.iter().all(|v| v.is_finite()));
            counts.push((out.accepted, out.dropped, out.rejected));
            aggregates.push(agg);
        }

        // Lean telemetry: one aggregate event per round, resilience
        // accounting only because churn occurred.
        let events = memory.events();
        let agg_events = events
            .iter()
            .filter(|e| matches!(e, Event::Aggregate { .. }))
            .count();
        assert_eq!(agg_events, scheduler.rounds());
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::RoundResilience { .. })));
        (counts, aggregates)
    };

    let (counts_a, agg_a) = run();
    let (counts_b, agg_b) = run();
    assert_eq!(
        counts_a, counts_b,
        "churn accounting must replay identically"
    );
    assert_eq!(
        agg_a, agg_b,
        "streamed aggregate must replay bit-identically"
    );
}

#[test]
fn chaos_free_config_reports_an_all_zero_summary() {
    // The inactive default plan must not emit a single resilience event —
    // this is the observable half of the bit-identity guarantee.
    let fed = tiny_fed();
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 2;
    cfg.clients_per_round = 2;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    assert!(!cfg.chaos.is_active());

    let memory = MemoryRecorder::new();
    train_pfl_ssl_encoder_observed(
        &fed,
        &cfg,
        SslKind::SimClr,
        &AugmentConfig::default(),
        None,
        &memory,
    );
    let events = memory.events();
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, Event::Fault { .. } | Event::RoundResilience { .. })),
        "nominal run emitted resilience telemetry"
    );
    let hub = MetricsHub::new();
    for event in events {
        hub.record(event);
    }
    assert_eq!(
        hub.resilience_summary(),
        calibre_telemetry::ResilienceSummary::default()
    );
}
