//! The golden cross-transport identity tests: the same serve config must
//! produce a byte-identical final model whether the rounds run in-process
//! or over a real loopback socket — including under wire chaos, as long as
//! quorum is still met every round.

use std::thread;

use calibre_fl::adversary::AttackPlan;
use calibre_fl::chaos::WireFaultPlan;
use calibre_fl::serve::{run_in_process, run_server, sim_client_work, ServeConfig, ServeOutcome};
use calibre_fl::transport::{run_client, ClientAddr, ClientOptions, Listener};
use calibre_telemetry::NullRecorder;

/// Runs the smoke config over a loopback TCP socket with the full client
/// population attached, returning the server's outcome and every client's
/// view of the final checksum.
fn serve_over_loopback(cfg: &ServeConfig) -> (ServeOutcome, Vec<u64>) {
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr();
    let seed = cfg.seed;
    let population = cfg.population;

    let clients: Vec<_> = (0..population)
        .map(|client| {
            let addr = ClientAddr::Tcp(addr.clone());
            thread::spawn(move || {
                run_client(
                    &addr,
                    client as u64,
                    &ClientOptions::default(),
                    sim_client_work(seed, client),
                )
            })
        })
        .collect();

    let outcome = run_server(cfg, listener, &NullRecorder).expect("server run");
    let mut seen = Vec::new();
    for handle in clients {
        let report = handle
            .join()
            .expect("client thread")
            .expect("client lifecycle");
        assert_eq!(report.rounds as usize, outcome.rounds_run);
        seen.push(report.final_checksum);
    }
    (outcome, seen)
}

#[test]
fn loopback_socket_matches_in_process_bitwise() {
    let cfg = ServeConfig::smoke();
    let golden = run_in_process(&cfg, &NullRecorder).expect("in-process run");
    let (socket, client_checksums) = serve_over_loopback(&cfg);

    assert_eq!(
        socket.model, golden.model,
        "final model must be bit-identical"
    );
    assert_eq!(socket.checksum, golden.checksum);
    assert_eq!(socket.accepted_total, golden.accepted_total);
    assert_eq!(socket.skipped_rounds, 0, "smoke config must meet quorum");
    for checksum in client_checksums {
        assert_eq!(
            checksum, golden.checksum,
            "Finish broadcast the fingerprint"
        );
    }
}

#[test]
fn loopback_socket_under_wire_chaos_still_matches_in_process() {
    let mut cfg = ServeConfig::smoke();
    cfg.wire = WireFaultPlan::parse(
        "net-drop=0.25,net-delay=0.2,net-delay-ms=5,net-truncate=0.1,net-churn=0.2",
    )
    .expect("wire spec");
    // Wire faults are transport-recoverable: the golden twin runs with no
    // wire plan at all, and the socket path must still land on its bytes.
    let golden = run_in_process(&ServeConfig::smoke(), &NullRecorder).expect("in-process run");
    let (socket, client_checksums) = serve_over_loopback(&cfg);

    assert_eq!(
        socket.model, golden.model,
        "recoverable wire chaos must not change the aggregate"
    );
    assert_eq!(socket.checksum, golden.checksum);
    assert_eq!(socket.skipped_rounds, 0, "quorum must still be met");
    for checksum in client_checksums {
        assert_eq!(checksum, golden.checksum);
    }
}

/// The Byzantine layer composes with wire chaos: a seeded attack plan is
/// applied server-side by the scheduler, so the attacked socket run must
/// land bit-identically on the attacked in-process run — while both differ
/// from the clean golden model.
#[test]
fn loopback_socket_under_attack_and_wire_chaos_matches_attacked_in_process() {
    let mut cfg = ServeConfig::smoke();
    cfg.attack =
        AttackPlan::parse("flip=0.2,scale=8:0.15,noise=0.15,seed=11").expect("attack spec");
    cfg.detect = true;
    cfg.wire = WireFaultPlan::parse(
        "net-drop=0.25,net-delay=0.2,net-delay-ms=5,net-truncate=0.1,net-churn=0.2",
    )
    .expect("wire spec");

    let mut twin = cfg.clone();
    twin.wire = WireFaultPlan::default();
    let attacked = run_in_process(&twin, &NullRecorder).expect("attacked in-process run");
    let clean = run_in_process(&ServeConfig::smoke(), &NullRecorder).expect("clean run");
    assert_ne!(
        attacked.model, clean.model,
        "these attack rates over 3 rounds x cohort 3 must hit someone"
    );

    let (socket, client_checksums) = serve_over_loopback(&cfg);
    assert_eq!(
        socket.model, attacked.model,
        "seeded attacks must replay bit-identically across transports"
    );
    assert_eq!(socket.checksum, attacked.checksum);
    for checksum in client_checksums {
        assert_eq!(checksum, attacked.checksum);
    }
}

/// An inactive attack plan plus an empty reputation book must leave the
/// serve path byte-identical to a build that never heard of adversaries —
/// the no-`--attack` golden contract.
#[test]
fn inactive_attack_plan_keeps_the_golden_checksum() {
    let mut cfg = ServeConfig::smoke();
    cfg.attack = AttackPlan::default();
    cfg.detect = false;
    let armed = run_in_process(&cfg, &NullRecorder).expect("armed-but-inactive run");
    let golden = run_in_process(&ServeConfig::smoke(), &NullRecorder).expect("golden run");
    assert_eq!(armed.model, golden.model);
    assert_eq!(armed.checksum, golden.checksum);
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_matches_in_process_bitwise() {
    let dir = std::env::temp_dir().join(format!("calibre-uds-identity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("serve.sock");
    let _ = std::fs::remove_file(&path);

    let cfg = ServeConfig::smoke();
    let golden = run_in_process(&cfg, &NullRecorder).expect("in-process run");

    let listener = Listener::bind_uds(&path).expect("bind uds");
    let seed = cfg.seed;
    let clients: Vec<_> = (0..cfg.population)
        .map(|client| {
            let addr = ClientAddr::Uds(path.clone());
            thread::spawn(move || {
                run_client(
                    &addr,
                    client as u64,
                    &ClientOptions::default(),
                    sim_client_work(seed, client),
                )
            })
        })
        .collect();
    let outcome = run_server(&cfg, listener, &NullRecorder).expect("server run");
    for handle in clients {
        handle
            .join()
            .expect("client thread")
            .expect("client lifecycle");
    }
    assert_eq!(outcome.model, golden.model);
    assert_eq!(outcome.checksum, golden.checksum);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
