//! The personalization stage (paper §III-B, second stage).
//!
//! Every client — including novel clients that never trained — downloads the
//! global encoder, extracts features from its local labeled data, trains a
//! linear head for 10 epochs (SGD, lr 0.05, batch 32) and reports test
//! accuracy. This module runs that stage for a whole cohort in parallel and
//! summarizes the outcome with the paper's mean/variance metrics.

use crate::metrics::Stats;
use crate::parallel::parallel_map;
use calibre_data::FederatedDataset;
use calibre_ssl::{probe_accuracy, train_linear_probe, ProbeConfig};
use calibre_telemetry::{NullRecorder, Recorder};
use calibre_tensor::nn::Mlp;

/// Outcome of personalizing a cohort of clients.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizationOutcome {
    /// Per-client test accuracy, in client order.
    pub accuracies: Vec<f32>,
    /// Mean/variance summary (the paper's two reported numbers).
    pub stats: Stats,
}

impl PersonalizationOutcome {
    /// Builds the outcome from raw per-client accuracies.
    pub fn from_accuracies(accuracies: Vec<f32>) -> Self {
        let stats = Stats::from_accuracies(&accuracies);
        PersonalizationOutcome { accuracies, stats }
    }
}

/// Runs the personalization stage for every client in `fed` using a frozen
/// global `encoder`: per-client feature extraction → linear probe → test
/// accuracy.
pub fn personalize_cohort(
    encoder: &Mlp,
    fed: &FederatedDataset,
    num_classes: usize,
    probe: &ProbeConfig,
) -> PersonalizationOutcome {
    personalize_cohort_observed(encoder, fed, num_classes, probe, &NullRecorder)
}

/// Like [`personalize_cohort`], additionally reporting one `personalize`
/// event per client (in client order) to a telemetry [`Recorder`].
pub fn personalize_cohort_observed(
    encoder: &Mlp,
    fed: &FederatedDataset,
    num_classes: usize,
    probe: &ProbeConfig,
    recorder: &dyn Recorder,
) -> PersonalizationOutcome {
    let span = calibre_telemetry::span("personalize");
    span.add_items(fed.num_clients() as u64);
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let data = fed.client(id);
        if data.train.is_empty() || data.test.is_empty() {
            return 0.0;
        }
        let train_x = encoder.infer(&fed.generator().render_batch(data.train.iter()));
        let test_x = encoder.infer(&fed.generator().render_batch(data.test.iter()));
        let mut client_probe = *probe;
        client_probe.seed = probe.seed ^ (id as u64).wrapping_mul(0x9E37_79B9);
        let head = train_linear_probe(&train_x, &data.train_labels(), num_classes, &client_probe);
        probe_accuracy(&head, &test_x, &data.test_labels())
    });
    for (&id, &accuracy) in ids.iter().zip(&accuracies) {
        recorder.personalize(id, accuracy);
    }
    PersonalizationOutcome::from_accuracies(accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};
    use calibre_tensor::nn::Activation;
    use calibre_tensor::rng;

    fn fed(seed: u64) -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 60,
                test_per_client: 30,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed,
            },
        )
    }

    #[test]
    fn personalization_beats_chance_even_with_random_encoder() {
        // A random (untrained) encoder is still a random features map; a
        // linear probe on 2-class clients should beat the 10-class chance
        // level comfortably.
        let fed = fed(1);
        let mut r = rng::seeded(0);
        let encoder = Mlp::new(&[64, 96, 32], Activation::Relu, &mut r);
        let outcome = personalize_cohort(&encoder, &fed, 10, &ProbeConfig::default());
        assert_eq!(outcome.accuracies.len(), 4);
        assert!(
            outcome.stats.mean > 0.5,
            "2-way probes on random features should beat 0.5, got {}",
            outcome.stats.mean
        );
    }

    #[test]
    fn outcome_stats_match_accuracies() {
        let outcome = PersonalizationOutcome::from_accuracies(vec![0.5, 0.7]);
        assert!((outcome.stats.mean - 0.6).abs() < 1e-6);
        assert_eq!(outcome.stats.count, 2);
    }

    #[test]
    fn personalization_is_deterministic() {
        let fed = fed(2);
        let mut r = rng::seeded(0);
        let encoder = Mlp::new(&[64, 96, 32], Activation::Relu, &mut r);
        let a = personalize_cohort(&encoder, &fed, 10, &ProbeConfig::default());
        let b = personalize_cohort(&encoder, &fed, 10, &ProbeConfig::default());
        assert_eq!(a.accuracies, b.accuracies);
    }
}
