//! The supervised classifier model (encoder + linear head) and its local
//! training loops — shared by every label-based baseline.
//!
//! Architecture matches the paper's discipline: the encoder is identical to
//! the SSL encoder (`SslConfig::encoder_layer_dims`), and the head is a
//! single linear layer ("the fully-connected layers of both networks are
//! substituted with a linear classifier", §V-A).

use calibre_data::batch::batches;
use calibre_data::{ClientData, SynthVision};
use calibre_ssl::SslConfig;
use calibre_tensor::nn::{Activation, Binding, Linear, Mlp, Module};
use calibre_tensor::optim::Sgd;
use calibre_tensor::pool::report_arena_stats;
use calibre_tensor::{rng, Matrix, StepArena};
use rand::Rng;

/// Encoder + linear head classifier.
#[derive(Debug, Clone)]
pub struct ClassifierModel {
    encoder: Mlp,
    head: Linear,
}

impl ClassifierModel {
    /// Creates a classifier with the workspace-standard architecture for
    /// `num_classes` outputs (deterministic in `seed`).
    pub fn new(ssl_config: &SslConfig, num_classes: usize, seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        let encoder = Mlp::new(&ssl_config.encoder_layer_dims(), Activation::Relu, &mut r);
        let head = Linear::new(ssl_config.repr_dim(), num_classes, &mut r);
        ClassifierModel { encoder, head }
    }

    /// The encoder backbone.
    pub fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    /// Mutable encoder access.
    pub fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    /// The linear head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// Mutable head access.
    pub fn head_mut(&mut self) -> &mut Linear {
        &mut self.head
    }

    /// Replaces the head.
    pub fn set_head(&mut self, head: Linear) {
        self.head = head;
    }

    /// Logits for a batch of observations (inference path).
    pub fn infer(&self, observations: &Matrix) -> Matrix {
        self.head.infer(&self.encoder.infer(observations))
    }

    /// Classification accuracy on a client's rendered test set.
    pub fn test_accuracy(&self, data: &ClientData, generator: &SynthVision) -> f32 {
        if data.test.is_empty() {
            return 0.0;
        }
        let x = generator.render_batch(data.test.iter());
        let labels = data.test_labels();
        let logits = self.infer(&x);
        let correct = (0..logits.rows())
            .filter(|&r| argmax(logits.row(r)) == labels[r])
            .count();
        correct as f32 / labels.len() as f32
    }
}

impl Module for ClassifierModel {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.encoder.parameters();
        p.extend(self.head.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.encoder.parameters_mut();
        p.extend(self.head.parameters_mut());
        p
    }
}

/// Index of the largest value in a slice.
pub fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        // analyze:allow(no-expect) -- documented contract: argmax of an
        // empty slice has no answer, and every caller passes a logits row.
        .expect("non-empty slice")
}

/// Which parts of a [`ClassifierModel`] a local update trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainScope {
    /// Encoder and head jointly (FedAvg, FedPer, LG-FedAvg, Script).
    Full,
    /// Encoder only, head frozen (FedBABU; FedRep's encoder phase).
    EncoderOnly,
    /// Head only, encoder frozen (FedRep's head phase; fine-tuning).
    HeadOnly,
}

/// Runs `epochs` of supervised cross-entropy training on a client's local
/// training split. Returns the mean loss of the final epoch.
///
/// The `scope` selects which parameters receive gradients; frozen parts
/// still participate in the forward pass.
#[allow(clippy::too_many_arguments)] // mirrors the paper's local-update signature
pub fn train_supervised<R: Rng + ?Sized>(
    model: &mut ClassifierModel,
    data: &ClientData,
    generator: &SynthVision,
    epochs: usize,
    batch_size: usize,
    opt: &mut Sgd,
    scope: TrainScope,
    rng_: &mut R,
) -> f32 {
    if data.train.is_empty() {
        return 0.0;
    }
    let labels = data.train_labels();
    let mut last_epoch_loss = 0.0;
    let mut arena = StepArena::new();
    for _ in 0..epochs {
        let mut epoch_loss = 0.0;
        let mut batches_seen = 0;
        for batch in batches(data.train.len(), batch_size, false, rng_) {
            let samples: Vec<_> = batch.iter().map(|&i| &data.train[i]).collect();
            let x = generator.render_batch(samples.iter().copied());
            let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            epoch_loss += supervised_step_in(model, &x, &y, opt, scope, &mut arena);
            batches_seen += 1;
        }
        last_epoch_loss = epoch_loss / batches_seen.max(1) as f32;
    }
    report_arena_stats(&arena);
    last_epoch_loss
}

/// One supervised gradient step on a rendered batch. Returns the loss.
/// Allocates a fresh tape; step loops should prefer [`supervised_step_in`]
/// with a reused [`StepArena`].
pub fn supervised_step(
    model: &mut ClassifierModel,
    x: &Matrix,
    y: &[usize],
    opt: &mut Sgd,
    scope: TrainScope,
) -> f32 {
    let mut arena = StepArena::new();
    supervised_step_in(model, x, y, opt, scope, &mut arena)
}

/// Like [`supervised_step`], building the loss graph on the arena's recycled
/// tape. The frozen scope is expressed as a gradient mask to the optimizer
/// (frozen parameters behave exactly as if their gradients were zero, so
/// momentum/weight-decay bookkeeping is unchanged). Bit-identical to
/// [`supervised_step`].
pub fn supervised_step_in(
    model: &mut ClassifierModel,
    x: &Matrix,
    y: &[usize],
    opt: &mut Sgd,
    scope: TrainScope,
    arena: &mut StepArena,
) -> f32 {
    let mut g = arena.take();
    let xn = g.constant_from(x);
    let mut binding = Binding::new();
    let feats = model.encoder.forward(&mut g, xn, &mut binding);
    let logits = model.head.forward(&mut g, feats, &mut binding);
    let loss = g.cross_entropy(logits, y);
    let loss_value = g.value(loss).get(0, 0);
    g.backward(loss);
    let encoder_params = model.encoder.parameters().len();
    let frozen = |i: usize| match scope {
        TrainScope::Full => false,
        TrainScope::EncoderOnly => i >= encoder_params,
        TrainScope::HeadOnly => i < encoder_params,
    };
    opt.step_graph_masked(model, &g, &binding, frozen);
    arena.put(g);
    loss_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
    use calibre_tensor::optim::SgdConfig;

    fn small_fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 2,
                train_per_client: 60,
                test_per_client: 30,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 3,
                },
                seed: 1,
            },
        )
    }

    #[test]
    fn supervised_training_improves_accuracy() {
        let fed = small_fed();
        let cfg = SslConfig::for_input(64);
        let mut model = ClassifierModel::new(&cfg, 10, 0);
        let data = fed.client(0);
        let before = model.test_accuracy(data, fed.generator());
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let mut r = rng::seeded(2);
        train_supervised(
            &mut model,
            data,
            fed.generator(),
            15,
            16,
            &mut opt,
            TrainScope::Full,
            &mut r,
        );
        let after = model.test_accuracy(data, fed.generator());
        assert!(
            after > before + 0.2,
            "accuracy should improve substantially: {before} -> {after}"
        );
    }

    #[test]
    fn encoder_only_scope_freezes_head() {
        let fed = small_fed();
        let cfg = SslConfig::for_input(64);
        let mut model = ClassifierModel::new(&cfg, 10, 0);
        let head_before = model.head().to_flat();
        let enc_before = model.encoder().to_flat();
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let mut r = rng::seeded(3);
        train_supervised(
            &mut model,
            fed.client(0),
            fed.generator(),
            1,
            16,
            &mut opt,
            TrainScope::EncoderOnly,
            &mut r,
        );
        assert_eq!(model.head().to_flat(), head_before, "head must stay frozen");
        assert_ne!(model.encoder().to_flat(), enc_before, "encoder must train");
    }

    #[test]
    fn head_only_scope_freezes_encoder() {
        let fed = small_fed();
        let cfg = SslConfig::for_input(64);
        let mut model = ClassifierModel::new(&cfg, 10, 0);
        let head_before = model.head().to_flat();
        let enc_before = model.encoder().to_flat();
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let mut r = rng::seeded(4);
        train_supervised(
            &mut model,
            fed.client(0),
            fed.generator(),
            1,
            16,
            &mut opt,
            TrainScope::HeadOnly,
            &mut r,
        );
        assert_ne!(model.head().to_flat(), head_before, "head must train");
        assert_eq!(
            model.encoder().to_flat(),
            enc_before,
            "encoder must stay frozen"
        );
    }

    #[test]
    fn flat_roundtrip_covers_encoder_and_head() {
        let cfg = SslConfig::for_input(64);
        let model = ClassifierModel::new(&cfg, 10, 0);
        let mut other = ClassifierModel::new(&cfg, 10, 99);
        assert_ne!(model.to_flat(), other.to_flat());
        other.load_flat(&model.to_flat());
        assert_eq!(model.to_flat(), other.to_flat());
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[-3.0]), 0);
    }
}
