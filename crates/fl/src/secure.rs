//! Secure-aggregation simulation: pairwise additive masking.
//!
//! In the Bonawitz et al. (CCS 2017) protocol, every pair of clients agrees
//! on a shared random mask; one adds it, the other subtracts it, so the
//! server's *sum* is exact while any individual masked update is
//! statistically indistinguishable from noise. This module simulates that
//! arithmetic (key agreement is out of scope — pair seeds are derived from
//! a shared round seed), which is enough to verify that the aggregation
//! paths of this workspace are compatible with masked inputs: FedAvg-style
//! averaging only ever needs the weighted sum.

use calibre_tensor::rng;

/// Derives the mask shared by the client pair `(a, b)` for a round.
fn pair_mask(round_seed: u64, a: usize, b: usize, dim: usize) -> Vec<f32> {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let seed = round_seed
        ^ (lo as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (hi as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    rng::normal_vec(&mut rng::seeded(seed), dim)
}

/// Masks one client's update with the pairwise masks of its cohort.
///
/// `client` must be a member of `cohort`; all cohort members must call this
/// with the same `round_seed` and cohort for the masks to cancel.
///
/// # Panics
///
/// Panics if `client` is not in `cohort` or appears more than once.
pub fn mask_update(update: &[f32], client: usize, cohort: &[usize], round_seed: u64) -> Vec<f32> {
    let occurrences = cohort.iter().filter(|&&c| c == client).count();
    assert_eq!(
        occurrences, 1,
        "client {client} must appear exactly once in the cohort"
    );
    let mut masked = update.to_vec();
    for &other in cohort {
        if other == client {
            continue;
        }
        let mask = pair_mask(round_seed, client, other, update.len());
        // The lower id adds, the higher id subtracts: antisymmetric, so the
        // pair's contributions cancel in the sum.
        let sign = if client < other { 1.0 } else { -1.0 };
        for (m, &v) in masked.iter_mut().zip(&mask) {
            *m += sign * v;
        }
    }
    masked
}

/// Sums masked updates — the only operation the server can perform.
///
/// If every cohort member contributed exactly once, the pairwise masks
/// cancel and the result equals the sum of the plaintext updates.
///
/// # Panics
///
/// Panics if `updates` is empty or lengths differ.
pub fn aggregate_masked(updates: &[Vec<f32>]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero masked updates");
    let dim = updates[0].len();
    let mut sum = vec![0.0f32; dim];
    for u in updates {
        assert_eq!(u.len(), dim, "masked update length mismatch");
        for (s, &v) in sum.iter_mut().zip(u) {
            *s += v;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_sum(updates: &[Vec<f32>]) -> Vec<f32> {
        let mut sum = vec![0.0f32; updates[0].len()];
        for u in updates {
            for (s, &v) in sum.iter_mut().zip(u) {
                *s += v;
            }
        }
        sum
    }

    #[test]
    fn masks_cancel_in_the_sum() {
        let cohort = vec![3usize, 7, 11, 20];
        let dim = 64;
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(c as u64), dim))
            .collect();
        let masked: Vec<Vec<f32>> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| mask_update(u, c, &cohort, 99))
            .collect();
        let secure = aggregate_masked(&masked);
        let plain = plain_sum(&updates);
        for (s, p) in secure.iter().zip(&plain) {
            assert!((s - p).abs() < 1e-3, "masked sum {s} vs plain {p}");
        }
    }

    #[test]
    fn individual_masked_update_hides_the_plaintext() {
        let cohort = vec![0usize, 1, 2, 3, 4, 5, 6, 7];
        let dim = 256;
        let update = vec![0.0f32; dim]; // all-zero plaintext
        let masked = mask_update(&update, 3, &cohort, 7);
        // The mask contribution should dominate: a zero update becomes
        // something with variance ≈ (cohort-1) after masking.
        let energy: f32 = masked.iter().map(|v| v * v).sum::<f32>() / dim as f32;
        assert!(energy > 1.0, "masked zero-update energy {energy} too small");
    }

    #[test]
    fn two_client_masks_are_antisymmetric() {
        let cohort = vec![4usize, 9];
        let zeros = vec![0.0f32; 16];
        let a = mask_update(&zeros, 4, &cohort, 1);
        let b = mask_update(&zeros, 9, &cohort, 1);
        for (x, y) in a.iter().zip(&b) {
            assert!((x + y).abs() < 1e-6, "pair masks must cancel: {x} vs {y}");
        }
    }

    #[test]
    fn masking_is_deterministic_per_round_seed() {
        let cohort = vec![1usize, 2, 3];
        let update = vec![1.0f32; 8];
        assert_eq!(
            mask_update(&update, 2, &cohort, 5),
            mask_update(&update, 2, &cohort, 5)
        );
        assert_ne!(
            mask_update(&update, 2, &cohort, 5),
            mask_update(&update, 2, &cohort, 6),
            "different rounds must use different masks"
        );
    }

    #[test]
    fn single_client_cohort_is_a_no_op() {
        let update = vec![1.0, -2.0, 3.0];
        assert_eq!(mask_update(&update, 5, &[5], 0), update);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn client_outside_cohort_is_rejected() {
        mask_update(&[1.0], 9, &[1, 2, 3], 0);
    }

    #[test]
    fn secure_mean_matches_fedavg_mean() {
        // End-to-end: the server computes the mean from masked updates and
        // matches the plain FedAvg uniform average.
        use crate::aggregate::uniform_average;
        let cohort = vec![10usize, 11, 12];
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(100 + c as u64), 32))
            .collect();
        let masked: Vec<Vec<f32>> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| mask_update(u, c, &cohort, 42))
            .collect();
        let sum = aggregate_masked(&masked);
        let secure_mean: Vec<f32> = sum.iter().map(|v| v / cohort.len() as f32).collect();
        let plain_mean = uniform_average(&updates);
        for (s, p) in secure_mean.iter().zip(&plain_mean) {
            assert!((s - p).abs() < 1e-4);
        }
    }
}
