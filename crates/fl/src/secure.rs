//! Secure-aggregation simulation: pairwise additive masking.
//!
//! In the Bonawitz et al. (CCS 2017) protocol, every pair of clients agrees
//! on a shared random mask; one adds it, the other subtracts it, so the
//! server's *sum* is exact while any individual masked update is
//! statistically indistinguishable from noise. This module simulates that
//! arithmetic (key agreement is out of scope — pair seeds are derived from
//! a shared round seed), which is enough to verify that the aggregation
//! paths of this workspace are compatible with masked inputs: FedAvg-style
//! averaging only ever needs the weighted sum.

use calibre_telemetry::metrics;
use calibre_tensor::rng;

/// Derives the mask shared by the client pair `(a, b)` for a round.
fn pair_mask(round_seed: u64, a: usize, b: usize, dim: usize) -> Vec<f32> {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let seed = round_seed
        ^ (lo as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (hi as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    rng::normal_vec(&mut rng::seeded(seed), dim)
}

/// Masks one client's update with the pairwise masks of its cohort.
///
/// `client` must be a member of `cohort`; all cohort members must call this
/// with the same `round_seed` and cohort for the masks to cancel.
///
/// # Errors
///
/// [`SecureAggError::UnknownClient`] when `client` is not in `cohort`,
/// [`SecureAggError::DuplicateClient`] when the cohort lists it twice —
/// either way the pairwise masks could never cancel, so masking refuses to
/// produce an update the server would silently mis-sum.
pub fn mask_update(
    update: &[f32],
    client: usize,
    cohort: &[usize],
    round_seed: u64,
) -> Result<Vec<f32>, SecureAggError> {
    match cohort.iter().filter(|&&c| c == client).count() {
        0 => return Err(SecureAggError::UnknownClient(client)),
        1 => {}
        _ => return Err(SecureAggError::DuplicateClient(client)),
    }
    let mut masked = update.to_vec();
    for &other in cohort {
        if other == client {
            continue;
        }
        let mask = pair_mask(round_seed, client, other, update.len());
        // The lower id adds, the higher id subtracts: antisymmetric, so the
        // pair's contributions cancel in the sum.
        let sign = if client < other { 1.0 } else { -1.0 };
        for (m, &v) in masked.iter_mut().zip(&mask) {
            *m += sign * v;
        }
    }
    metrics::counter_add("calibre_secure_masked_updates_total", &[], 1);
    Ok(masked)
}

/// Typed failure of the cohort-aware secure aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureAggError {
    /// No updates arrived at all — there is nothing to unmask.
    Empty,
    /// A contributing client id is not a member of the declared cohort.
    UnknownClient(usize),
    /// The same client contributed more than once.
    DuplicateClient(usize),
    /// Update lengths disagree (`expected` from the first update).
    LengthMismatch {
        /// Client whose update has the wrong length.
        client: usize,
        /// Expected vector length.
        expected: usize,
        /// Actual vector length.
        got: usize,
    },
    /// Fewer (or more) updates arrived than the cohort that masked them —
    /// the pairwise masks cannot cancel.
    CohortMismatch {
        /// Size of the cohort the updates were masked with.
        cohort: usize,
        /// Number of updates that actually arrived.
        got: usize,
    },
}

impl std::fmt::Display for SecureAggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecureAggError::Empty => write!(f, "no masked updates to aggregate"),
            SecureAggError::UnknownClient(c) => {
                write!(f, "client {c} contributed but is not in the cohort")
            }
            SecureAggError::DuplicateClient(c) => {
                write!(f, "client {c} contributed more than once")
            }
            SecureAggError::LengthMismatch {
                client,
                expected,
                got,
            } => write!(f, "client {client} sent length {got}, expected {expected}"),
            SecureAggError::CohortMismatch { cohort, got } => write!(
                f,
                "{got} masked updates for a cohort of {cohort}: masks cannot cancel"
            ),
        }
    }
}

impl std::error::Error for SecureAggError {}

/// Sums masked updates — the only operation the server can perform.
///
/// # Cancellation invariant
///
/// The pairwise masks cancel **only** when every member of the cohort that
/// masked with [`mask_update`] contributes exactly once. If any client
/// drops out after masking, the masks it shared with the survivors remain
/// in the sum as un-cancelled noise and the result is silently garbage.
/// When the cohort is known, prefer [`aggregate_masked_cohort`], which
/// detects dropouts and re-derives the residual masks; this function is the
/// raw primitive for the no-dropout case.
///
/// In debug builds, pass the cohort size you masked with via
/// [`aggregate_masked_checked`] to turn the hazard into a loud failure.
///
/// # Errors
///
/// [`SecureAggError::Empty`] when `updates` is empty,
/// [`SecureAggError::LengthMismatch`] when lengths differ (the `client`
/// field carries the *position* of the offending update — this raw
/// primitive does not know client ids).
pub fn aggregate_masked(updates: &[Vec<f32>]) -> Result<Vec<f32>, SecureAggError> {
    fold_masked(updates.iter().map(Vec::as_slice))
}

/// [`aggregate_masked`] over borrowed slices — the zero-copy entry point
/// for callers that already hold their updates elsewhere (e.g. an
/// [`crate::resilient::AcceptedClient`] cohort) and should not clone
/// O(cohort × model) floats just to sum them.
///
/// # Errors
///
/// Same contract as [`aggregate_masked`].
pub fn aggregate_masked_refs(updates: &[&[f32]]) -> Result<Vec<f32>, SecureAggError> {
    fold_masked(updates.iter().copied())
}

/// The shared streaming fold: one O(model) accumulator, updates borrowed
/// and folded in input order — never copied.
fn fold_masked<'a, I>(updates: I) -> Result<Vec<f32>, SecureAggError>
where
    I: Iterator<Item = &'a [f32]>,
{
    let mut sum: Option<Vec<f32>> = None;
    for (i, u) in updates.enumerate() {
        let acc = sum.get_or_insert_with(|| vec![0.0f32; u.len()]);
        if u.len() != acc.len() {
            return Err(SecureAggError::LengthMismatch {
                client: i,
                expected: acc.len(),
                got: u.len(),
            });
        }
        for (s, &v) in acc.iter_mut().zip(u) {
            *s += v;
        }
    }
    sum.ok_or(SecureAggError::Empty)
}

/// [`aggregate_masked`] with the cancellation invariant asserted.
///
/// `cohort_len` is the size of the cohort the contributors masked with. In
/// debug builds a mismatch (i.e. at least one dropout) is a panic; in
/// release builds it returns a typed error instead of silently producing a
/// mask-polluted sum.
///
/// # Errors
///
/// [`SecureAggError::Empty`] when `updates` is empty,
/// [`SecureAggError::CohortMismatch`] when the counts disagree.
pub fn aggregate_masked_checked(
    updates: &[Vec<f32>],
    cohort_len: usize,
) -> Result<Vec<f32>, SecureAggError> {
    if updates.is_empty() {
        return Err(SecureAggError::Empty);
    }
    debug_assert_eq!(
        updates.len(),
        cohort_len,
        "secure aggregation cancellation invariant violated: {} updates for a cohort of {}",
        updates.len(),
        cohort_len
    );
    if updates.len() != cohort_len {
        // A dropout without recovery: refuse to return garbage.
        return Err(SecureAggError::CohortMismatch {
            cohort: cohort_len,
            got: updates.len(),
        });
    }
    aggregate_masked(updates)
}

/// Cohort-aware secure aggregation that survives client dropout.
///
/// `updates` pairs each *surviving* client id with its masked update;
/// `cohort` is the full set every contributor masked with. For each dropped
/// client `d`, the masks `pair_mask(round_seed, s, d)` it shared with every
/// survivor `s` never got their cancelling counterpart, so this function
/// re-derives them (the simulation's stand-in for the secret-share recovery
/// round of Bonawitz et al.) and subtracts each survivor's residual
/// contribution. The result equals the sum of the survivors' plaintext
/// updates exactly as if the dropped clients had never been in the cohort.
///
/// # Errors
///
/// - [`SecureAggError::Empty`] — every client dropped.
/// - [`SecureAggError::UnknownClient`] — a contributor is not in `cohort`.
/// - [`SecureAggError::DuplicateClient`] — a client contributed twice.
/// - [`SecureAggError::LengthMismatch`] — update lengths disagree.
pub fn aggregate_masked_cohort(
    updates: &[(usize, Vec<f32>)],
    cohort: &[usize],
    round_seed: u64,
) -> Result<Vec<f32>, SecureAggError> {
    let dim = match updates.first() {
        Some((_, u)) => u.len(),
        None => return Err(SecureAggError::Empty),
    };
    let mut seen: Vec<usize> = Vec::with_capacity(updates.len());
    for (client, u) in updates {
        if !cohort.contains(client) {
            return Err(SecureAggError::UnknownClient(*client));
        }
        if seen.contains(client) {
            return Err(SecureAggError::DuplicateClient(*client));
        }
        seen.push(*client);
        if u.len() != dim {
            return Err(SecureAggError::LengthMismatch {
                client: *client,
                expected: dim,
                got: u.len(),
            });
        }
    }
    let mut sum = vec![0.0f32; dim];
    for (_, u) in updates {
        for (s, &v) in sum.iter_mut().zip(u) {
            *s += v;
        }
    }
    // Recovery: strip the residual masks each survivor shared with each
    // dropped cohort member.
    let dropped: Vec<usize> = cohort
        .iter()
        .copied()
        .filter(|c| !seen.contains(c))
        .collect();
    for &d in &dropped {
        for &s in &seen {
            let mask = pair_mask(round_seed, s, d, dim);
            let sign = if s < d { 1.0 } else { -1.0 };
            for (acc, &v) in sum.iter_mut().zip(&mask) {
                *acc -= sign * v;
            }
        }
    }
    if !dropped.is_empty() {
        metrics::counter_add(
            "calibre_secure_dropout_recoveries_total",
            &[],
            dropped.len() as u64,
        );
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_sum(updates: &[Vec<f32>]) -> Vec<f32> {
        let mut sum = vec![0.0f32; updates[0].len()];
        for u in updates {
            for (s, &v) in sum.iter_mut().zip(u) {
                *s += v;
            }
        }
        sum
    }

    #[test]
    fn masks_cancel_in_the_sum() {
        let cohort = vec![3usize, 7, 11, 20];
        let dim = 64;
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(c as u64), dim))
            .collect();
        let masked: Vec<Vec<f32>> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| mask_update(u, c, &cohort, 99).unwrap())
            .collect();
        let secure = aggregate_masked(&masked).unwrap();
        let plain = plain_sum(&updates);
        for (s, p) in secure.iter().zip(&plain) {
            assert!((s - p).abs() < 1e-3, "masked sum {s} vs plain {p}");
        }
    }

    #[test]
    fn individual_masked_update_hides_the_plaintext() {
        let cohort = vec![0usize, 1, 2, 3, 4, 5, 6, 7];
        let dim = 256;
        let update = vec![0.0f32; dim]; // all-zero plaintext
        let masked = mask_update(&update, 3, &cohort, 7).unwrap();
        // The mask contribution should dominate: a zero update becomes
        // something with variance ≈ (cohort-1) after masking.
        let energy: f32 = masked.iter().map(|v| v * v).sum::<f32>() / dim as f32;
        assert!(energy > 1.0, "masked zero-update energy {energy} too small");
    }

    #[test]
    fn two_client_masks_are_antisymmetric() {
        let cohort = vec![4usize, 9];
        let zeros = vec![0.0f32; 16];
        let a = mask_update(&zeros, 4, &cohort, 1).unwrap();
        let b = mask_update(&zeros, 9, &cohort, 1).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x + y).abs() < 1e-6, "pair masks must cancel: {x} vs {y}");
        }
    }

    #[test]
    fn masking_is_deterministic_per_round_seed() {
        let cohort = vec![1usize, 2, 3];
        let update = vec![1.0f32; 8];
        assert_eq!(
            mask_update(&update, 2, &cohort, 5).unwrap(),
            mask_update(&update, 2, &cohort, 5).unwrap()
        );
        assert_ne!(
            mask_update(&update, 2, &cohort, 5).unwrap(),
            mask_update(&update, 2, &cohort, 6).unwrap(),
            "different rounds must use different masks"
        );
    }

    #[test]
    fn single_client_cohort_is_a_no_op() {
        let update = vec![1.0, -2.0, 3.0];
        assert_eq!(mask_update(&update, 5, &[5], 0).unwrap(), update);
    }

    #[test]
    fn client_outside_cohort_is_rejected() {
        assert_eq!(
            mask_update(&[1.0], 9, &[1, 2, 3], 0),
            Err(SecureAggError::UnknownClient(9))
        );
        assert_eq!(
            mask_update(&[1.0], 2, &[1, 2, 2], 0),
            Err(SecureAggError::DuplicateClient(2))
        );
    }

    #[test]
    fn raw_aggregation_rejects_bad_inputs() {
        assert_eq!(aggregate_masked(&[]), Err(SecureAggError::Empty));
        assert_eq!(
            aggregate_masked(&[vec![1.0], vec![1.0, 2.0]]),
            Err(SecureAggError::LengthMismatch {
                client: 1,
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn dropout_pollutes_the_plain_sum() {
        // Losing one member after masking leaves un-cancelled masks behind.
        let cohort = vec![3usize, 7, 11, 20];
        let dim = 64;
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(c as u64), dim))
            .collect();
        let masked: Vec<Vec<f32>> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| mask_update(u, c, &cohort, 99).unwrap())
            .collect();
        let partial = aggregate_masked(&masked[..3]).unwrap();
        let plain = plain_sum(&updates[..3]);
        let err: f32 = partial.iter().zip(&plain).map(|(s, p)| (s - p).abs()).sum();
        assert!(err > 1.0, "dropout should skew the sum, error was {err}");
    }

    #[test]
    #[should_panic(expected = "cancellation invariant")]
    fn checked_aggregation_catches_dropout_in_debug() {
        aggregate_masked_checked(&[vec![1.0f32; 4]], 2).unwrap();
    }

    #[test]
    fn checked_aggregation_passes_full_cohorts() {
        let cohort = vec![1usize, 2];
        let masked: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| mask_update(&[1.0f32; 8], c, &cohort, 5).unwrap())
            .collect();
        let sum = aggregate_masked_checked(&masked, 2).unwrap();
        for v in &sum {
            assert!((v - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cohort_aggregation_recovers_dropped_clients() {
        let cohort = vec![3usize, 7, 11, 20];
        let dim = 64;
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(c as u64), dim))
            .collect();
        let masked: Vec<(usize, Vec<f32>)> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| (c, mask_update(u, c, &cohort, 99).unwrap()))
            .collect();
        // Clients 11 and 20 drop after masking.
        let survivors = &masked[..2];
        let recovered = aggregate_masked_cohort(survivors, &cohort, 99).unwrap();
        let plain = plain_sum(&updates[..2]);
        for (s, p) in recovered.iter().zip(&plain) {
            assert!((s - p).abs() < 1e-3, "recovered {s} vs plain {p}");
        }
    }

    #[test]
    fn cohort_aggregation_without_dropout_matches_plain_path() {
        let cohort = vec![1usize, 2, 3];
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(50 + c as u64), 16))
            .collect();
        let masked: Vec<(usize, Vec<f32>)> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| (c, mask_update(u, c, &cohort, 8).unwrap()))
            .collect();
        let full = aggregate_masked_cohort(&masked, &cohort, 8).unwrap();
        let plain = plain_sum(&updates);
        for (s, p) in full.iter().zip(&plain) {
            assert!((s - p).abs() < 1e-3);
        }
    }

    #[test]
    fn cohort_aggregation_rejects_bad_inputs() {
        assert_eq!(
            aggregate_masked_cohort(&[], &[1, 2], 0),
            Err(SecureAggError::Empty)
        );
        assert_eq!(
            aggregate_masked_cohort(&[(9, vec![1.0])], &[1, 2], 0),
            Err(SecureAggError::UnknownClient(9))
        );
        assert_eq!(
            aggregate_masked_cohort(&[(1, vec![1.0]), (1, vec![1.0])], &[1, 2], 0),
            Err(SecureAggError::DuplicateClient(1))
        );
        assert_eq!(
            aggregate_masked_cohort(&[(1, vec![1.0]), (2, vec![1.0, 2.0])], &[1, 2], 0),
            Err(SecureAggError::LengthMismatch {
                client: 2,
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn secure_mean_matches_fedavg_mean() {
        // End-to-end: the server computes the mean from masked updates and
        // matches the plain FedAvg uniform average.
        use crate::aggregate::uniform_average;
        let cohort = vec![10usize, 11, 12];
        let updates: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&c| rng::normal_vec(&mut rng::seeded(100 + c as u64), 32))
            .collect();
        let masked: Vec<Vec<f32>> = cohort
            .iter()
            .zip(&updates)
            .map(|(&c, u)| mask_update(u, c, &cohort, 42).unwrap())
            .collect();
        let sum = aggregate_masked(&masked).unwrap();
        let secure_mean: Vec<f32> = sum.iter().map(|v| v / cohort.len() as f32).collect();
        let plain_mean = uniform_average(&updates);
        for (s, p) in secure_mean.iter().zip(&plain_mean) {
            assert!((s - p).abs() < 1e-4);
        }
    }
}
