//! Model checkpointing in a dependency-free text format.
//!
//! The federated runtime treats a model as an ordered list of parameter
//! matrices ([`Module`]); a checkpoint stores exactly that — shapes plus
//! row-major values — so any module with matching shapes can be restored.
//! The format is line-oriented and human-inspectable:
//!
//! ```text
//! calibre-checkpoint v1
//! tensors <count>
//! tensor <rows> <cols>
//! <v v v ...>           # one line per row
//! ...
//! ```

use calibre_tensor::nn::Module;
use calibre_tensor::Matrix;
use std::fmt::Write as _;
use std::path::Path;

/// Error produced when loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint (message explains where).
    Parse(String),
    /// Checkpoint shapes do not match the target module.
    ShapeMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Parse(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::ShapeMismatch(msg) => write!(f, "checkpoint shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes a module's parameters to the checkpoint text format.
pub fn to_string<M: Module + ?Sized>(module: &M) -> String {
    let params = module.parameters();
    let mut out = String::new();
    out.push_str("calibre-checkpoint v1\n");
    let _ = writeln!(out, "tensors {}", params.len());
    for p in params {
        let _ = writeln!(out, "tensor {} {}", p.rows(), p.cols());
        for r in 0..p.rows() {
            let row: Vec<String> = p.row(r).iter().map(|v| format!("{v}")).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
    }
    out
}

/// Parses checkpoint text into parameter matrices.
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on any structural problem.
pub fn parse(text: &str) -> Result<Vec<Matrix>, CheckpointError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    if header != "calibre-checkpoint v1" {
        return Err(CheckpointError::Parse(format!("unknown header {header:?}")));
    }
    let count_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("missing tensor count".into()))?;
    let count: usize = count_line
        .strip_prefix("tensors ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CheckpointError::Parse(format!("bad tensor count line {count_line:?}")))?;

    let mut tensors = Vec::with_capacity(count);
    for t in 0..count {
        let shape_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Parse(format!("missing tensor {t} header")))?;
        let mut parts = shape_line.split_whitespace();
        if parts.next() != Some("tensor") {
            return Err(CheckpointError::Parse(format!(
                "tensor {t}: expected 'tensor <rows> <cols>', got {shape_line:?}"
            )));
        }
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse(format!("tensor {t}: bad rows")))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse(format!("tensor {t}: bad cols")))?;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row_line = lines
                .next()
                .ok_or_else(|| CheckpointError::Parse(format!("tensor {t}: missing row {r}")))?;
            let values: Result<Vec<f32>, _> =
                row_line.split_whitespace().map(str::parse::<f32>).collect();
            let values =
                values.map_err(|e| CheckpointError::Parse(format!("tensor {t} row {r}: {e}")))?;
            if values.len() != cols {
                return Err(CheckpointError::Parse(format!(
                    "tensor {t} row {r}: expected {cols} values, got {}",
                    values.len()
                )));
            }
            data.extend(values);
        }
        tensors.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(tensors)
}

/// Restores a module from parsed checkpoint tensors.
///
/// # Errors
///
/// Returns [`CheckpointError::ShapeMismatch`] if counts or shapes differ.
pub fn restore<M: Module + ?Sized>(
    module: &mut M,
    tensors: &[Matrix],
) -> Result<(), CheckpointError> {
    let mut params = module.parameters_mut();
    if params.len() != tensors.len() {
        return Err(CheckpointError::ShapeMismatch(format!(
            "module has {} parameters, checkpoint has {}",
            params.len(),
            tensors.len()
        )));
    }
    for (i, (p, t)) in params.iter_mut().zip(tensors).enumerate() {
        if p.shape() != t.shape() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "parameter {i}: module {:?}, checkpoint {:?}",
                p.shape(),
                t.shape()
            )));
        }
    }
    for (p, t) in params.iter_mut().zip(tensors) {
        p.as_mut_slice().copy_from_slice(t.as_slice());
    }
    Ok(())
}

/// Saves a module to a checkpoint file, creating parent directories.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save<M: Module + ?Sized, P: AsRef<Path>>(
    module: &M,
    path: P,
) -> Result<(), CheckpointError> {
    let _span = calibre_telemetry::span("checkpoint_save");
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_string(module))?;
    Ok(())
}

/// Loads a checkpoint file into a module with matching shapes.
///
/// # Errors
///
/// Returns I/O, parse, or shape errors.
pub fn load<M: Module + ?Sized, P: AsRef<Path>>(
    module: &mut M,
    path: P,
) -> Result<(), CheckpointError> {
    let _span = calibre_telemetry::span("checkpoint_load");
    let text = std::fs::read_to_string(path)?;
    let tensors = parse(&text)?;
    restore(module, &tensors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::nn::{Activation, Mlp};
    use calibre_tensor::rng;

    fn model(seed: u64) -> Mlp {
        Mlp::new(&[4, 6, 3], Activation::Relu, &mut rng::seeded(seed))
    }

    #[test]
    fn roundtrip_through_string_preserves_parameters() {
        let original = model(1);
        let text = to_string(&original);
        let tensors = parse(&text).unwrap();
        let mut restored = model(2);
        assert_ne!(restored.to_flat(), original.to_flat());
        restore(&mut restored, &tensors).unwrap();
        // Text roundtrip via `{}` formatting of f32 is exact.
        assert_eq!(restored.to_flat(), original.to_flat());
    }

    #[test]
    fn roundtrip_through_file() {
        let original = model(3);
        let path = std::env::temp_dir().join(format!(
            "calibre-ckpt-{}-{}.txt",
            std::process::id(),
            line!()
        ));
        save(&original, &path).unwrap();
        let mut restored = model(4);
        load(&mut restored, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.to_flat(), original.to_flat());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("not a checkpoint\n"),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn rejects_truncated_tensor() {
        let text = "calibre-checkpoint v1\ntensors 1\ntensor 2 2\n1 2\n";
        assert!(matches!(parse(text), Err(CheckpointError::Parse(_))));
    }

    #[test]
    fn rejects_wrong_width_row() {
        let text = "calibre-checkpoint v1\ntensors 1\ntensor 1 3\n1 2\n";
        assert!(matches!(parse(text), Err(CheckpointError::Parse(_))));
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let original = model(5);
        let tensors = parse(&to_string(&original)).unwrap();
        let mut wrong = Mlp::new(&[4, 5, 3], Activation::Relu, &mut rng::seeded(6));
        assert!(matches!(
            restore(&mut wrong, &tensors),
            Err(CheckpointError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Parse("tensor 0: bad rows".into());
        assert!(e.to_string().contains("invalid checkpoint"));
    }
}
