//! Model checkpointing in a dependency-free text format.
//!
//! The federated runtime treats a model as an ordered list of parameter
//! matrices ([`Module`]); a checkpoint stores exactly that — shapes plus
//! row-major values — so any module with matching shapes can be restored.
//! The format is line-oriented and human-inspectable:
//!
//! ```text
//! calibre-checkpoint v1
//! tensors <count>
//! tensor <rows> <cols>
//! <v v v ...>           # one line per row
//! ...
//! checksum <fnv64 hex>  # over everything above, verified on load
//! ```
//!
//! # Crash safety
//!
//! [`save`] never writes a checkpoint in place: the text goes to a sibling
//! `*.tmp` file, is fsynced, and is then renamed over the target, so a
//! crash mid-write leaves either the old checkpoint or the new one — never
//! a torn file. The trailing `checksum` line catches the remaining hazards
//! (torn *reads*, bit rot, manual edits); [`parse`] verifies it when
//! present and rejects any non-finite parameter value outright.
//!
//! [`CheckpointStore`] adds one more layer: a `current` / `.prev` rotation
//! where loading falls back to the previous good checkpoint when the
//! current one is missing or corrupt. [`TrainerCheckpoint`] captures a full
//! resilient-training snapshot (round index, global encoder, per-client
//! state, loss history) in the same format family so `run_pfl_ssl`-style
//! loops can resume bit-identically after a kill.

use calibre_tensor::nn::Module;
use calibre_tensor::Matrix;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Error produced when loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint (message explains where).
    Parse(String),
    /// Checkpoint shapes do not match the target module.
    ShapeMismatch(String),
    /// A parameter value is NaN or infinite — a checkpoint like that could
    /// only have been produced by corrupted training state, and restoring
    /// it would silently poison everything downstream.
    NonFinite(String),
    /// The trailing checksum line does not match the file contents.
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed from the file body.
        got: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Parse(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::ShapeMismatch(msg) => write!(f, "checkpoint shape mismatch: {msg}"),
            CheckpointError::NonFinite(msg) => {
                write!(f, "checkpoint contains non-finite value: {msg}")
            }
            CheckpointError::Checksum { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:#018x}, recomputed {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// The integrity checksum is the crate-wide FNV-1a, shared with the wire
// protocol's frame checksums and the serve-path model fingerprints.
use crate::adversary::ReputationBook;
use crate::proto::fnv1a;

/// Appends the trailing `checksum <hex>` line over everything written so far.
fn append_checksum(out: &mut String) {
    let h = fnv1a(out.as_bytes());
    let _ = writeln!(out, "checksum {h:016x}");
}

/// Strips and verifies an optional trailing `checksum` line, returning the
/// body the remaining parser should see. Files written before the checksum
/// was introduced (no such line) pass through unchanged.
fn verify_checksum(text: &str) -> Result<&str, CheckpointError> {
    let Some(pos) = text.rfind("\nchecksum ") else {
        return Ok(text);
    };
    let line = text[pos + 1..].trim_end();
    // Only treat it as a checksum if it really is the final line.
    if text[pos + 1..].trim_end_matches('\n') != line {
        return Ok(text);
    }
    let hex = line.strip_prefix("checksum ").unwrap_or_default();
    let expected = u64::from_str_radix(hex, 16)
        .map_err(|e| CheckpointError::Parse(format!("bad checksum line {line:?}: {e}")))?;
    let body = &text[..pos + 1];
    let got = fnv1a(body.as_bytes());
    if got != expected {
        return Err(CheckpointError::Checksum { expected, got });
    }
    Ok(body)
}

/// Writes a `tensor`-block sequence (shape header + row lines per matrix).
fn write_tensors(out: &mut String, tensors: &[&Matrix]) {
    for p in tensors {
        let _ = writeln!(out, "tensor {} {}", p.rows(), p.cols());
        for r in 0..p.rows() {
            let row: Vec<String> = p.row(r).iter().map(|v| format!("{v}")).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
    }
}

/// Parses `count` tensor blocks from the line stream.
fn parse_tensors<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
    count: usize,
    ctx: &str,
) -> Result<Vec<Matrix>, CheckpointError> {
    let mut tensors = Vec::with_capacity(count);
    for t in 0..count {
        let shape_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Parse(format!("{ctx}: missing tensor {t} header")))?;
        let mut parts = shape_line.split_whitespace();
        if parts.next() != Some("tensor") {
            return Err(CheckpointError::Parse(format!(
                "{ctx} tensor {t}: expected 'tensor <rows> <cols>', got {shape_line:?}"
            )));
        }
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse(format!("{ctx} tensor {t}: bad rows")))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse(format!("{ctx} tensor {t}: bad cols")))?;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row_line = lines.next().ok_or_else(|| {
                CheckpointError::Parse(format!("{ctx} tensor {t}: missing row {r}"))
            })?;
            let values: Result<Vec<f32>, _> =
                row_line.split_whitespace().map(str::parse::<f32>).collect();
            let values = values
                .map_err(|e| CheckpointError::Parse(format!("{ctx} tensor {t} row {r}: {e}")))?;
            if values.len() != cols {
                return Err(CheckpointError::Parse(format!(
                    "{ctx} tensor {t} row {r}: expected {cols} values, got {}",
                    values.len()
                )));
            }
            if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
                return Err(CheckpointError::NonFinite(format!(
                    "{ctx} tensor {t} row {r}: value {bad}"
                )));
            }
            data.extend(values);
        }
        tensors.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(tensors)
}

/// Serializes a module's parameters to the checkpoint text format,
/// including the trailing integrity checksum.
pub fn to_string<M: Module + ?Sized>(module: &M) -> String {
    let params = module.parameters();
    let mut out = String::new();
    out.push_str("calibre-checkpoint v1\n");
    let _ = writeln!(out, "tensors {}", params.len());
    write_tensors(&mut out, &params);
    append_checksum(&mut out);
    out
}

/// Parses checkpoint text into parameter matrices.
///
/// A trailing `checksum` line, when present, is verified against the body
/// before any tensor is accepted; non-finite values are rejected.
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] on structural problems,
/// [`CheckpointError::Checksum`] on an integrity mismatch, and
/// [`CheckpointError::NonFinite`] when a value is NaN or infinite.
pub fn parse(text: &str) -> Result<Vec<Matrix>, CheckpointError> {
    let body = verify_checksum(text)?;
    let mut lines = body.lines();
    let header = lines.next().unwrap_or_default();
    if header != "calibre-checkpoint v1" {
        return Err(CheckpointError::Parse(format!("unknown header {header:?}")));
    }
    let count_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("missing tensor count".into()))?;
    let count: usize = count_line
        .strip_prefix("tensors ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CheckpointError::Parse(format!("bad tensor count line {count_line:?}")))?;
    parse_tensors(&mut lines, count, "checkpoint")
}

/// Restores a module from parsed checkpoint tensors.
///
/// # Errors
///
/// Returns [`CheckpointError::ShapeMismatch`] if counts or shapes differ.
pub fn restore<M: Module + ?Sized>(
    module: &mut M,
    tensors: &[Matrix],
) -> Result<(), CheckpointError> {
    let mut params = module.parameters_mut();
    if params.len() != tensors.len() {
        return Err(CheckpointError::ShapeMismatch(format!(
            "module has {} parameters, checkpoint has {}",
            params.len(),
            tensors.len()
        )));
    }
    for (i, (p, t)) in params.iter_mut().zip(tensors).enumerate() {
        if p.shape() != t.shape() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "parameter {i}: module {:?}, checkpoint {:?}",
                p.shape(),
                t.shape()
            )));
        }
    }
    for (p, t) in params.iter_mut().zip(tensors) {
        p.as_mut_slice().copy_from_slice(t.as_slice());
    }
    Ok(())
}

/// Atomically writes `text` to `path`: sibling `.tmp` file, fsync, rename.
///
/// A crash at any point leaves either the previous file or the complete new
/// one — never a torn mix of both.
fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".into());
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Saves a module to a checkpoint file, creating parent directories.
///
/// The write is atomic (temp file + fsync + rename), so an interrupted save
/// never corrupts an existing checkpoint at `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save<M: Module + ?Sized, P: AsRef<Path>>(
    module: &M,
    path: P,
) -> Result<(), CheckpointError> {
    let _span = calibre_telemetry::span("checkpoint_save");
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    atomic_write(path.as_ref(), &to_string(module))?;
    Ok(())
}

/// Loads a checkpoint file into a module with matching shapes.
///
/// # Errors
///
/// Returns I/O, parse, or shape errors.
pub fn load<M: Module + ?Sized, P: AsRef<Path>>(
    module: &mut M,
    path: P,
) -> Result<(), CheckpointError> {
    let _span = calibre_telemetry::span("checkpoint_load");
    let text = std::fs::read_to_string(path)?;
    let tensors = parse(&text)?;
    restore(module, &tensors)
}

/// A crash-safe checkpoint slot with one level of history.
///
/// Saving rotates the current file to `<path>.prev` before atomically
/// writing the new one; loading validates the current file and silently
/// falls back to `.prev` when the current one is missing or fails
/// validation (checksum, parse, non-finite values). Combined with the
/// atomic writes, a process killed at *any* instant leaves at least one
/// loadable checkpoint behind once the first save completed.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// A store writing its current checkpoint at `path`.
    pub fn new<P: Into<PathBuf>>(path: P) -> Self {
        CheckpointStore { path: path.into() }
    }

    /// Path of the current checkpoint.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of the rotated previous checkpoint.
    pub fn prev_path(&self) -> PathBuf {
        let file_name = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "checkpoint".into());
        self.path.with_file_name(format!("{file_name}.prev"))
    }

    /// Rotates the current checkpoint to `.prev` and atomically writes
    /// `text` as the new current checkpoint.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save_text(&self, text: &str) -> Result<(), CheckpointError> {
        let _span = calibre_telemetry::span("checkpoint_save");
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        if self.path.exists() {
            std::fs::rename(&self.path, self.prev_path())?;
        }
        atomic_write(&self.path, text)?;
        Ok(())
    }

    /// Loads the newest checkpoint that passes `parse_fn`, preferring the
    /// current file and falling back to `.prev`.
    ///
    /// # Errors
    ///
    /// Returns the *current* file's error when both candidates fail (the
    /// fallback's failure is secondary), or the current file's error when
    /// no `.prev` exists.
    pub fn load_with<T>(
        &self,
        parse_fn: impl Fn(&str) -> Result<T, CheckpointError>,
    ) -> Result<T, CheckpointError> {
        let _span = calibre_telemetry::span("checkpoint_load");
        let current = std::fs::read_to_string(&self.path)
            .map_err(CheckpointError::from)
            .and_then(|text| parse_fn(&text));
        match current {
            Ok(v) => Ok(v),
            Err(primary) => {
                let prev = std::fs::read_to_string(self.prev_path())
                    .map_err(CheckpointError::from)
                    .and_then(|text| parse_fn(&text));
                prev.map_err(|_| primary)
            }
        }
    }
}

/// Complete snapshot of a resilient federated training run.
///
/// Captures everything `run_pfl_ssl`-style loops need to continue
/// bit-identically after a kill: the round index to resume *from* (i.e.
/// rounds `0..round` already folded into the state), the global encoder
/// parameters, each client's cached SSL-method parameters, and the loss
/// history so far. Client selection and per-round RNGs are re-derived from
/// the run config's seed, so they need no persistence.
#[derive(Debug, Clone)]
pub struct TrainerCheckpoint {
    /// Number of rounds already completed (resume starts here).
    pub round: usize,
    /// Global encoder parameter matrices.
    pub global: Vec<Matrix>,
    /// Per-client cached state as `(client_id, parameters)` — only clients
    /// that have trained at least once appear.
    pub clients: Vec<(usize, Vec<Matrix>)>,
    /// Mean training loss per completed round.
    pub round_losses: Vec<f32>,
    /// Byzantine-client reputation state. Empty books write no section and
    /// parse back empty, so unarmed checkpoints stay byte-identical to the
    /// pre-reputation format.
    pub reputation: ReputationBook,
}

impl TrainerCheckpoint {
    /// Serializes the snapshot, with a trailing integrity checksum.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("calibre-trainer-checkpoint v1\n");
        let _ = writeln!(out, "round {}", self.round);
        let _ = write!(out, "losses {}", self.round_losses.len());
        for l in &self.round_losses {
            let _ = write!(out, " {l}");
        }
        out.push('\n');
        let _ = writeln!(out, "global tensors {}", self.global.len());
        let refs: Vec<&Matrix> = self.global.iter().collect();
        write_tensors(&mut out, &refs);
        let _ = writeln!(out, "clients {}", self.clients.len());
        for (id, tensors) in &self.clients {
            let _ = writeln!(out, "client {id} tensors {}", tensors.len());
            let refs: Vec<&Matrix> = tensors.iter().collect();
            write_tensors(&mut out, &refs);
        }
        out.push_str(&self.reputation.to_checkpoint_lines());
        append_checksum(&mut out);
        out
    }

    /// Parses a snapshot, verifying the checksum when present.
    ///
    /// # Errors
    ///
    /// Structural, checksum, or non-finite errors as for [`parse`].
    pub fn parse(text: &str) -> Result<TrainerCheckpoint, CheckpointError> {
        fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, CheckpointError> {
            line.and_then(|l| l.strip_prefix(key))
                .ok_or_else(|| CheckpointError::Parse(format!("missing/bad {key:?} line")))
        }
        let body = verify_checksum(text)?;
        let mut lines = body.lines();
        let header = lines.next().unwrap_or_default();
        if header != "calibre-trainer-checkpoint v1" {
            return Err(CheckpointError::Parse(format!("unknown header {header:?}")));
        }
        let round: usize = field(lines.next(), "round ")?
            .parse()
            .map_err(|e| CheckpointError::Parse(format!("bad round: {e}")))?;
        let losses_line = field(lines.next(), "losses ")?;
        let mut parts = losses_line.split_whitespace();
        let n_losses: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("bad loss count".into()))?;
        let round_losses: Vec<f32> = parts
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| CheckpointError::Parse(format!("bad loss value: {e}")))?;
        if round_losses.len() != n_losses {
            return Err(CheckpointError::Parse(format!(
                "expected {n_losses} losses, got {}",
                round_losses.len()
            )));
        }
        if let Some(bad) = round_losses.iter().find(|v| !v.is_finite()) {
            return Err(CheckpointError::NonFinite(format!("loss value {bad}")));
        }
        let n_global: usize = field(lines.next(), "global tensors ")?
            .parse()
            .map_err(|e| CheckpointError::Parse(format!("bad global tensor count: {e}")))?;
        let global = parse_tensors(&mut lines, n_global, "global")?;
        let n_clients: usize = field(lines.next(), "clients ")?
            .parse()
            .map_err(|e| CheckpointError::Parse(format!("bad client count: {e}")))?;
        let mut clients = Vec::with_capacity(n_clients);
        for c in 0..n_clients {
            let line = field(lines.next(), "client ")?;
            let mut parts = line.split_whitespace();
            let id: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| CheckpointError::Parse(format!("client entry {c}: bad id")))?;
            let n_tensors: usize = match (parts.next(), parts.next()) {
                (Some("tensors"), Some(n)) => n
                    .parse()
                    .map_err(|e| CheckpointError::Parse(format!("client {id}: bad count: {e}")))?,
                _ => {
                    return Err(CheckpointError::Parse(format!(
                        "client entry {c}: expected 'client <id> tensors <n>'"
                    )))
                }
            };
            let tensors = parse_tensors(&mut lines, n_tensors, &format!("client {id}"))?;
            clients.push((id, tensors));
        }
        let reputation = ReputationBook::parse_checkpoint_lines(lines.peekable())
            .map_err(CheckpointError::Parse)?;
        Ok(TrainerCheckpoint {
            round,
            global,
            clients,
            round_losses,
            reputation,
        })
    }
}

/// Snapshot of a `calibre-serve` run: the round to resume from and the
/// global model, persisted through a [`CheckpointStore`] after every round.
///
/// The model is stored as IEEE-754 bit patterns in hex, so a save/load
/// cycle is **bit-exact** — required for the cross-transport identity
/// guarantee to survive a server restart. Cohort selection, chaos, and the
/// simulated workload are all re-derived from the run seed, so nothing
/// else needs persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCheckpoint {
    /// Rounds already folded into the model (resume starts here).
    pub round: usize,
    /// The global model after `round` rounds.
    pub model: Vec<f32>,
    /// Byzantine-client reputation state. Empty books write no section and
    /// parse back empty, so unarmed checkpoints stay byte-identical to the
    /// pre-reputation format (and to main's golden files).
    pub reputation: ReputationBook,
}

impl ServerCheckpoint {
    /// Serializes the snapshot, with a trailing integrity checksum.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("calibre-server-checkpoint v1\n");
        let _ = writeln!(out, "round {}", self.round);
        let _ = write!(out, "model {}", self.model.len());
        for v in &self.model {
            let _ = write!(out, " {:08x}", v.to_bits());
        }
        out.push('\n');
        out.push_str(&self.reputation.to_checkpoint_lines());
        append_checksum(&mut out);
        out
    }

    /// Parses a snapshot, verifying the checksum when present.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] on structural damage,
    /// [`CheckpointError::Checksum`] on integrity failure.
    pub fn parse(text: &str) -> Result<ServerCheckpoint, CheckpointError> {
        let body = verify_checksum(text)?;
        let mut lines = body.lines();
        let header = lines.next().unwrap_or_default();
        if header != "calibre-server-checkpoint v1" {
            return Err(CheckpointError::Parse(format!("unknown header {header:?}")));
        }
        let round: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("round "))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("missing/bad round line".into()))?;
        let model_line = lines
            .next()
            .and_then(|l| l.strip_prefix("model "))
            .ok_or_else(|| CheckpointError::Parse("missing/bad model line".into()))?;
        let mut parts = model_line.split_whitespace();
        let n: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("bad model element count".into()))?;
        let model: Vec<f32> = parts
            .map(|s| u32::from_str_radix(s, 16).map(f32::from_bits))
            .collect::<Result<_, _>>()
            .map_err(|e| CheckpointError::Parse(format!("bad model element: {e}")))?;
        if model.len() != n {
            return Err(CheckpointError::Parse(format!(
                "expected {n} model elements, got {}",
                model.len()
            )));
        }
        let reputation = ReputationBook::parse_checkpoint_lines(lines.peekable())
            .map_err(CheckpointError::Parse)?;
        Ok(ServerCheckpoint {
            round,
            model,
            reputation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::nn::{Activation, Mlp};
    use calibre_tensor::rng;

    fn model(seed: u64) -> Mlp {
        Mlp::new(&[4, 6, 3], Activation::Relu, &mut rng::seeded(seed))
    }

    #[test]
    fn server_checkpoint_roundtrips_bit_exactly_and_detects_damage() {
        let ckpt = ServerCheckpoint {
            round: 7,
            model: vec![1.5, -0.0, f32::MIN_POSITIVE, 3.141592e-4, 1e30],
            reputation: ReputationBook::new(),
        };
        let text = ckpt.to_text();
        let parsed = ServerCheckpoint::parse(&text).unwrap();
        assert_eq!(parsed.round, 7);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&parsed.model), bits(&ckpt.model), "bit-exact");

        let tampered = text.replace("round 7", "round 8");
        assert!(matches!(
            ServerCheckpoint::parse(&tampered),
            Err(CheckpointError::Checksum { .. })
        ));
        assert!(ServerCheckpoint::parse("garbage").is_err());
    }

    #[test]
    fn roundtrip_through_string_preserves_parameters() {
        let original = model(1);
        let text = to_string(&original);
        let tensors = parse(&text).unwrap();
        let mut restored = model(2);
        assert_ne!(restored.to_flat(), original.to_flat());
        restore(&mut restored, &tensors).unwrap();
        // Text roundtrip via `{}` formatting of f32 is exact.
        assert_eq!(restored.to_flat(), original.to_flat());
    }

    #[test]
    fn roundtrip_through_file() {
        let original = model(3);
        let path = std::env::temp_dir().join(format!(
            "calibre-ckpt-{}-{}.txt",
            std::process::id(),
            line!()
        ));
        save(&original, &path).unwrap();
        let mut restored = model(4);
        load(&mut restored, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.to_flat(), original.to_flat());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("not a checkpoint\n"),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn rejects_truncated_tensor() {
        let text = "calibre-checkpoint v1\ntensors 1\ntensor 2 2\n1 2\n";
        assert!(matches!(parse(text), Err(CheckpointError::Parse(_))));
    }

    #[test]
    fn rejects_wrong_width_row() {
        let text = "calibre-checkpoint v1\ntensors 1\ntensor 1 3\n1 2\n";
        assert!(matches!(parse(text), Err(CheckpointError::Parse(_))));
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let original = model(5);
        let tensors = parse(&to_string(&original)).unwrap();
        let mut wrong = Mlp::new(&[4, 5, 3], Activation::Relu, &mut rng::seeded(6));
        assert!(matches!(
            restore(&mut wrong, &tensors),
            Err(CheckpointError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Parse("tensor 0: bad rows".into());
        assert!(e.to_string().contains("invalid checkpoint"));
    }

    #[test]
    fn rejects_nan_and_inf_values() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("calibre-checkpoint v1\ntensors 1\ntensor 1 2\n1 {bad}\n");
            assert!(
                matches!(parse(&text), Err(CheckpointError::NonFinite(_))),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_checksum_mismatch() {
        let original = model(7);
        let text = to_string(&original);
        // Flip one digit in a parameter value; the checksum line stays stale.
        let corrupted = text.replacen("0.", "1.", 1);
        assert_ne!(corrupted, text);
        assert!(matches!(
            parse(&corrupted),
            Err(CheckpointError::Checksum { .. })
        ));
    }

    #[test]
    fn truncated_file_fails_parse_cleanly() {
        // Simulate a torn write: drop the second half of a valid checkpoint.
        let original = model(8);
        let text = to_string(&original);
        let truncated = &text[..text.len() / 2];
        let err = parse(truncated).expect_err("truncated checkpoint must not parse");
        assert!(
            matches!(err, CheckpointError::Parse(_)),
            "expected a parse error, got {err:?}"
        );
    }

    #[test]
    fn checkpoints_without_checksum_still_parse() {
        // Pre-checksum files (or hand-written fixtures) stay loadable.
        let text = "calibre-checkpoint v1\ntensors 1\ntensor 1 2\n1 2\n";
        let tensors = parse(text).unwrap();
        assert_eq!(tensors[0].as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn store_rotates_and_falls_back_on_corruption() {
        let dir =
            std::env::temp_dir().join(format!("calibre-store-{}-{}", std::process::id(), line!()));
        let store = CheckpointStore::new(dir.join("ckpt.txt"));
        let a = model(9);
        let b = model(10);
        store.save_text(&to_string(&a)).unwrap();
        store.save_text(&to_string(&b)).unwrap();
        // Both generations on disk; current wins.
        let tensors = store.load_with(parse).unwrap();
        assert_eq!(tensors[0].as_slice(), b.parameters()[0].as_slice());
        // Corrupt the current file; the previous generation is recovered.
        std::fs::write(store.path(), "garbage").unwrap();
        let tensors = store.load_with(parse).unwrap();
        assert_eq!(tensors[0].as_slice(), a.parameters()[0].as_slice());
        // Corrupt both: the current file's error surfaces.
        std::fs::write(store.prev_path(), "also garbage").unwrap();
        assert!(store.load_with(parse).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trainer_checkpoint_roundtrips() {
        let global = model(11).parameters().into_iter().cloned().collect();
        let client_state: Vec<Matrix> = model(12).parameters().into_iter().cloned().collect();
        let ckpt = TrainerCheckpoint {
            round: 3,
            global,
            clients: vec![(2, client_state)],
            round_losses: vec![1.5, 1.25, 1.0],
            reputation: ReputationBook::new(),
        };
        let text = ckpt.to_text();
        let back = TrainerCheckpoint::parse(&text).unwrap();
        assert_eq!(back.round, 3);
        assert_eq!(back.round_losses, ckpt.round_losses);
        assert_eq!(back.clients.len(), 1);
        assert_eq!(back.clients[0].0, 2);
        for (a, b) in ckpt.global.iter().zip(&back.global) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        for (a, b) in ckpt.clients[0].1.iter().zip(&back.clients[0].1) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // Truncation is detected, not mis-parsed.
        assert!(TrainerCheckpoint::parse(&text[..text.len() / 3]).is_err());
    }

    #[test]
    fn trainer_checkpoint_with_no_clients_roundtrips() {
        let ckpt = TrainerCheckpoint {
            round: 0,
            global: vec![Matrix::from_vec(1, 2, vec![0.5, -0.5])],
            clients: vec![],
            round_losses: vec![],
            reputation: ReputationBook::new(),
        };
        let back = TrainerCheckpoint::parse(&ckpt.to_text()).unwrap();
        assert_eq!(back.round, 0);
        assert!(back.clients.is_empty());
        assert!(back.round_losses.is_empty());
    }

    /// A book with strikes and a quarantined client survives both
    /// checkpoint formats bit-exactly.
    #[test]
    fn reputation_state_roundtrips_through_both_checkpoints() {
        use crate::adversary::AnomalyScore;
        let mut book = ReputationBook::new();
        for _ in 0..3 {
            book.observe_round(&[
                AnomalyScore {
                    client: 4,
                    norm_z: 5.0,
                    cosine_z: 0.1,
                },
                AnomalyScore {
                    client: 9,
                    norm_z: 0.2,
                    cosine_z: 0.1,
                },
            ]);
        }
        assert!(book.is_quarantined(4), "three strikes quarantine client 4");

        let server = ServerCheckpoint {
            round: 5,
            model: vec![0.25, -1.0],
            reputation: book.clone(),
        };
        let back = ServerCheckpoint::parse(&server.to_text()).unwrap();
        assert_eq!(back.reputation, book);

        let trainer = TrainerCheckpoint {
            round: 1,
            global: vec![Matrix::from_vec(1, 2, vec![0.5, -0.5])],
            clients: vec![],
            round_losses: vec![2.0],
            reputation: book.clone(),
        };
        let back = TrainerCheckpoint::parse(&trainer.to_text()).unwrap();
        assert_eq!(back.reputation, book);
    }

    /// An empty book writes no reputation section, so unarmed checkpoints
    /// stay byte-identical to the pre-reputation format.
    #[test]
    fn empty_reputation_book_leaves_checkpoints_byte_identical() {
        let ckpt = ServerCheckpoint {
            round: 2,
            model: vec![1.0, 2.0],
            reputation: ReputationBook::new(),
        };
        let text = ckpt.to_text();
        assert!(!text.contains("reputation"), "no section for an empty book");
        let mut legacy = String::new();
        legacy.push_str("calibre-server-checkpoint v1\n");
        let _ = writeln!(legacy, "round 2");
        let _ = write!(legacy, "model 2");
        for v in &ckpt.model {
            let _ = write!(legacy, " {:08x}", v.to_bits());
        }
        legacy.push('\n');
        append_checksum(&mut legacy);
        assert_eq!(text, legacy, "byte-identical to the pre-reputation format");
    }
}
