//! Seeded Byzantine-client attack injection, anomaly scoring, and
//! reputation-based quarantine.
//!
//! The chaos layer ([`crate::chaos`]) models *accidental* failure —
//! dropouts, stragglers, crashes, bit rot. This module models *adversarial*
//! failure: clients that complete their round on time and return a finite,
//! well-shaped update crafted to poison the global model. Calibre's whole
//! contribution is the mean/variance fairness of per-client accuracy, and
//! nothing degrades tail-client fairness faster than a few such clients, so
//! the threat model gets the same treatment the fault model got: every
//! attack decision is a pure function of `(plan seed, run seed, round,
//! client)` and replays bit-for-bit — in process or over a socket — from
//! the seeds alone.
//!
//! Defending is split across three seams, mirroring chaos/resilient:
//!
//! - **injection** happens server-side at the same point chaos corruption
//!   does, so all round paths (collect, streaming, transport) observe the
//!   identical attacked bytes;
//! - **robust aggregation** (Krum, geometric median, norm bounding — see
//!   [`crate::aggregate::Aggregator`]) absorbs what validation cannot
//!   detect;
//! - **detection + quarantine** ([`anomaly_scores`], [`ReputationBook`])
//!   scores every accepted update against the cohort, accumulates
//!   suspicion across rounds, and feeds the quarantine set back into
//!   cohort sampling so persistent adversaries stop being drawn.
//!
//! # Spec strings
//!
//! Bench binaries accept `--attack <spec>` where `<spec>` is a comma list
//! of `key=value` pairs, e.g. `flip=0.1,scale=10:0.05,noise=0.1`:
//!
//! | key       | meaning                                               | default |
//! |-----------|-------------------------------------------------------|---------|
//! | `flip`    | per-(round, client) sign-flip probability             | 0       |
//! | `scale`   | `factor:prob` — scaling / model-replacement attack    | 10, 0   |
//! | `replace` | per-(round, client) model-replacement probability     | 0       |
//! | `noise`   | inlier-fitted additive-noise probability ("a little   | 0       |
//! |           | is enough"-style: perturbation sized to the update's  |         |
//! |           | own coordinate statistics, so it passes norm checks)  |         |
//! | `collude` | colluding-group probability — all colluders in a      | 0       |
//! |           | round push the same seeded direction                  |         |
//! | `seed`    | attack seed (mixed with the run seed)                 | 0       |
//!
//! The default plan is inactive: training is bit-identical to a build
//! without this module, which the golden checksum and transport-identity
//! tests pin.

use crate::spec::SpecError;
use calibre_tensor::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One adversarial behaviour assigned to one `(round, client)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Negate the update: norm-preserving, undetectable by magnitude
    /// screens, absorbed only by robust aggregation.
    SignFlip,
    /// Multiply the update by the plan's scale factor — the classic
    /// model-replacement amplification.
    Scale,
    /// Replace the update wholesale with a seeded adversarial direction at
    /// an amplified norm.
    Replace,
    /// Add noise fitted to the update's own per-coordinate statistics
    /// ("a little is enough"): small enough to look like an inlier, biased
    /// enough to drag the aggregate.
    InlierNoise,
    /// Replace the update with the round's shared collusion direction,
    /// scaled to the honest update's norm so the group passes norm checks
    /// while pulling together.
    Collude,
}

impl AttackKind {
    /// Telemetry tag for this attack kind.
    pub fn kind_tag(self) -> &'static str {
        match self {
            AttackKind::SignFlip => "attack_flip",
            AttackKind::Scale => "attack_scale",
            AttackKind::Replace => "attack_replace",
            AttackKind::InlierNoise => "attack_noise",
            AttackKind::Collude => "attack_collude",
        }
    }
}

/// Per-(round, client) attack probabilities for an adversarial run.
///
/// The default plan is inactive (all probabilities zero); the round loop
/// takes the exact nominal path and stays bit-identical to main.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    /// Probability a client's update is sign-flipped.
    pub flip_prob: f32,
    /// Probability a client's update is scaled by [`AttackPlan::scale_factor`].
    pub scale_prob: f32,
    /// Amplification factor for the scaling attack.
    pub scale_factor: f32,
    /// Probability a client's update is replaced with a seeded adversarial
    /// direction.
    pub replace_prob: f32,
    /// Probability a client's update gets inlier-fitted additive noise.
    pub noise_prob: f32,
    /// Probability a client joins the round's colluding group.
    pub collude_prob: f32,
    /// Attack seed, mixed with the run seed by [`AttackInjector::for_run`].
    pub seed: u64,
}

impl Default for AttackPlan {
    fn default() -> Self {
        AttackPlan {
            flip_prob: 0.0,
            scale_prob: 0.0,
            scale_factor: 10.0,
            replace_prob: 0.0,
            noise_prob: 0.0,
            collude_prob: 0.0,
            seed: 0,
        }
    }
}

impl AttackPlan {
    /// Whether any attack has a nonzero probability. An inactive plan means
    /// the round loop takes the exact nominal path.
    pub fn is_active(&self) -> bool {
        self.flip_prob > 0.0
            || self.scale_prob > 0.0
            || self.replace_prob > 0.0
            || self.noise_prob > 0.0
            || self.collude_prob > 0.0
    }

    /// Parses a `--attack` spec string (see the module docs for the table).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending key and its byte span
    /// in `spec` on unknown keys, malformed numbers, or probabilities
    /// outside `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use calibre_fl::adversary::AttackPlan;
    ///
    /// let plan = AttackPlan::parse("flip=0.1,scale=10:0.05,seed=7").unwrap();
    /// assert_eq!(plan.flip_prob, 0.1);
    /// assert_eq!(plan.scale_factor, 10.0);
    /// assert_eq!(plan.scale_prob, 0.05);
    /// assert_eq!(plan.seed, 7);
    /// assert!(plan.is_active());
    /// assert!(AttackPlan::parse("flip=1.5").is_err());
    /// assert!(!AttackPlan::parse("").unwrap().is_active());
    ///
    /// let err = AttackPlan::parse("flip=0.1,warp=0.2").unwrap_err();
    /// assert_eq!(err.key, "warp");
    /// assert_eq!(err.span, (9, 17)); // byte range of `warp=0.2`
    /// ```
    pub fn parse(spec: &str) -> Result<AttackPlan, SpecError> {
        let mut plan = AttackPlan::default();
        let mut offset = 0usize;
        for raw in spec.split(',') {
            let pair_start = offset;
            offset += raw.len() + 1;
            let pair = raw.trim();
            if pair.is_empty() {
                continue;
            }
            let lead = raw.len() - raw.trim_start().len();
            let span = (pair_start + lead, pair_start + lead + pair.len());
            let Some((key, value)) = pair.split_once('=') else {
                return Err(SpecError::new("attack", pair, span, "expected key=value"));
            };
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f32, SpecError> {
                let p: f32 = v.parse().map_err(|_| {
                    SpecError::new("attack", key, span, format!("bad number {v:?}"))
                })?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(SpecError::new(
                        "attack",
                        key,
                        span,
                        format!("{p} outside [0, 1]"),
                    ));
                }
                Ok(p)
            };
            match key {
                "flip" => plan.flip_prob = prob(value)?,
                "scale" => match value.split_once(':') {
                    Some((factor, p)) => {
                        let f: f32 = factor.trim().parse().map_err(|_| {
                            SpecError::new(
                                "attack",
                                key,
                                span,
                                format!("bad scale factor {factor:?}"),
                            )
                        })?;
                        if !f.is_finite() || f == 0.0 {
                            return Err(SpecError::new(
                                "attack",
                                key,
                                span,
                                format!("scale factor {f} must be finite and nonzero"),
                            ));
                        }
                        plan.scale_factor = f;
                        plan.scale_prob = prob(p.trim())?;
                    }
                    None => plan.scale_prob = prob(value)?,
                },
                "replace" => plan.replace_prob = prob(value)?,
                "noise" => plan.noise_prob = prob(value)?,
                "collude" => plan.collude_prob = prob(value)?,
                "seed" => {
                    plan.seed = value.parse().map_err(|_| {
                        SpecError::new("attack", key, span, format!("bad seed {value:?}"))
                    })?
                }
                other => {
                    return Err(SpecError::new(
                        "attack",
                        other,
                        span,
                        "unknown key (expected flip, scale, replace, noise, collude or seed)",
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// Seeded attack oracle: maps `(round, client)` to an optional
/// [`AttackKind`] and applies the chosen attack, reproducibly.
///
/// Like [`crate::chaos::FaultInjector`], each cell gets its own short-lived
/// RNG seeded by mixing the injector seed with the cell coordinates, so
/// decisions are independent across cells and replay identically regardless
/// of scheduling, wave order, or transport. The constants differ from the
/// chaos layer's, so arming both never correlates their draws.
#[derive(Debug, Clone)]
pub struct AttackInjector {
    plan: AttackPlan,
    seed: u64,
}

impl AttackInjector {
    /// Builds an injector whose decisions depend only on `plan.seed`.
    pub fn new(plan: AttackPlan) -> Self {
        let seed = plan.seed;
        AttackInjector { plan, seed }
    }

    /// Builds an injector for a training run, folding the run seed into the
    /// attack seed so two runs with different run seeds see different (but
    /// individually reproducible) attack sequences.
    pub fn for_run(plan: AttackPlan, run_seed: u64) -> Self {
        let seed = plan.seed.wrapping_mul(0x9E6D_62C9_52F3_0E4D)
            ^ run_seed.wrapping_mul(0xB5C0_FBCF_A1C9_1E3B);
        AttackInjector { plan, seed }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &AttackPlan {
        &self.plan
    }

    fn cell_rng(&self, round: usize, client: usize) -> rand::rngs::StdRng {
        let mixed = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((client as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
        rng::seeded(mixed)
    }

    /// Decides the attack (if any) one client mounts in one round. Pure:
    /// same inputs, same answer, forever.
    ///
    /// The draws are ordered flip → scale → replace → noise → collude, so
    /// at most one attack fires per cell.
    pub fn decide(&self, round: usize, client: usize) -> Option<AttackKind> {
        if !self.plan.is_active() {
            return None;
        }
        let mut r = self.cell_rng(round, client);
        if r.gen::<f32>() < self.plan.flip_prob {
            return Some(AttackKind::SignFlip);
        }
        if r.gen::<f32>() < self.plan.scale_prob {
            return Some(AttackKind::Scale);
        }
        if r.gen::<f32>() < self.plan.replace_prob {
            return Some(AttackKind::Replace);
        }
        if r.gen::<f32>() < self.plan.noise_prob {
            return Some(AttackKind::InlierNoise);
        }
        if r.gen::<f32>() < self.plan.collude_prob {
            return Some(AttackKind::Collude);
        }
        None
    }

    /// Applies `kind` to an update vector in place, deterministically for
    /// the `(round, client)` cell that decided it.
    ///
    /// Every attack produces a finite update (the point is to *pass*
    /// validation), and every attack is a pure function of the seeds, the
    /// cell, and the honest update's own values — no cross-client state, so
    /// wave chunking and transport framing cannot change the result.
    pub fn apply(&self, round: usize, client: usize, kind: AttackKind, update: &mut [f32]) {
        if update.is_empty() {
            return;
        }
        match kind {
            AttackKind::SignFlip => {
                for v in update.iter_mut() {
                    *v = -*v;
                }
            }
            AttackKind::Scale => {
                for v in update.iter_mut() {
                    *v *= self.plan.scale_factor;
                }
            }
            AttackKind::Replace => {
                // Replace with a seeded direction at an amplified norm: the
                // classic model-replacement move, scaled by the plan factor
                // relative to the honest update so the magnitude tracks the
                // round's natural scale.
                let norm = l2_norm(update).max(1e-12);
                let target = norm * self.plan.scale_factor.abs().max(1.0);
                let mut r = self.cell_rng(round ^ 0x0A77, client);
                for v in update.iter_mut() {
                    *v = r.gen::<f32>() - 0.5;
                }
                let raw = l2_norm(update).max(1e-12);
                let s = target / raw;
                for v in update.iter_mut() {
                    *v *= s;
                }
            }
            AttackKind::InlierNoise => {
                // "A little is enough": perturb each coordinate by a
                // z-scaled multiple of the update's own standard deviation,
                // all in one seeded direction, so the result sits inside the
                // cohort's plausible spread yet biases the aggregate.
                let n = update.len() as f32;
                let mean = update.iter().sum::<f32>() / n;
                let var = update.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
                let sd = var.sqrt().max(1e-6);
                const Z: f32 = 1.5;
                let mut r = self.cell_rng(round ^ 0x0A11, client);
                for v in update.iter_mut() {
                    *v += Z * sd * (r.gen::<f32>() * 0.5 + 0.5);
                }
            }
            AttackKind::Collude => {
                // All colluders in the round push the same seeded direction
                // (derived from round + dim only, never the client), scaled
                // to each colluder's honest norm so the group passes norm
                // screens while pulling the aggregate one way.
                let norm = l2_norm(update).max(1e-12);
                let mut r = self.collusion_rng(round, update.len());
                for v in update.iter_mut() {
                    *v = r.gen::<f32>() - 0.5;
                }
                let raw = l2_norm(update).max(1e-12);
                let s = norm / raw;
                for v in update.iter_mut() {
                    *v *= s;
                }
            }
        }
    }

    /// RNG for the round's shared collusion direction — a function of the
    /// round and the model dimension only, so every colluder derives the
    /// same direction independently.
    fn collusion_rng(&self, round: usize, dim: usize) -> rand::rngs::StdRng {
        let mixed = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((dim as u64).wrapping_mul(0x99BC_F6822_u64 | 1));
        rng::seeded(mixed ^ 0xC011_0DE5_C011_0DE5)
    }
}

fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Per-client anomaly score for one round's accepted cohort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyScore {
    /// Client id.
    pub client: usize,
    /// Z-score of the update's L2 norm against the cohort.
    pub norm_z: f32,
    /// Z-score of the update's cosine similarity to the cohort's
    /// coordinate median against the cohort.
    pub cosine_z: f32,
}

impl AnomalyScore {
    /// Combined suspicion for this round: the worse of the two screens.
    pub fn suspicion(&self) -> f32 {
        self.norm_z.abs().max(self.cosine_z.abs())
    }
}

/// Scores every update in a cohort against the cohort itself.
///
/// Two screens per client, both reported as z-scores over the cohort:
/// update L2 norm (catches scaling / replacement) and cosine similarity to
/// the cohort's coordinate median (catches sign flips and collusion —
/// direction changes that norm screens miss). Cohorts smaller than three
/// clients score zero everywhere: there is no population to be anomalous
/// against.
///
/// Deterministic: pure arithmetic over the inputs, no RNG.
pub fn anomaly_scores(ids: &[usize], updates: &[&[f32]]) -> Vec<AnomalyScore> {
    let n = ids.len().min(updates.len());
    if n < 3 {
        return ids
            .iter()
            .take(n)
            .map(|&client| AnomalyScore {
                client,
                norm_z: 0.0,
                cosine_z: 0.0,
            })
            .collect();
    }
    let dim = updates.first().map_or(0, |u| u.len());
    // Unweighted coordinate median as the cohort's reference direction.
    let mut median = vec![0.0f32; dim];
    let mut col = Vec::with_capacity(n);
    for (d, m) in median.iter_mut().enumerate() {
        col.clear();
        col.extend(
            updates
                .iter()
                .take(n)
                .map(|u| u.get(d).copied().unwrap_or(0.0)),
        );
        col.sort_unstable_by(|a, b| a.total_cmp(b));
        let hi = col.get(n / 2).copied().unwrap_or(0.0);
        *m = if n % 2 == 1 {
            hi
        } else {
            0.5 * (col.get(n / 2 - 1).copied().unwrap_or(0.0) + hi)
        };
    }
    let med_norm = l2_norm(&median).max(1e-12);
    let norms: Vec<f32> = updates.iter().take(n).map(|u| l2_norm(u)).collect();
    let cosines: Vec<f32> = updates
        .iter()
        .take(n)
        .zip(&norms)
        .map(|(u, &un)| {
            let dot: f32 = u.iter().zip(&median).map(|(a, b)| a * b).sum();
            dot / (un.max(1e-12) * med_norm)
        })
        .collect();
    let z = |xs: &[f32]| -> (f32, f32) {
        let m = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / n as f32;
        (m, var.sqrt().max(1e-6))
    };
    let (nm, ns) = z(&norms);
    let (cm, cs) = z(&cosines);
    ids.iter()
        .take(n)
        .zip(norms.iter().zip(&cosines))
        .map(|(&client, (&norm, &cosine))| AnomalyScore {
            client,
            norm_z: (norm - nm) / ns,
            cosine_z: (cosine - cm) / cs,
        })
        .collect()
}

/// Z-score threshold above which one round counts as a strike.
const STRIKE_Z: f32 = 2.0;
/// Consecutive-ish strike budget before quarantine.
const QUARANTINE_STRIKES: u32 = 3;
/// EWMA factor for the persistent suspicion score.
const EWMA: f32 = 0.3;

/// Persistent per-client reputation: EWMA suspicion, strike counts, and the
/// quarantine flag, accumulated from per-round [`anomaly_scores`].
///
/// Quarantine is *sticky within a run* and persisted through the server
/// and trainer checkpoints, so a restart does not amnesty an adversary. A
/// client is quarantined after 3 rounds (`QUARANTINE_STRIKES`) whose
/// combined suspicion exceeded z = 2 (`STRIKE_Z`); a clean round decays
/// both the EWMA and
/// (by one) the strike count, so honest clients that drew one unlucky
/// z-score recover.
///
/// An empty book never influences sampling — the bit-identity guarantee
/// for unarmed runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReputationBook {
    entries: BTreeMap<usize, Reputation>,
}

/// One client's accumulated standing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Reputation {
    /// EWMA of the per-round combined suspicion.
    pub suspicion: f32,
    /// Rounds (net of decay) whose suspicion exceeded the strike threshold.
    pub strikes: u32,
    /// Whether the client is excluded from future cohorts.
    pub quarantined: bool,
}

impl ReputationBook {
    /// An empty book: nobody tracked, nobody quarantined.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the book tracks nobody (and therefore influences nothing).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds one round of anomaly scores into the book. Returns the clients
    /// newly quarantined by this round, in ascending id order.
    pub fn observe_round(&mut self, scores: &[AnomalyScore]) -> Vec<usize> {
        let mut newly = Vec::new();
        for s in scores {
            let e = self.entries.entry(s.client).or_default();
            let suspicion = s.suspicion();
            e.suspicion = (1.0 - EWMA) * e.suspicion + EWMA * suspicion;
            if suspicion > STRIKE_Z {
                e.strikes += 1;
                if e.strikes >= QUARANTINE_STRIKES && !e.quarantined {
                    e.quarantined = true;
                    newly.push(s.client);
                }
            } else {
                e.strikes = e.strikes.saturating_sub(1);
            }
        }
        newly
    }

    /// Whether a client is currently quarantined.
    pub fn is_quarantined(&self, client: usize) -> bool {
        self.entries
            .get(&client)
            .map(|e| e.quarantined)
            .unwrap_or(false)
    }

    /// The quarantined set, ascending — the exclusion input for sampling.
    pub fn quarantined(&self) -> BTreeSet<usize> {
        self.entries
            .iter()
            .filter(|(_, e)| e.quarantined)
            .map(|(&c, _)| c)
            .collect()
    }

    /// Number of quarantined clients.
    pub fn quarantined_count(&self) -> usize {
        self.entries.values().filter(|e| e.quarantined).count()
    }

    /// A client's current standing, if tracked.
    pub fn get(&self, client: usize) -> Option<Reputation> {
        self.entries.get(&client).copied()
    }

    /// Serializes the book as checkpoint lines: a `reputation <n>` header
    /// followed by one `rep <client> <suspicion-bits-hex> <strikes> <0|1>`
    /// line per tracked client. Empty books serialize to nothing, so
    /// checkpoints from unarmed runs stay byte-identical to main.
    pub fn to_checkpoint_lines(&self) -> String {
        use std::fmt::Write as _;
        if self.entries.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(out, "reputation {}", self.entries.len());
        for (client, e) in &self.entries {
            let _ = writeln!(
                out,
                "rep {client} {:08x} {} {}",
                e.suspicion.to_bits(),
                e.strikes,
                u8::from(e.quarantined)
            );
        }
        out
    }

    /// Parses the section written by [`ReputationBook::to_checkpoint_lines`]
    /// from a line iterator positioned at the `reputation` header. Returns
    /// an empty book when the header is absent (pre-reputation checkpoints).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed line.
    pub fn parse_checkpoint_lines<'a, I: Iterator<Item = &'a str>>(
        mut lines: std::iter::Peekable<I>,
    ) -> Result<ReputationBook, String> {
        let mut book = ReputationBook::new();
        let Some(header) = lines.peek() else {
            return Ok(book);
        };
        let Some(count) = header.strip_prefix("reputation ") else {
            return Ok(book);
        };
        let n: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("bad reputation count: {e}"))?;
        lines.next();
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("missing reputation entry {i}"))?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some("rep") {
                return Err(format!(
                    "reputation entry {i}: expected 'rep ...', got {line:?}"
                ));
            }
            let client: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("reputation entry {i}: bad client id"))?;
            let suspicion = parts
                .next()
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .map(f32::from_bits)
                .ok_or_else(|| format!("reputation entry {i}: bad suspicion bits"))?;
            let strikes: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("reputation entry {i}: bad strike count"))?;
            let quarantined = match parts.next() {
                Some("0") => false,
                Some("1") => true,
                other => {
                    return Err(format!(
                        "reputation entry {i}: bad quarantine flag {other:?}"
                    ))
                }
            };
            book.entries.insert(
                client,
                Reputation {
                    suspicion,
                    strikes,
                    quarantined,
                },
            );
        }
        Ok(book)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_plan() -> AttackPlan {
        AttackPlan {
            flip_prob: 0.2,
            scale_prob: 0.1,
            scale_factor: 10.0,
            replace_prob: 0.1,
            noise_prob: 0.1,
            collude_prob: 0.1,
            seed: 7,
        }
    }

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let plan =
            AttackPlan::parse("flip=0.1,scale=100:0.05,replace=0.02,noise=0.3,collude=0.04,seed=9")
                .unwrap();
        assert_eq!(plan.flip_prob, 0.1);
        assert_eq!(plan.scale_factor, 100.0);
        assert_eq!(plan.scale_prob, 0.05);
        assert_eq!(plan.replace_prob, 0.02);
        assert_eq!(plan.noise_prob, 0.3);
        assert_eq!(plan.collude_prob, 0.04);
        assert_eq!(plan.seed, 9);
        // Bare scale prob keeps the default factor.
        let bare = AttackPlan::parse("scale=0.25").unwrap();
        assert_eq!(bare.scale_prob, 0.25);
        assert_eq!(bare.scale_factor, 10.0);
    }

    #[test]
    fn parse_rejects_malformed_specs_naming_key_and_span() {
        // Every malformed shape: (spec, blamed key, byte span of the pair).
        let cases = [
            ("flip=2.0", "flip", (0, 8)),             // probability above 1
            ("flip=-0.1", "flip", (0, 9)),            // probability below 0
            ("flip=abc", "flip", (0, 8)),             // unparsable probability
            ("scale=0:0.5", "scale", (0, 11)),        // zero scale factor
            ("scale=inf:0.5", "scale", (0, 13)),      // non-finite scale factor
            ("scale=x:0.5", "scale", (0, 11)),        // unparsable scale factor
            ("scale=10:1.5", "scale", (0, 12)),       // scale prob out of range
            ("warp=0.1", "warp", (0, 8)),             // unknown key
            ("flip", "flip", (0, 4)),                 // missing `=`
            ("seed=abc", "seed", (0, 8)),             // unparsable seed
            ("flip=0.1, warp=0.2", "warp", (10, 18)), // span tracks later pairs
        ];
        for (spec, key, span) in cases {
            let err = AttackPlan::parse(spec).expect_err(spec);
            assert_eq!(err.family, "attack", "{spec}");
            assert_eq!(err.key, key, "{spec}");
            assert_eq!(err.span, span, "{spec}");
            // The span must cover the blamed key in the original input.
            assert!(
                spec.get(err.span.0..err.span.1)
                    .is_some_and(|frag| frag.contains(key)),
                "{spec}: span {:?} misses {key:?}",
                err.span
            );
        }
    }

    #[test]
    fn parse_errors_render_family_key_and_span() {
        let err = AttackPlan::parse("noise=0.1,collude=7").expect_err("collude=7");
        assert_eq!(
            err.to_string(),
            "attack spec: `collude` at bytes 10..19: 7 outside [0, 1]"
        );
    }

    #[test]
    fn default_plan_is_inactive_and_decides_nothing() {
        let inj = AttackInjector::new(AttackPlan::default());
        for round in 0..10 {
            for client in 0..50 {
                assert_eq!(inj.decide(round, client), None);
            }
        }
    }

    #[test]
    fn decisions_replay_bit_identically_from_the_seed() {
        let a = AttackInjector::for_run(armed_plan(), 42);
        let b = AttackInjector::for_run(armed_plan(), 42);
        for round in 0..20 {
            for client in 0..100 {
                assert_eq!(a.decide(round, client), b.decide(round, client));
            }
        }
    }

    #[test]
    fn different_run_seeds_decorrelate() {
        let a = AttackInjector::for_run(armed_plan(), 1);
        let b = AttackInjector::for_run(armed_plan(), 2);
        let differs = (0..50)
            .flat_map(|r| (0..50).map(move |c| (r, c)))
            .any(|(r, c)| a.decide(r, c) != b.decide(r, c));
        assert!(differs, "distinct run seeds must change the attack stream");
    }

    #[test]
    fn applied_attacks_replay_bit_identically() {
        let inj = AttackInjector::for_run(armed_plan(), 3);
        for kind in [
            AttackKind::SignFlip,
            AttackKind::Scale,
            AttackKind::Replace,
            AttackKind::InlierNoise,
            AttackKind::Collude,
        ] {
            let honest: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
            let mut a = honest.clone();
            let mut b = honest.clone();
            inj.apply(4, 9, kind, &mut a);
            inj.apply(4, 9, kind, &mut b);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "{kind:?} must be deterministic");
            assert_ne!(bits(&a), bits(&honest), "{kind:?} must change the update");
            assert!(a.iter().all(|v| v.is_finite()), "{kind:?} must stay finite");
        }
    }

    #[test]
    fn colluders_share_a_direction_and_match_their_own_norm() {
        let inj = AttackInjector::for_run(armed_plan(), 5);
        let mut a: Vec<f32> = (0..32).map(|i| 0.01 * i as f32).collect();
        let mut b: Vec<f32> = (0..32).map(|i| -0.02 * i as f32 + 0.1).collect();
        let (na, nb) = (l2_norm(&a), l2_norm(&b));
        inj.apply(2, 10, AttackKind::Collude, &mut a);
        inj.apply(2, 33, AttackKind::Collude, &mut b);
        assert!((l2_norm(&a) - na).abs() < 1e-3, "norm preserved");
        assert!((l2_norm(&b) - nb).abs() < 1e-3, "norm preserved");
        let cos: f32 =
            a.iter().zip(&b).map(|(x, y)| x * y).sum::<f32>() / (l2_norm(&a) * l2_norm(&b));
        assert!(cos > 0.999, "colluders aligned, cosine {cos}");
    }

    #[test]
    fn anomaly_scores_flag_the_scaled_outlier() {
        let honest: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..16).map(|d| 1.0 + 0.01 * (i * 16 + d) as f32).collect())
            .collect();
        let outlier: Vec<f32> = (0..16).map(|d| 100.0 + 0.01 * d as f32).collect();
        let mut refs: Vec<&[f32]> = honest.iter().map(|v| v.as_slice()).collect();
        refs.push(&outlier);
        let ids: Vec<usize> = (0..10).collect();
        let scores = anomaly_scores(&ids, &refs);
        let bad = scores.iter().find(|s| s.client == 9).unwrap();
        let worst_honest = scores
            .iter()
            .filter(|s| s.client != 9)
            .map(|s| s.suspicion())
            .fold(0.0f32, f32::max);
        assert!(
            bad.suspicion() > 2.0 && bad.suspicion() > worst_honest,
            "outlier suspicion {} vs honest max {worst_honest}",
            bad.suspicion()
        );
    }

    #[test]
    fn anomaly_scores_flag_the_sign_flipped_direction() {
        let honest: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..16).map(|d| 1.0 + 0.01 * (i + d) as f32).collect())
            .collect();
        let flipped: Vec<f32> = honest[0].iter().map(|v| -v).collect();
        let mut refs: Vec<&[f32]> = honest.iter().map(|v| v.as_slice()).collect();
        refs.push(&flipped);
        let ids: Vec<usize> = (0..10).collect();
        let scores = anomaly_scores(&ids, &refs);
        let bad = scores.iter().find(|s| s.client == 9).unwrap();
        assert!(
            bad.cosine_z.abs() > 2.0,
            "flipped client's cosine z {} should stand out",
            bad.cosine_z
        );
    }

    #[test]
    fn tiny_cohorts_score_zero() {
        let a = [1.0f32, 2.0];
        let b = [2.0f32, 1.0];
        let scores = anomaly_scores(&[3, 4], &[&a, &b]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.suspicion() == 0.0));
    }

    #[test]
    fn repeated_strikes_quarantine_and_clean_rounds_recover() {
        let mut book = ReputationBook::new();
        let hot = AnomalyScore {
            client: 7,
            norm_z: 5.0,
            cosine_z: 0.0,
        };
        let cold = AnomalyScore {
            client: 7,
            norm_z: 0.1,
            cosine_z: 0.1,
        };
        assert!(book.observe_round(&[hot]).is_empty());
        assert!(book.observe_round(&[hot]).is_empty());
        assert_eq!(book.observe_round(&[hot]), vec![7], "third strike");
        assert!(book.is_quarantined(7));
        assert_eq!(book.quarantined_count(), 1);

        // A different, honest client accumulates nothing.
        let mut honest_book = ReputationBook::new();
        honest_book.observe_round(&[hot, cold]);
        let fine = AnomalyScore { client: 2, ..cold };
        for _ in 0..10 {
            honest_book.observe_round(&[fine]);
        }
        assert!(!honest_book.is_quarantined(2));
        // One unlucky strike then clean rounds: strikes decay back to zero.
        let unlucky = AnomalyScore { client: 3, ..hot };
        let lucky = AnomalyScore { client: 3, ..cold };
        honest_book.observe_round(&[unlucky]);
        honest_book.observe_round(&[lucky]);
        assert_eq!(honest_book.get(3).unwrap().strikes, 0);
    }

    #[test]
    fn book_round_trips_through_checkpoint_lines() {
        let mut book = ReputationBook::new();
        let s = AnomalyScore {
            client: 11,
            norm_z: 4.5,
            cosine_z: -3.0,
        };
        book.observe_round(&[s]);
        book.observe_round(&[s]);
        book.observe_round(&[s]);
        assert!(book.is_quarantined(11));
        let text = book.to_checkpoint_lines();
        let back =
            ReputationBook::parse_checkpoint_lines(text.lines().peekable()).expect("round trip");
        assert_eq!(back, book, "bit-exact through the hex encoding");

        // Empty books write nothing and parse back from nothing.
        assert!(ReputationBook::new().to_checkpoint_lines().is_empty());
        let empty =
            ReputationBook::parse_checkpoint_lines("".lines().peekable()).expect("empty ok");
        assert!(empty.is_empty());
    }

    #[test]
    fn malformed_reputation_sections_error_loudly() {
        for bad in [
            "reputation 2\nrep 1 3f800000 0 0\n",
            "reputation 1\nrep x 3f800000 0 0\n",
            "reputation 1\nrep 1 zz 0 0\n",
            "reputation 1\nrep 1 3f800000 0 7\n",
            "reputation nope\n",
        ] {
            assert!(
                ReputationBook::parse_checkpoint_lines(bad.lines().peekable()).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }
}
