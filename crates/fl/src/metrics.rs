//! Accuracy statistics: the paper's two headline numbers.
//!
//! Every experiment in the paper reports the **mean** of per-client test
//! accuracies (overall performance) and their **variance** (fairness — lower
//! is fairer, §III-A). [`Stats`] computes both plus the spread measures used
//! in Table I (std) and the per-client extremes.

use serde::{Deserialize, Serialize};

/// Summary statistics over per-client accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of clients.
    pub count: usize,
    /// Mean accuracy in `[0, 1]`.
    pub mean: f32,
    /// Population variance of accuracies (the paper's fairness measure).
    pub variance: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Worst client accuracy.
    pub min: f32,
    /// Best client accuracy.
    pub max: f32,
}

impl Stats {
    /// Computes statistics from per-client accuracies.
    ///
    /// Returns all-zero stats for an empty slice.
    pub fn from_accuracies(values: &[f32]) -> Self {
        if values.is_empty() {
            return Stats {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f32;
        let mean = values.iter().sum::<f32>() / n;
        let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        Stats {
            count: values.len(),
            mean,
            variance,
            std: variance.sqrt(),
            min: values.iter().cloned().fold(f32::INFINITY, f32::min),
            max: values.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
        }
    }

    /// Mean accuracy in percent (paper-style `mean ± std` reporting).
    pub fn mean_percent(&self) -> f32 {
        self.mean * 100.0
    }

    /// Standard deviation in percentage points (Table I style).
    pub fn std_percent(&self) -> f32 {
        self.std * 100.0
    }

    /// Formats as the paper's `mean ± std` (percent).
    pub fn paper_format(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean_percent(), self.std_percent())
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.4} var {:.4} (n={})",
            self.mean, self.variance, self.count
        )
    }
}

/// Jain's fairness index over per-client accuracies, in `(0, 1]`.
///
/// `J = (Σa)² / (n · Σa²)`; 1 means perfectly uniform accuracies, `1/n`
/// means all accuracy concentrated on one client. A standard complement to
/// the paper's variance-based fairness measure.
///
/// Returns 0 for an empty slice or all-zero accuracies.
pub fn jain_index(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f32 = values.iter().sum();
    let sum_sq: f32 = values.iter().map(|v| v * v).sum();
    if sum_sq <= 0.0 {
        return 0.0;
    }
    (sum * sum) / (values.len() as f32 * sum_sq)
}

/// Mean accuracy of the worst `fraction` of clients (e.g. 0.1 = worst
/// decile) — the "how bad is it for the unluckiest clients" view of
/// fairness.
///
/// At least one client is always included. Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn worst_fraction_mean(values: &[f32], fraction: f32) -> f32 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let count = ((values.len() as f32 * fraction).ceil() as usize).max(1);
    sorted[..count].iter().sum::<f32>() / count as f32
}

/// A multi-class confusion matrix (rows = actual class, columns =
/// predicted class).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        ConfusionMatrix {
            counts: vec![vec![0; num_classes]; num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(
            actual < self.counts.len(),
            "actual class {actual} out of range"
        );
        assert!(
            predicted < self.counts.len(),
            "predicted class {predicted} out of range"
        );
        self.counts[actual][predicted] += 1;
    }

    /// Builds a matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range classes.
    pub fn from_predictions(actual: &[usize], predicted: &[usize], num_classes: usize) -> Self {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        let mut m = ConfusionMatrix::new(num_classes);
        for (&a, &p) in actual.iter().zip(predicted) {
            m.record(a, p);
        }
        m
    }

    /// Count at `(actual, predicted)`; 0 when either class is out of range.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts
            .get(actual)
            .and_then(|row| row.get(predicted))
            .copied()
            .unwrap_or(0)
    }

    /// Total recorded predictions.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy (diagonal mass / total); 0 when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f32 / total as f32
    }

    /// Per-class recall; classes with no samples report 0.
    pub fn per_class_recall(&self) -> Vec<f32> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    row[i] as f32 / total as f32
                }
            })
            .collect()
    }
}

/// Pearson correlation coefficient between two equal-length samples, in
/// `[-1, 1]`. Returns 0 when either side is constant or empty.
///
/// Used in the fairness analysis to relate per-client accuracy to client
/// properties (e.g. local class count).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len() as f32;
    if a.is_empty() {
        return 0.0;
    }
    let mean_a = a.iter().sum::<f32>() / n;
    let mean_b = b.iter().sum::<f32>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a) * (x - mean_a);
        var_b += (y - mean_b) * (y - mean_b);
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_accuracy_and_recall() {
        let actual = vec![0, 0, 1, 1, 2, 2];
        let predicted = vec![0, 1, 1, 1, 2, 0];
        let m = ConfusionMatrix::from_predictions(&actual, &predicted, 3);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-6);
        let recall = m.per_class_recall();
        assert!((recall[0] - 0.5).abs() < 1e-6);
        assert!((recall[1] - 1.0).abs() < 1e-6);
        assert!((recall[2] - 0.5).abs() < 1e-6);
        assert_eq!(m.count(0, 1), 1);
    }

    #[test]
    fn empty_confusion_matrix_reports_zero() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.per_class_recall(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_rejects_bad_class() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 5);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let neg: Vec<f32> = b.iter().map(|v| -v).collect();
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn jain_index_is_one_for_uniform() {
        assert!((jain_index(&[0.7, 0.7, 0.7]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn jain_index_is_one_over_n_for_concentrated() {
        let j = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-6);
    }

    #[test]
    fn jain_index_orders_fairness() {
        let fair = jain_index(&[0.7, 0.72, 0.71]);
        let unfair = jain_index(&[0.2, 0.9, 0.95]);
        assert!(fair > unfair);
    }

    #[test]
    fn jain_handles_degenerate_inputs() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn worst_fraction_selects_bottom() {
        let v = [0.9, 0.1, 0.8, 0.2, 0.7];
        assert!((worst_fraction_mean(&v, 0.4) - 0.15).abs() < 1e-6);
        assert!((worst_fraction_mean(&v, 1.0) - 0.54).abs() < 1e-6);
    }

    #[test]
    fn worst_fraction_includes_at_least_one() {
        assert_eq!(worst_fraction_mean(&[0.3, 0.9], 0.01), 0.3);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn worst_fraction_rejects_zero() {
        worst_fraction_mean(&[0.5], 0.0);
    }

    #[test]
    fn uniform_accuracies_have_zero_variance() {
        let s = Stats::from_accuracies(&[0.8, 0.8, 0.8]);
        assert_eq!(s.mean, 0.8);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn known_values() {
        let s = Stats::from_accuracies(&[0.0, 1.0]);
        assert_eq!(s.mean, 0.5);
        assert!((s.variance - 0.25).abs() < 1e-7);
        assert!((s.std - 0.5).abs() < 1e-7);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let s = Stats::from_accuracies(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn paper_format_is_percent() {
        let s = Stats::from_accuracies(&[0.5, 0.7]);
        assert_eq!(s.paper_format(), "60.00 ± 10.00");
    }

    #[test]
    fn fairness_ordering_matches_intuition() {
        let fair = Stats::from_accuracies(&[0.70, 0.72, 0.71, 0.69]);
        let unfair = Stats::from_accuracies(&[0.95, 0.40, 0.90, 0.55]);
        assert!(fair.variance < unfair.variance);
    }
}
