//! Round orchestration shared by every training loop.
//!
//! [`RoundScheduler`] owns the three per-run decisions that used to be
//! duplicated inside `pfl_ssl` and the Calibre framework loop: which
//! clients participate in a round (a fixed schedule or a seeded
//! [`Sampler`]), what faults are injected ([`FaultInjector`]), and how the
//! round is executed and aggregated ([`RoundPolicy`]).
//!
//! Two execution paths share that state:
//!
//! * [`RoundScheduler::run_round`] — the collect-then-aggregate path used
//!   by training: full per-client telemetry, retries, and state caching via
//!   [`run_round_resilient`]. Memory is O(cohort × model).
//! * [`RoundScheduler::run_round_streaming`] — the massive-cohort path:
//!   updates are folded into an [`UpdateSink`] the moment a wave of workers
//!   finishes, so aggregation state is O(model) (or O(groups × model) for a
//!   [`crate::aggregate::HierarchicalSink`]) no matter how many clients
//!   participate. See `DESIGN.md` §11 for the scaling model.
//!
//! # Determinism
//!
//! Both paths are replay-identical: selection depends only on
//! `(seed, round)`, fault decisions only on `(round, client, attempt)`, and
//! updates are folded in selection-slot order (the parallel maps preserve
//! input order). With an inactive chaos plan and the default policy,
//! `run_round` is bit-identical to the historical nominal loop — the
//! golden-checksum tests pin this through the training entry points.

use crate::adversary::{anomaly_scores, AttackInjector, AttackPlan, ReputationBook};
use crate::aggregate::UpdateSink;
use crate::chaos::{ClientFault, FaultInjector, FaultPlan};
use crate::comm::BYTES_PER_PARAM;
use crate::config::FlConfig;
use crate::parallel::parallel_map;
use crate::resilient::{
    run_round_resilient, AcceptedClient, ClientOutcome, ResilientRound, RoundPolicy,
};
use crate::sampler::Sampler;
use crate::transport::{StreamUpdate, Transport, TransportError, WaveSlot};
use calibre_telemetry::{metrics, ClientLosses, Recorder};

/// How a scheduler picks each round's cohort.
#[derive(Debug, Clone)]
enum Selection {
    /// A precomputed per-round schedule (the training loops' historical
    /// behaviour via [`FlConfig::selection_schedule`]).
    Fixed(Vec<Vec<usize>>),
    /// A seeded [`Sampler`] over a large population.
    Sampled {
        sampler: Sampler,
        population: usize,
        cohort: usize,
        rounds: usize,
    },
}

/// Per-round context the caller threads into [`RoundScheduler::run_round`]:
/// the telemetry sink plus the few quantities only the caller knows.
pub struct RoundContext<'a> {
    /// Destination for the round's telemetry events.
    pub recorder: &'a dyn Recorder,
    /// Parameter count pushed down to each client (the global model size),
    /// used for observed-bytes accounting.
    pub downlink_params: usize,
    /// Planned communication volume for the round (shape-derived).
    pub planned_bytes: u64,
    /// Mean loss to report if the round is skipped (usually the previous
    /// round's, so histories stay finite).
    pub fallback_loss: f32,
    /// Mean divergence to report if the round is skipped.
    pub fallback_divergence: f32,
}

impl std::fmt::Debug for RoundContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundContext")
            .field("downlink_params", &self.downlink_params)
            .field("planned_bytes", &self.planned_bytes)
            .field("fallback_loss", &self.fallback_loss)
            .field("fallback_divergence", &self.fallback_divergence)
            .finish_non_exhaustive()
    }
}

/// Result of one scheduled (collect-then-aggregate) round: the resilient
/// round plus the loss/divergence means the loop histories record.
#[derive(Debug)]
pub struct ScheduledRound<S, P> {
    /// Accepted clients, rejected states, aggregate, and fault accounting.
    pub round: ResilientRound<S, P>,
    /// Mean client loss over accepted clients (fallback if skipped).
    pub mean_loss: f32,
    /// Mean client divergence over accepted clients (fallback if skipped).
    pub mean_divergence: f32,
}

/// Result of one streaming round over a massive cohort.
#[derive(Debug)]
pub struct StreamedRound {
    /// Cohort size this round (selected clients).
    pub cohort: usize,
    /// Updates folded into the sink.
    pub accepted: usize,
    /// Clients that never reported (dropout or mid-update panic — the
    /// streaming path does not retry).
    pub dropped: usize,
    /// Updates rejected by validation (non-finite).
    pub rejected: usize,
    /// Sum of the folded aggregation weights.
    pub weight_sum: f32,
    /// Whether the round missed the minimum quorum (no aggregate).
    pub skipped: bool,
    /// The aggregate, unless the round was skipped.
    pub aggregated: Option<Vec<f32>>,
    /// Peak bytes held by the aggregation path (sink state + quorum buffer
    /// + in-flight wave) — the O(model) quantity the `cohort` bench pins.
    pub peak_state_bytes: usize,
    /// Mean reported loss over accepted clients (0 when none reported a
    /// loss — the tuple-based [`RoundScheduler::run_round_streaming`] entry
    /// reports no losses).
    pub mean_loss: f32,
    /// Mean reported divergence over accepted clients (0 when untracked).
    pub mean_divergence: f32,
}

/// The quorum hold-then-flush gate shared by every streaming fold path.
///
/// A fold cannot be undone, so the first `min_quorum - 1` validated updates
/// are buffered; once the quorum is certain the buffer is flushed and
/// subsequent updates stream straight into the sink. The buffer is
/// O(min_quorum × model), independent of cohort size. Fold indices are
/// assigned in acceptance order, so replaying the same acceptance sequence
/// folds bit-identically.
struct FoldGate {
    min_quorum: usize,
    held: Vec<(usize, Vec<f32>, f32)>,
    held_bytes: usize,
    accepted: usize,
    weight_sum: f32,
    loss_sum: f32,
    div_sum: f32,
    slot: usize,
}

impl FoldGate {
    fn new(min_quorum: usize) -> Self {
        FoldGate {
            min_quorum: min_quorum.max(1),
            held: Vec::new(),
            held_bytes: 0,
            accepted: 0,
            weight_sum: 0.0,
            loss_sum: 0.0,
            div_sum: 0.0,
            slot: 0,
        }
    }

    /// Accepts one validated update: buffers it while the quorum is
    /// uncertain, otherwise flushes the buffer and folds.
    fn accept(
        &mut self,
        sink: &mut dyn UpdateSink,
        update: Vec<f32>,
        weight: f32,
        loss: f32,
        divergence: f32,
    ) {
        self.accepted += 1;
        self.weight_sum += weight;
        self.loss_sum += loss;
        self.div_sum += divergence;
        if self.accepted <= self.min_quorum && self.held.len() + 1 < self.min_quorum {
            self.held_bytes += update.len() * std::mem::size_of::<f32>();
            self.held.push((self.slot, update, weight));
        } else {
            for (s, u, w) in self.held.drain(..) {
                let _ = sink.fold(s, &u, w);
            }
            self.held_bytes = 0;
            let _ = sink.fold(self.slot, &update, weight);
        }
        self.slot += 1;
    }

    /// Bytes currently buffered awaiting quorum certainty.
    fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Mean loss/divergence over accepted updates (0 when none accepted).
    fn means(&self) -> (f32, f32) {
        if self.accepted == 0 {
            (0.0, 0.0)
        } else {
            // analyze:allow(lossy-cast) -- cohort sizes sit far below f32
            // integer precision loss (2^24).
            let nf = self.accepted as f32;
            (self.loss_sum / nf, self.div_sum / nf)
        }
    }
}

/// Holds the round's accepted updates for post-round anomaly scoring.
/// Inert (and allocation-free) unless detection is armed; when armed its
/// bytes are accounted into `peak_state_bytes`, making the O(cohort ×
/// model) cost of detection visible to the memory gates.
struct DetectionBuffer {
    armed: bool,
    watch: Vec<(usize, Vec<f32>)>,
    bytes: usize,
}

impl DetectionBuffer {
    fn new(armed: bool) -> Self {
        DetectionBuffer {
            armed,
            watch: Vec::new(),
            bytes: 0,
        }
    }

    /// Records one accepted update (exactly as the aggregator saw it).
    fn push(&mut self, id: usize, update: &[f32]) {
        if self.armed {
            self.bytes += std::mem::size_of_val(update);
            self.watch.push((id, update.to_vec()));
        }
    }

    /// Bytes currently held for scoring (0 when detection is off).
    fn bytes(&self) -> usize {
        self.bytes
    }

    /// Scores the held updates and folds them into the scheduler's
    /// reputation book. Skipped rounds still observe: detection must not
    /// pause while an adversary suppresses quorum.
    fn observe(self, scheduler: &RoundScheduler, round: usize, recorder: &dyn Recorder) {
        if !self.armed || self.watch.is_empty() {
            return;
        }
        let ids: Vec<usize> = self.watch.iter().map(|(id, _)| *id).collect();
        let updates: Vec<&[f32]> = self.watch.iter().map(|(_, u)| u.as_slice()).collect();
        scheduler.observe_round(round, &ids, &updates, recorder);
    }
}

/// Owns selection, fault injection, adversary simulation, anomaly
/// detection, and round policy for a training run.
///
/// # Determinism
///
/// Selection, chaos, and attack decisions are all re-derived from
/// `(seed, round, client)`, so calling [`RoundScheduler::select`] twice —
/// or resuming a checkpointed run at round `k` — yields exactly the
/// schedule of an uninterrupted run. The one piece of mutable state is the
/// [`ReputationBook`]: it folds anomaly scores round by round, and because
/// the scores themselves are deterministic, a resumed run that restores
/// the book from a checkpoint (via [`RoundScheduler::with_reputation`])
/// replays identically too. An empty book leaves [`RoundScheduler::select`]
/// bit-identical to a detection-free scheduler.
///
/// # Examples
///
/// Sampling a 32-client cohort from a 10k population and streaming the
/// round through a constant-memory sink:
///
/// ```
/// use calibre_fl::aggregate::StreamingWeightedSink;
/// use calibre_fl::sampler::{Sampler, SamplerKind};
/// use calibre_fl::scheduler::RoundScheduler;
/// use calibre_telemetry::NullRecorder;
///
/// let scheduler =
///     RoundScheduler::sampled(Sampler::new(SamplerKind::Uniform, 7), 10_000, 32, 3);
/// assert_eq!(scheduler.rounds(), 3);
/// let selected = scheduler.select(0, None);
/// assert_eq!(selected, scheduler.select(0, None), "replay-identical");
///
/// let mut sink = StreamingWeightedSink::new();
/// let out = scheduler.run_round_streaming(
///     0,
///     &selected,
///     8,
///     &mut sink,
///     |client| (vec![client as f32; 4], 1.0),
///     &NullRecorder,
/// );
/// assert_eq!(out.accepted, 32);
/// assert!(!out.skipped);
/// assert_eq!(out.aggregated.unwrap().len(), 4);
/// ```
#[derive(Debug)]
pub struct RoundScheduler {
    selection: Selection,
    injector: Option<FaultInjector>,
    attacker: Option<AttackInjector>,
    detect: bool,
    reputation: std::cell::RefCell<ReputationBook>,
    policy: RoundPolicy,
}

impl RoundScheduler {
    /// The training loops' scheduler: fixed selection schedule, chaos
    /// injector, and round policy all taken from the run config.
    pub fn from_config(cfg: &FlConfig, num_clients: usize) -> Self {
        RoundScheduler {
            selection: Selection::Fixed(cfg.selection_schedule(num_clients)),
            injector: cfg
                .chaos
                .is_active()
                .then(|| FaultInjector::for_run(cfg.chaos.clone(), cfg.seed)),
            attacker: cfg
                .attack
                .is_active()
                .then(|| AttackInjector::for_run(cfg.attack.clone(), cfg.seed)),
            detect: cfg.detect,
            reputation: std::cell::RefCell::new(ReputationBook::new()),
            policy: cfg.policy,
        }
    }

    /// A scheduler that samples `cohort` of `population` clients per round
    /// for `rounds` rounds, with the default [`RoundPolicy`] and no chaos.
    pub fn sampled(sampler: Sampler, population: usize, cohort: usize, rounds: usize) -> Self {
        RoundScheduler {
            selection: Selection::Sampled {
                sampler,
                population,
                cohort,
                rounds,
            },
            injector: None,
            attacker: None,
            detect: false,
            reputation: std::cell::RefCell::new(ReputationBook::new()),
            policy: RoundPolicy::default(),
        }
    }

    /// Replaces the round policy (quorum, aggregator, clipping).
    pub fn with_policy(mut self, policy: RoundPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms deterministic fault injection with the given plan and run seed
    /// (a no-op for inactive plans, matching the training loops).
    pub fn with_chaos(mut self, plan: FaultPlan, run_seed: u64) -> Self {
        self.injector = plan
            .is_active()
            .then(|| FaultInjector::for_run(plan, run_seed));
        self
    }

    /// Arms deterministic Byzantine-client simulation with the given
    /// [`AttackPlan`] and run seed (a no-op for inactive plans). Attack
    /// decisions are a pure function of `(plan.seed, run_seed, round,
    /// client)` and independent of the chaos stream, so arming both never
    /// correlates their draws.
    pub fn with_attack(mut self, plan: AttackPlan, run_seed: u64) -> Self {
        self.attacker = plan
            .is_active()
            .then(|| AttackInjector::for_run(plan, run_seed));
        self
    }

    /// Enables server-side anomaly detection: each executed round scores
    /// the accepted updates ([`anomaly_scores`]), folds them into the
    /// [`ReputationBook`], and quarantined clients stop being drawn by
    /// [`RoundScheduler::select`]. Detection holds the round's accepted
    /// updates (O(cohort × model) — accounted into `peak_state_bytes` on
    /// the streaming paths), so leave it off for massive-cohort runs.
    pub fn with_detection(mut self, on: bool) -> Self {
        self.detect = on;
        self
    }

    /// Restores reputation state from a checkpoint, so a resumed run
    /// quarantines exactly as the uninterrupted run would.
    pub fn with_reputation(mut self, book: ReputationBook) -> Self {
        self.reputation = std::cell::RefCell::new(book);
        self
    }

    /// A snapshot of the current reputation state (for checkpointing).
    pub fn reputation(&self) -> ReputationBook {
        self.reputation.borrow().clone()
    }

    /// The round policy this scheduler executes under.
    pub fn policy(&self) -> &RoundPolicy {
        &self.policy
    }

    /// Total number of rounds in the run.
    pub fn rounds(&self) -> usize {
        match &self.selection {
            Selection::Fixed(schedule) => schedule.len(),
            Selection::Sampled { rounds, .. } => *rounds,
        }
    }

    /// The cohort for `round`, sorted ascending. `scores` feeds weighted
    /// samplers (see [`Sampler::select`]); fixed schedules ignore it.
    ///
    /// Quarantined clients (see [`RoundScheduler::with_detection`]) are
    /// never drawn: sampled selections route through
    /// [`Sampler::select_excluding`], fixed schedules are filtered. With an
    /// empty reputation book the selection is bit-identical to a
    /// detection-free scheduler.
    pub fn select(&self, round: usize, scores: Option<&[f32]>) -> Vec<usize> {
        let banned = self.reputation.borrow().quarantined();
        match &self.selection {
            Selection::Fixed(schedule) => {
                let mut selected = schedule.get(round).cloned().unwrap_or_default();
                if !banned.is_empty() {
                    selected.retain(|id| !banned.contains(id));
                }
                selected
            }
            Selection::Sampled {
                sampler,
                population,
                cohort,
                ..
            } => sampler.select_excluding(round, *population, *cohort, scores, &banned),
        }
    }

    /// Emits one [`calibre_telemetry::Event::Attack`] per cohort member the
    /// adversary plan fires on this round. Decisions are pure per
    /// `(round, client)`, so the event stream is identical on every
    /// execution path regardless of chaos dropouts downstream.
    fn record_attacks(&self, round: usize, selected: &[usize], recorder: &dyn Recorder) {
        if let Some(atk) = &self.attacker {
            for &id in selected {
                if let Some(kind) = atk.decide(round, id) {
                    recorder.attack(round, id, kind.kind_tag());
                }
            }
        }
    }

    /// Folds one executed round's anomaly scores into the reputation book
    /// and emits a [`calibre_telemetry::Event::Quarantine`] per newly
    /// quarantined client. `updates` are the accepted updates exactly as
    /// the aggregator saw them.
    fn observe_round(
        &self,
        round: usize,
        ids: &[usize],
        updates: &[&[f32]],
        recorder: &dyn Recorder,
    ) {
        if !self.detect || ids.is_empty() {
            return;
        }
        let scores = anomaly_scores(ids, updates);
        let newly = self.reputation.borrow_mut().observe_round(&scores);
        for client in newly {
            let suspicion = scores
                .iter()
                .find(|s| s.client == client)
                .map_or(0.0, crate::adversary::AnomalyScore::suspicion);
            recorder.quarantine(round, client, suspicion);
        }
        metrics::gauge_set(
            "calibre_quarantined_clients",
            &[],
            self.reputation.borrow().quarantined_count() as f64,
        );
    }

    /// Executes one collect-then-aggregate round with full telemetry.
    ///
    /// This is [`run_round_resilient`] plus the event choreography the
    /// training loops used to inline: `round_start`, one `client_update`
    /// per accepted client (losses and divergence extracted from the
    /// payload by `losses_of`), `aggregate`, and `round_end` with the
    /// per-client wall-clock/loss vectors and byte accounting. The caller
    /// keeps what is loop-specific: loading the aggregate into the global
    /// model, returning states to its cache, and recording the means.
    #[allow(clippy::too_many_arguments)] // mirrors run_round_resilient's surface
    pub fn run_round<S, P, MS, W, WF, L>(
        &self,
        round: usize,
        selected: &[usize],
        ctx: &RoundContext<'_>,
        make_state: MS,
        work: W,
        weights_of: WF,
        losses_of: L,
    ) -> ScheduledRound<S, P>
    where
        S: Send,
        P: Send,
        MS: FnMut(usize) -> S,
        W: Fn(usize, S) -> ClientOutcome<S, P> + Sync,
        WF: FnOnce(&[AcceptedClient<S, P>]) -> Vec<f32>,
        L: Fn(&P) -> (ClientLosses, f32),
    {
        ctx.recorder.round_start(round, selected);
        self.record_attacks(round, selected, ctx.recorder);
        // Inert unless `--metrics-addr` enabled the registry; the guard
        // observes the round's wall-clock into the export histogram on drop.
        let _round_timer =
            metrics::start_timer("calibre_round_duration_ms", &[("path", "collect")]);
        // The adversary compromises the client, so its tampering happens in
        // the client's work function — before server-side chaos corruption,
        // validation, and clipping get their turn.
        let attacker = self.attacker.as_ref();
        let work = move |id: usize, state: S| {
            let mut outcome = work(id, state);
            if let Some(atk) = attacker {
                if let Some(kind) = atk.decide(round, id) {
                    atk.apply(round, id, kind, &mut outcome.flat);
                }
            }
            outcome
        };
        let outcome = run_round_resilient(
            round,
            selected,
            make_state,
            work,
            weights_of,
            self.injector.as_ref(),
            &self.policy,
            ctx.recorder,
        );
        {
            let ids: Vec<usize> = outcome.accepted.iter().map(|a| a.id).collect();
            let updates: Vec<&[f32]> = outcome.accepted.iter().map(|a| a.flat.as_slice()).collect();
            self.observe_round(round, &ids, &updates, ctx.recorder);
        }

        let mut client_wall_ms = Vec::with_capacity(outcome.accepted.len());
        let mut client_loss = Vec::with_capacity(outcome.accepted.len());
        let mut observed_bytes = 0u64;
        let mut div_sum = 0.0f32;
        for a in &outcome.accepted {
            let (losses, divergence) = losses_of(&a.payload);
            ctx.recorder
                .client_update(round, a.id, a.wall, losses, divergence);
            client_wall_ms.push(a.wall.as_secs_f64() * 1e3);
            client_loss.push(losses.total);
            div_sum += divergence;
            // One model down, one model up per client.
            observed_bytes += ((a.flat.len() + ctx.downlink_params) * BYTES_PER_PARAM) as u64;
        }

        let n = outcome.accepted.len();
        let (mean_loss, mean_divergence) = if n == 0 {
            (ctx.fallback_loss, ctx.fallback_divergence)
        } else {
            // Division (not multiply-by-reciprocal) to stay bit-identical
            // with the historical inline loops.
            // analyze:allow(lossy-cast) -- cohort sizes sit far below f32
            // integer precision loss (2^24).
            let nf = n as f32;
            (client_loss.iter().sum::<f32>() / nf, div_sum / nf)
        };
        ctx.recorder
            .aggregate(round, outcome.report.quorum, outcome.report.weight_sum);
        ctx.recorder.round_end(
            round,
            mean_loss,
            &client_wall_ms,
            &client_loss,
            ctx.planned_bytes,
            observed_bytes,
        );

        metrics::counter_add("calibre_rounds_total", &[("path", "collect")], 1);
        metrics::counter_add("calibre_clients_accepted_total", &[], n as u64);
        metrics::counter_add(
            "calibre_clients_rejected_total",
            &[],
            outcome.rejected_states.len() as u64,
        );
        metrics::observe(
            "calibre_round_quorum",
            &[("path", "collect")],
            outcome.report.quorum as f64,
        );
        metrics::counter_add(
            "calibre_quorum_outcomes_total",
            &[(
                "outcome",
                if outcome.report.skipped {
                    "missed"
                } else {
                    "met"
                },
            )],
            1,
        );
        if outcome.report.skipped {
            metrics::counter_add("calibre_rounds_skipped_total", &[("path", "collect")], 1);
        }
        metrics::gauge_set("calibre_round_mean_loss", &[], f64::from(mean_loss));

        ScheduledRound {
            round: outcome,
            mean_loss,
            mean_divergence,
        }
    }

    /// Executes one round over a massive cohort, folding updates into
    /// `sink` wave by wave so aggregation memory stays at the sink's
    /// O(model) state bound.
    ///
    /// `work` maps a client id to its `(update, weight)` pair and runs on
    /// the worker pool, at most `wave` clients in flight at once; results
    /// are folded in selection-slot order, so a replay folds identically.
    /// Chaos composes with sampling: dropout and mid-update panics remove
    /// the client for the round (the streaming path does not retry —
    /// at cohort scale a lost client is noise, and the next round resamples),
    /// stragglers still report (their delay is accounted, not slept), and
    /// corrupted updates face the same validation and norm clipping as the
    /// resilient path.
    ///
    /// Because a fold cannot be undone, the first
    /// [`RoundPolicy::min_quorum`] validated updates are buffered and only
    /// flushed into the sink once the quorum is reached — a round that
    /// misses quorum leaves the sink untouched and reports
    /// `skipped: true`. The buffer is O(min_quorum × model), independent of
    /// cohort size.
    ///
    /// Telemetry is deliberately lean — one `aggregate` event, plus
    /// `round_resilience` when anything non-nominal happened. Per-client
    /// `client_update` events would dominate the run at 100k clients; the
    /// bench layer reports cohort-level summaries instead.
    pub fn run_round_streaming<W>(
        &self,
        round: usize,
        selected: &[usize],
        wave: usize,
        sink: &mut dyn UpdateSink,
        work: W,
        recorder: &dyn Recorder,
    ) -> StreamedRound
    where
        W: Fn(usize) -> (Vec<f32>, f32) + Sync,
    {
        self.run_round_streaming_with(
            round,
            selected,
            wave,
            sink,
            |id| {
                let (update, weight) = work(id);
                StreamUpdate {
                    update,
                    weight,
                    loss: 0.0,
                    divergence: 0.0,
                }
            },
            recorder,
        )
    }

    /// [`RoundScheduler::run_round_streaming`] for workloads that also
    /// report per-client loss and divergence: `work` returns a full
    /// [`StreamUpdate`], and the result's `mean_loss`/`mean_divergence`
    /// average the accepted clients' reports. This is the entry the
    /// training loops use when they stream above the cohort threshold
    /// ([`FlConfig::streaming`]).
    pub fn run_round_streaming_with<W>(
        &self,
        round: usize,
        selected: &[usize],
        wave: usize,
        sink: &mut dyn UpdateSink,
        work: W,
        recorder: &dyn Recorder,
    ) -> StreamedRound
    where
        W: Fn(usize) -> StreamUpdate + Sync,
    {
        let wave = wave.max(1);
        let _round_timer =
            metrics::start_timer("calibre_round_duration_ms", &[("path", "streaming")]);
        self.record_attacks(round, selected, recorder);
        let mut out = self.empty_round(selected.len());

        // Churn is decided up front on the scheduler thread, per
        // (round, id, attempt 0) — identical on replay.
        let survivors = self.survivors(round, selected, &mut out);

        // Fold-or-hold: buffer until the quorum is certain, then stream.
        let mut gate = FoldGate::new(self.policy.min_quorum);
        let mut watch = DetectionBuffer::new(self.detect);
        for chunk in survivors.chunks(wave) {
            let results = parallel_map(chunk, |&(id, _fault)| work(id));
            let wave_bytes: usize = results
                .iter()
                .map(|r| r.update.len() * std::mem::size_of::<f32>())
                .sum();
            for ((id, fault), reply) in chunk.iter().copied().zip(results) {
                self.screen_and_fold(
                    round, id, fault, reply, &mut gate, sink, &mut watch, &mut out,
                );
            }
            out.peak_state_bytes = out
                .peak_state_bytes
                .max(sink.state_bytes() + gate.held_bytes() + watch.bytes() + wave_bytes);
        }

        let sealed = self.seal_round(round, out, gate, sink, recorder, "streaming");
        watch.observe(self, round, recorder);
        sealed
    }

    /// Executes one round through a [`Transport`]: the same selection,
    /// chaos, validation, quorum gating, and fold order as
    /// [`RoundScheduler::run_round_streaming_with`], but client work runs
    /// wherever the transport puts it — in-process workers
    /// ([`crate::transport::InProcessTransport`]) or remote `calibre-client`
    /// processes ([`crate::transport::SocketTransport`]).
    ///
    /// # Determinism
    ///
    /// With the same seeds and cohort schedule, and a transport that
    /// delivers every surviving client's reply (possibly after retries),
    /// this folds bit-identically to the in-process path — the golden
    /// cross-transport test pins it. A reply the transport could not obtain
    /// counts as dropped, exactly like a chaos dropout.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable [`TransportError`]s; per-client delivery
    /// failures are absorbed as drops.
    #[allow(clippy::too_many_arguments)] // mirrors run_round_streaming's surface
    pub fn run_round_transport(
        &self,
        round: usize,
        selected: &[usize],
        wave: usize,
        global: &[f32],
        sink: &mut dyn UpdateSink,
        transport: &mut dyn Transport,
        recorder: &dyn Recorder,
    ) -> Result<StreamedRound, TransportError> {
        let wave = wave.max(1);
        let _round_timer =
            metrics::start_timer("calibre_round_duration_ms", &[("path", "transport")]);
        self.record_attacks(round, selected, recorder);
        let mut out = self.empty_round(selected.len());
        let survivors = self.survivors(round, selected, &mut out);

        let mut gate = FoldGate::new(self.policy.min_quorum);
        let mut watch = DetectionBuffer::new(self.detect);
        let mut wire_slot = 0usize;
        for chunk in survivors.chunks(wave) {
            let slots: Vec<WaveSlot> = chunk
                .iter()
                .enumerate()
                .map(|(i, &(id, _))| WaveSlot {
                    slot: wire_slot + i,
                    client: id,
                })
                .collect();
            wire_slot += chunk.len();
            let replies = transport.wave(round, &slots, global)?;
            let wave_bytes: usize = replies
                .iter()
                .flatten()
                .map(|r| r.update.len() * std::mem::size_of::<f32>())
                .sum();
            for ((id, fault), reply) in chunk.iter().copied().zip(replies) {
                match reply {
                    Some(reply) => self.screen_and_fold(
                        round, id, fault, reply, &mut gate, sink, &mut watch, &mut out,
                    ),
                    // The transport exhausted its delivery attempts: at the
                    // orchestration layer this is indistinguishable from a
                    // client dropout.
                    None => out.dropped += 1,
                }
            }
            out.peak_state_bytes = out
                .peak_state_bytes
                .max(sink.state_bytes() + gate.held_bytes() + watch.bytes() + wave_bytes);
        }

        let sealed = self.seal_round(round, out, gate, sink, recorder, "transport");
        watch.observe(self, round, recorder);
        Ok(sealed)
    }

    fn empty_round(&self, cohort: usize) -> StreamedRound {
        StreamedRound {
            cohort,
            accepted: 0,
            dropped: 0,
            rejected: 0,
            weight_sum: 0.0,
            skipped: false,
            aggregated: None,
            peak_state_bytes: 0,
            mean_loss: 0.0,
            mean_divergence: 0.0,
        }
    }

    /// Applies the round's up-front chaos decisions: dropouts and
    /// mid-update panics remove the client for the round; other faults ride
    /// along to be applied to the reply.
    fn survivors(
        &self,
        round: usize,
        selected: &[usize],
        out: &mut StreamedRound,
    ) -> Vec<(usize, Option<ClientFault>)> {
        let mut survivors: Vec<(usize, Option<ClientFault>)> = Vec::with_capacity(selected.len());
        for &id in selected {
            let fault = self.injector.as_ref().and_then(|i| i.decide(round, id, 0));
            match fault {
                Some(ClientFault::Dropout) | Some(ClientFault::PanicMidUpdate) => out.dropped += 1,
                _ => survivors.push((id, fault)),
            }
        }
        survivors
    }

    /// Applies adversarial tampering (the client is compromised, so the
    /// attack lands first), then per-reply chaos corruption, validation,
    /// and norm clipping, and hands the survivor to the quorum gate.
    #[allow(clippy::too_many_arguments)] // internal plumbing shared by two paths
    fn screen_and_fold(
        &self,
        round: usize,
        id: usize,
        fault: Option<ClientFault>,
        reply: StreamUpdate,
        gate: &mut FoldGate,
        sink: &mut dyn UpdateSink,
        watch: &mut DetectionBuffer,
        out: &mut StreamedRound,
    ) {
        let StreamUpdate {
            mut update,
            weight,
            loss,
            divergence,
        } = reply;
        if let Some(atk) = &self.attacker {
            if let Some(kind) = atk.decide(round, id) {
                atk.apply(round, id, kind, &mut update);
            }
        }
        if let (Some(ClientFault::Corrupt(kind)), Some(inj)) = (fault, self.injector.as_ref()) {
            inj.corrupt(round, id, 0, kind, &mut update);
        }
        if !crate::aggregate::validate_update(&update) {
            out.rejected += 1;
            return;
        }
        if let Some(max_norm) = self.policy.clip_norm {
            crate::aggregate::clip_norm(&mut update, max_norm);
        }
        watch.push(id, &update);
        gate.accept(sink, update, weight, loss, divergence);
    }

    /// Quorum check, telemetry, and metrics shared by the streaming and
    /// transport round paths.
    fn seal_round(
        &self,
        round: usize,
        mut out: StreamedRound,
        gate: FoldGate,
        sink: &mut dyn UpdateSink,
        recorder: &dyn Recorder,
        path: &'static str,
    ) -> StreamedRound {
        let min_quorum = self.policy.min_quorum.max(1);
        out.accepted = gate.accepted;
        out.weight_sum = gate.weight_sum;
        let (mean_loss, mean_divergence) = gate.means();
        out.mean_loss = mean_loss;
        out.mean_divergence = mean_divergence;
        if out.accepted >= min_quorum {
            out.aggregated = sink.finish().ok();
        }
        out.skipped = out.aggregated.is_none();
        recorder.aggregate(round, out.accepted, out.weight_sum);
        if out.dropped > 0 || out.rejected > 0 || out.skipped {
            recorder.round_resilience(
                round,
                out.dropped + out.rejected,
                out.dropped + out.rejected,
                0,
                out.accepted,
                out.skipped,
            );
        }

        metrics::counter_add("calibre_rounds_total", &[("path", path)], 1);
        metrics::counter_add("calibre_clients_accepted_total", &[], out.accepted as u64);
        metrics::counter_add("calibre_clients_dropped_total", &[], out.dropped as u64);
        metrics::counter_add("calibre_clients_rejected_total", &[], out.rejected as u64);
        metrics::observe(
            "calibre_round_quorum",
            &[("path", path)],
            out.accepted as f64,
        );
        metrics::counter_add(
            "calibre_quorum_outcomes_total",
            &[("outcome", if out.skipped { "missed" } else { "met" })],
            1,
        );
        if out.skipped {
            metrics::counter_add("calibre_rounds_skipped_total", &[("path", path)], 1);
        }
        metrics::gauge_max(
            "calibre_sink_peak_state_bytes",
            &[],
            out.peak_state_bytes as f64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{weighted_average_refs, StreamingWeightedSink};
    use crate::sampler::SamplerKind;
    use calibre_telemetry::{Event, MemoryRecorder, NullRecorder};

    fn toy_scheduler(cohort: usize, rounds: usize) -> RoundScheduler {
        RoundScheduler::sampled(Sampler::new(SamplerKind::Uniform, 9), 1_000, cohort, rounds)
    }

    #[test]
    fn fixed_selection_mirrors_the_config_schedule() {
        let mut cfg = FlConfig::for_input(16);
        cfg.rounds = 4;
        cfg.clients_per_round = 3;
        let scheduler = RoundScheduler::from_config(&cfg, 10);
        assert_eq!(scheduler.rounds(), 4);
        let schedule = cfg.selection_schedule(10);
        for (round, expected) in schedule.iter().enumerate() {
            assert_eq!(&scheduler.select(round, None), expected);
        }
    }

    #[test]
    fn scheduled_round_emits_the_legacy_event_choreography() {
        let rec = MemoryRecorder::new();
        let scheduler = toy_scheduler(3, 1);
        let selected = scheduler.select(0, None);
        let ctx = RoundContext {
            recorder: &rec,
            downlink_params: 4,
            planned_bytes: 128,
            fallback_loss: 0.0,
            fallback_divergence: 0.0,
        };
        let out = scheduler.run_round(
            0,
            &selected,
            &ctx,
            |id| id as u64,
            |id, state| ClientOutcome {
                state,
                // analyze:allow(lossy-cast) -- toy ids in tests.
                flat: vec![id as f32; 4],
                count: 1,
                payload: 0.5f32,
            },
            |accepted| vec![1.0; accepted.len()],
            |&loss| {
                (
                    ClientLosses {
                        total: loss,
                        ssl: loss,
                        l_n: 0.0,
                        l_p: 0.0,
                    },
                    0.0,
                )
            },
        );
        assert_eq!(out.round.accepted.len(), 3);
        assert!((out.mean_loss - 0.5).abs() < 1e-6);
        let events = rec.events();
        assert!(matches!(events[0], Event::RoundStart { .. }));
        assert!(matches!(events[1], Event::ClientUpdate { .. }));
        assert!(matches!(events[4], Event::Aggregate { .. }));
        assert!(matches!(
            events[5],
            Event::RoundEnd {
                planned_bytes: 128,
                ..
            }
        ));
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn streaming_round_matches_the_collected_aggregate() {
        let scheduler = toy_scheduler(16, 1);
        let selected = scheduler.select(0, None);
        // analyze:allow(lossy-cast) -- toy ids in tests.
        let update_of = |id: usize| vec![id as f32 * 0.5, 1.0 - id as f32];
        let mut sink = StreamingWeightedSink::new();
        let out = scheduler.run_round_streaming(
            0,
            &selected,
            4,
            &mut sink,
            |id| (update_of(id), 1.0),
            &NullRecorder,
        );
        let updates: Vec<Vec<f32>> = selected.iter().map(|&id| update_of(id)).collect();
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let expected = weighted_average_refs(&refs, &vec![1.0; refs.len()]);
        let got = out.aggregated.unwrap();
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-5, "{g} vs {e}");
        }
        assert_eq!(out.accepted, 16);
        assert_eq!(out.cohort, 16);
    }

    #[test]
    fn streaming_round_is_replay_identical() {
        let run = || {
            let scheduler = toy_scheduler(32, 1).with_chaos(
                FaultPlan {
                    drop_prob: 0.2,
                    ..FaultPlan::default()
                },
                77,
            );
            let selected = scheduler.select(0, None);
            let mut sink = StreamingWeightedSink::new();
            let out = scheduler.run_round_streaming(
                0,
                &selected,
                8,
                &mut sink,
                // analyze:allow(lossy-cast) -- toy ids in tests.
                |id| (vec![id as f32; 3], 1.0),
                &NullRecorder,
            );
            (out.accepted, out.dropped, out.aggregated)
        };
        let (a_acc, a_drop, a_agg) = run();
        let (b_acc, b_drop, b_agg) = run();
        assert_eq!(a_acc, b_acc);
        assert_eq!(a_drop, b_drop);
        assert_eq!(a_agg, b_agg, "same seed replays bit-identically");
        assert!(a_drop > 0, "0.2 drop over 32 clients should hit someone");
    }

    #[test]
    fn transport_round_via_in_process_transport_matches_streaming_bitwise() {
        use crate::transport::{InProcessTransport, StreamUpdate};
        let scheduler = toy_scheduler(16, 1).with_chaos(
            FaultPlan {
                drop_prob: 0.2,
                corrupt_prob: 0.2,
                ..FaultPlan::default()
            },
            5,
        );
        let selected = scheduler.select(0, None);
        let global = vec![0.5f32, -1.25, 2.0];
        let work = |_round: usize, id: usize, g: &[f32]| StreamUpdate {
            // analyze:allow(lossy-cast) -- toy ids in tests.
            update: g.iter().map(|v| v * (id as f32 + 1.0)).collect(),
            weight: 1.0 + (id % 3) as f32,
            loss: 0.25,
            divergence: 0.5,
        };

        let mut sink_a = StreamingWeightedSink::new();
        let a = scheduler.run_round_streaming_with(
            0,
            &selected,
            4,
            &mut sink_a,
            |id| work(0, id, &global),
            &NullRecorder,
        );
        let mut transport = InProcessTransport::new(work);
        let mut sink_b = StreamingWeightedSink::new();
        let b = scheduler
            .run_round_transport(
                0,
                &selected,
                4,
                &global,
                &mut sink_b,
                &mut transport,
                &NullRecorder,
            )
            .unwrap();

        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        assert_eq!(a.mean_divergence.to_bits(), b.mean_divergence.to_bits());
        let bits = |v: &Option<Vec<f32>>| {
            v.as_ref()
                .map(|u| u.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        };
        assert_eq!(
            bits(&a.aggregated),
            bits(&b.aggregated),
            "transport path must fold bit-identically to the streaming path"
        );
        assert!(a.dropped > 0, "chaos should remove someone at these rates");
    }

    #[test]
    fn streaming_round_reports_accepted_loss_means() {
        use crate::transport::StreamUpdate;
        let scheduler = toy_scheduler(8, 1);
        let selected = scheduler.select(0, None);
        let mut sink = StreamingWeightedSink::new();
        let out = scheduler.run_round_streaming_with(
            0,
            &selected,
            4,
            &mut sink,
            |_| StreamUpdate {
                update: vec![1.0, 2.0],
                weight: 1.0,
                loss: 0.75,
                divergence: 1.5,
            },
            &NullRecorder,
        );
        assert_eq!(out.accepted, 8);
        assert!((out.mean_loss - 0.75).abs() < 1e-6);
        assert!((out.mean_divergence - 1.5).abs() < 1e-6);
    }

    #[test]
    fn streaming_round_misses_quorum_without_touching_the_sink() {
        let scheduler = toy_scheduler(4, 1).with_policy(RoundPolicy {
            min_quorum: 8,
            ..RoundPolicy::default()
        });
        let selected = scheduler.select(0, None);
        let rec = MemoryRecorder::new();
        let mut sink = StreamingWeightedSink::new();
        let out = scheduler.run_round_streaming(
            0,
            &selected,
            2,
            &mut sink,
            |_| (vec![1.0, 2.0], 1.0),
            &rec,
        );
        assert!(out.skipped);
        assert!(out.aggregated.is_none());
        assert!(matches!(
            rec.events().last(),
            Some(Event::RoundResilience { skipped: true, .. })
        ));
    }

    #[test]
    fn inactive_attack_plan_is_bit_identical_to_an_unarmed_scheduler() {
        let run = |armed: bool| {
            let mut scheduler = toy_scheduler(16, 1);
            if armed {
                scheduler = scheduler
                    .with_attack(AttackPlan::default(), 123)
                    .with_detection(false);
            }
            let selected = scheduler.select(0, None);
            let mut sink = StreamingWeightedSink::new();
            let out = scheduler.run_round_streaming(
                0,
                &selected,
                4,
                &mut sink,
                // analyze:allow(lossy-cast) -- toy ids in tests.
                |id| (vec![id as f32; 3], 1.0),
                &NullRecorder,
            );
            (selected, out.aggregated)
        };
        let (sel_a, agg_a) = run(false);
        let (sel_b, agg_b) = run(true);
        assert_eq!(sel_a, sel_b, "selection untouched by an inactive plan");
        let bits = |v: &Option<Vec<f32>>| {
            v.as_ref()
                .map(|u| u.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        };
        assert_eq!(bits(&agg_a), bits(&agg_b), "aggregate bit-identical");
    }

    #[test]
    fn attacked_rounds_replay_identically_and_move_the_aggregate() {
        let plan = AttackPlan {
            flip_prob: 0.2,
            scale_prob: 0.1,
            seed: 9,
            ..AttackPlan::default()
        };
        let run = |plan: Option<AttackPlan>| {
            let mut scheduler = toy_scheduler(32, 1);
            if let Some(plan) = plan {
                scheduler = scheduler.with_attack(plan, 77);
            }
            let selected = scheduler.select(0, None);
            let rec = MemoryRecorder::new();
            let mut sink = StreamingWeightedSink::new();
            let out = scheduler.run_round_streaming(
                0,
                &selected,
                8,
                &mut sink,
                // analyze:allow(lossy-cast) -- toy ids in tests.
                |id| (vec![id as f32 + 1.0; 3], 1.0),
                &rec,
            );
            let attacks = rec
                .events()
                .iter()
                .filter(|e| matches!(e, Event::Attack { .. }))
                .count();
            (out.aggregated, attacks)
        };
        let (a, attacks_a) = run(Some(plan.clone()));
        let (b, attacks_b) = run(Some(plan));
        assert_eq!(a, b, "same attack seed replays bit-identically");
        assert_eq!(attacks_a, attacks_b);
        assert!(attacks_a > 0, "0.3 total rate over 32 clients should fire");
        let (clean, no_attacks) = run(None);
        assert_eq!(no_attacks, 0);
        assert_ne!(a, clean, "an active attack must move the aggregate");
    }

    #[test]
    fn attacked_transport_round_matches_streaming_bitwise() {
        use crate::transport::{InProcessTransport, StreamUpdate};
        let plan = AttackPlan {
            flip_prob: 0.15,
            scale_prob: 0.1,
            noise_prob: 0.1,
            seed: 3,
            ..AttackPlan::default()
        };
        let make = || {
            toy_scheduler(16, 1)
                .with_chaos(
                    FaultPlan {
                        drop_prob: 0.2,
                        corrupt_prob: 0.2,
                        ..FaultPlan::default()
                    },
                    5,
                )
                .with_attack(plan.clone(), 5)
        };
        let scheduler = make();
        let selected = scheduler.select(0, None);
        let global = vec![0.5f32, -1.25, 2.0];
        let work = |_round: usize, id: usize, g: &[f32]| StreamUpdate {
            // analyze:allow(lossy-cast) -- toy ids in tests.
            update: g.iter().map(|v| v * (id as f32 + 1.0)).collect(),
            weight: 1.0 + (id % 3) as f32,
            loss: 0.25,
            divergence: 0.5,
        };

        let mut sink_a = StreamingWeightedSink::new();
        let a = scheduler.run_round_streaming_with(
            0,
            &selected,
            4,
            &mut sink_a,
            |id| work(0, id, &global),
            &NullRecorder,
        );
        let other = make();
        let mut transport = InProcessTransport::new(work);
        let mut sink_b = StreamingWeightedSink::new();
        let b = other
            .run_round_transport(
                0,
                &selected,
                4,
                &global,
                &mut sink_b,
                &mut transport,
                &NullRecorder,
            )
            .unwrap();
        let bits = |v: &Option<Vec<f32>>| {
            v.as_ref()
                .map(|u| u.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        };
        assert_eq!(
            bits(&a.aggregated),
            bits(&b.aggregated),
            "attacks must fold identically on both execution paths"
        );
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn detection_quarantines_a_persistent_adversary() {
        // Population == cohort so the adversary is observed every round and
        // its strikes accumulate to quarantine.
        let scheduler = RoundScheduler::sampled(Sampler::new(SamplerKind::Uniform, 9), 8, 8, 16)
            .with_detection(true);
        let rec = MemoryRecorder::new();
        // Track the lowest selected id each round and make it an extreme
        // outlier; its suspicion accumulates strikes until quarantine.
        let mut quarantined_round = None;
        let mut villain = None;
        for round in 0..scheduler.rounds() {
            let selected = scheduler.select(round, None);
            assert!(!selected.is_empty());
            let bad = villain.unwrap_or(selected[0]);
            if villain.is_none() {
                villain = Some(bad);
            }
            if scheduler.reputation().is_quarantined(bad) {
                quarantined_round = Some(round);
                assert!(
                    !selected.contains(&bad),
                    "quarantined client must not be drawn"
                );
                break;
            }
            let mut sink = StreamingWeightedSink::new();
            let _ = scheduler.run_round_streaming(
                round,
                &selected,
                4,
                &mut sink,
                |id| {
                    if id == bad {
                        (vec![1.0e6; 4], 1.0)
                    } else {
                        (vec![1.0, 2.0, 3.0, 4.0], 1.0)
                    }
                },
                &rec,
            );
        }
        assert!(
            quarantined_round.is_some(),
            "a persistent extreme outlier must be quarantined"
        );
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, Event::Quarantine { .. })),
            "quarantine must be reported to telemetry"
        );
        // The book survives a checkpoint round-trip into a fresh scheduler.
        let book = scheduler.reputation();
        let resumed = RoundScheduler::sampled(Sampler::new(SamplerKind::Uniform, 9), 8, 8, 16)
            .with_detection(true)
            .with_reputation(book.clone());
        assert_eq!(resumed.reputation(), book);
    }

    #[test]
    fn streaming_peak_memory_is_flat_across_cohort_sizes() {
        let dim = 64;
        let peak_of = |cohort: usize| {
            let scheduler = toy_scheduler(cohort, 1);
            let selected = scheduler.select(0, None);
            let mut sink = StreamingWeightedSink::new();
            let out = scheduler.run_round_streaming(
                0,
                &selected,
                8,
                &mut sink,
                |_| (vec![1.0; dim], 1.0),
                &NullRecorder,
            );
            out.peak_state_bytes
        };
        let small = peak_of(16);
        let large = peak_of(512);
        assert_eq!(
            small, large,
            "peak aggregation memory must not grow with the cohort"
        );
    }
}
