//! The transport seam: round execution behind a [`Transport`] trait.
//!
//! [`crate::scheduler::RoundScheduler::run_round_transport`] drives a round
//! through this trait, so the same orchestration code runs either
//! **in-process** ([`InProcessTransport`], a thin wrapper over the worker
//! pool) or **over a socket** ([`SocketTransport`], the server side of the
//! `calibre-serve`/`calibre-client` pair speaking [`crate::proto`] frames
//! over TCP or Unix-domain sockets).
//!
//! # Determinism
//!
//! The transport contract is: a wave's replies come back **in slot order**,
//! and a reply either arrives intact (bit-identical payload, enforced by
//! frame checksums) or not at all. Everything nondeterministic about a real
//! network — retries, reconnects, duplicate replies — is absorbed *below*
//! the trait: delivery attempts are bounded, replies are deduplicated by
//! `(round, slot)`, and recomputed replies are bit-identical because client
//! work is a pure function of `(seed, round, client, global)`. That is why
//! the golden cross-transport test can demand a byte-identical final model
//! in-process vs. over a loopback socket, even under wire chaos, as long as
//! every assignment is eventually delivered (see DESIGN.md §13).
//!
//! # Timeouts
//!
//! Every blocking socket read in this module runs under an explicit read
//! timeout (`set_read_timeout`) — the `net-read-no-timeout` analyze rule
//! enforces this for all transport code. There are no unbounded waits:
//! servers bound delivery attempts, clients bound idle patience.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

use calibre_telemetry::metrics;

use crate::chaos::{WireFault, WireInjector};
use crate::parallel::parallel_map;
use crate::proto::{Msg, WireError};

/// One client's reply to a round assignment: the update vector plus the
/// scalars round summaries need. The streaming and transport round paths
/// both fold these.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamUpdate {
    /// The local update (a model delta), folded into the round's sink.
    pub update: Vec<f32>,
    /// Aggregation weight.
    pub weight: f32,
    /// Local training loss.
    pub loss: f32,
    /// Divergence diagnostic (0 when the workload does not track one).
    pub divergence: f32,
}

/// One assignment within a wave: the client and its wire slot (the round's
/// survivor index, echoed by replies so the server can match them up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveSlot {
    /// Wire slot — position in the round's survivor list.
    pub slot: usize,
    /// The assigned client's id.
    pub client: usize,
}

/// A failure below the transport seam.
#[derive(Debug)]
pub enum TransportError {
    /// A frame-level failure that exhausted its retries.
    Wire(WireError),
    /// Binding or accepting on the server socket failed.
    Bind(std::io::Error),
    /// Client registration did not complete (population never assembled).
    Registration(String),
    /// The peer violated the protocol state machine.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Wire(e) => write!(f, "transport wire error: {e}"),
            TransportError::Bind(e) => write!(f, "transport bind error: {e}"),
            TransportError::Registration(m) => write!(f, "transport registration error: {m}"),
            TransportError::Protocol(m) => write!(f, "transport protocol error: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// The seam between round orchestration and round execution.
///
/// A transport delivers one wave of assignments and returns the replies in
/// slot order; `None` marks a client whose reply could not be obtained
/// (the orchestrator counts it as dropped). [`Transport::finish`] announces
/// the end of the run (a broadcast for socket transports, a no-op
/// in-process).
pub trait Transport {
    /// Executes one wave: deliver `global` to every slot, collect replies.
    ///
    /// The returned vector is parallel to `slots` (reply `i` belongs to
    /// `slots[i]`).
    ///
    /// # Errors
    ///
    /// Only unrecoverable failures (a dead listener, a protocol violation)
    /// surface as errors; per-client delivery failures are `None` entries.
    fn wave(
        &mut self,
        round: usize,
        slots: &[WaveSlot],
        global: &[f32],
    ) -> Result<Vec<Option<StreamUpdate>>, TransportError>;

    /// Announces the end of the run with the final model fingerprint.
    ///
    /// # Errors
    ///
    /// Socket transports report a failure to reach any registered client.
    fn finish(&mut self, rounds: usize, checksum: u64) -> Result<(), TransportError>;
}

impl std::fmt::Debug for dyn Transport + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn Transport")
    }
}

// ---------------------------------------------------------------------------
// In-process transport: the historical execution path behind the seam.
// ---------------------------------------------------------------------------

/// Runs client work on the in-process worker pool — the historical
/// execution path, now behind the [`Transport`] seam. `work` must be a pure
/// function of `(round, client, global)`; it runs with the wave's
/// parallelism and replies are returned in slot order.
pub struct InProcessTransport<F> {
    work: F,
}

impl<F> InProcessTransport<F>
where
    F: Fn(usize, usize, &[f32]) -> StreamUpdate + Sync,
{
    /// Wraps a pure client-work function.
    pub fn new(work: F) -> Self {
        InProcessTransport { work }
    }
}

impl<F> std::fmt::Debug for InProcessTransport<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessTransport").finish_non_exhaustive()
    }
}

impl<F> Transport for InProcessTransport<F>
where
    F: Fn(usize, usize, &[f32]) -> StreamUpdate + Sync,
{
    fn wave(
        &mut self,
        round: usize,
        slots: &[WaveSlot],
        global: &[f32],
    ) -> Result<Vec<Option<StreamUpdate>>, TransportError> {
        let work = &self.work;
        Ok(parallel_map(slots, |s| Some(work(round, s.client, global))))
    }

    fn finish(&mut self, _rounds: usize, _checksum: u64) -> Result<(), TransportError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sockets: connections and listeners over TCP or UDS.
// ---------------------------------------------------------------------------

/// A connected peer stream: TCP or (on Unix) a Unix-domain socket.
#[derive(Debug)]
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects to a TCP address (`host:port`).
    ///
    /// # Errors
    ///
    /// [`TransportError::Bind`] when the connection cannot be established.
    pub fn connect_tcp(addr: &str) -> Result<Conn, TransportError> {
        TcpStream::connect(addr)
            .map(Conn::Tcp)
            .map_err(TransportError::Bind)
    }

    /// Connects to a Unix-domain socket path.
    ///
    /// # Errors
    ///
    /// [`TransportError::Bind`] when the connection cannot be established.
    #[cfg(unix)]
    pub fn connect_uds(path: &Path) -> Result<Conn, TransportError> {
        UnixStream::connect(path)
            .map(Conn::Unix)
            .map_err(TransportError::Bind)
    }

    /// Applies an explicit read timeout — every read in this module runs
    /// under one (see the module docs on timeouts).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound server socket: TCP or (on Unix) a Unix-domain socket.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener (use port 0 for an OS-assigned port) and puts
    /// it in non-blocking accept mode.
    ///
    /// # Errors
    ///
    /// [`TransportError::Bind`] when the address cannot be bound.
    pub fn bind_tcp(addr: &str) -> Result<Listener, TransportError> {
        let l = TcpListener::bind(addr).map_err(TransportError::Bind)?;
        l.set_nonblocking(true).map_err(TransportError::Bind)?;
        Ok(Listener::Tcp(l))
    }

    /// Binds a Unix-domain socket listener in non-blocking accept mode.
    /// A stale socket file at `path` is removed first.
    ///
    /// # Errors
    ///
    /// [`TransportError::Bind`] when the path cannot be bound.
    #[cfg(unix)]
    pub fn bind_uds(path: &Path) -> Result<Listener, TransportError> {
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path).map_err(TransportError::Bind)?;
        l.set_nonblocking(true).map_err(TransportError::Bind)?;
        Ok(Listener::Unix(l))
    }

    /// The bound address as a printable string (`host:port` for TCP, the
    /// path for UDS) — what `calibre-serve` prints for clients to join.
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unbound>".to_string()),
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unnamed>".to_string()),
        }
    }

    /// Accepts one pending connection if any (non-blocking).
    fn try_accept(&self) -> Option<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().ok().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().ok().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

// ---------------------------------------------------------------------------
// The server-side socket transport.
// ---------------------------------------------------------------------------

/// Retry/timeout policy for the socket transport. Everything is bounded:
/// there is no unbounded wait anywhere on the wire path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPolicy {
    /// Per-reply read timeout, milliseconds.
    pub read_timeout_ms: u64,
    /// Delivery attempts per assignment before the client counts as
    /// dropped for the round. Must exceed
    /// [`crate::chaos::PARTITION_HEAL_ATTEMPT`] for partitions to heal.
    pub max_attempts: usize,
    /// Sleep between registration/accept polls, milliseconds.
    pub accept_poll_ms: u64,
    /// Registration polls before giving up on the population assembling.
    pub register_patience: usize,
}

impl Default for NetPolicy {
    fn default() -> Self {
        NetPolicy {
            read_timeout_ms: 1_000,
            max_attempts: 5,
            accept_poll_ms: 10,
            register_patience: 3_000,
        }
    }
}

/// The run parameters a server hands every registering client in its
/// `Welcome` — everything a client needs to compute deterministically and
/// to replay its own seeded reconnect churn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelcomeInfo {
    /// Run seed (clients derive their local RNG streams from it).
    pub seed: u64,
    /// Total rounds in the run.
    pub rounds: u32,
    /// Model dimension.
    pub dim: u32,
    /// Population size (valid client ids are `0..population`).
    pub population: u32,
    /// Per-round client reconnect-churn probability (wire chaos).
    pub churn_prob: f32,
    /// Seed for the client's churn decisions.
    pub churn_seed: u64,
}

/// The server side of the wire: registers a population of clients, then
/// executes waves by sending `Assign` frames and collecting `Update`
/// replies, with bounded retries, reconnect handling, and deterministic
/// wire-fault injection ([`WireInjector`]).
pub struct SocketTransport {
    listener: Listener,
    conns: BTreeMap<usize, Conn>,
    welcome: WelcomeInfo,
    net: NetPolicy,
    wire: Option<WireInjector>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("addr", &self.listener.local_addr())
            .field("connected", &self.conns.len())
            .field("net", &self.net)
            .finish_non_exhaustive()
    }
}

impl SocketTransport {
    /// Wraps a bound listener. `wire` arms deterministic transport chaos on
    /// every server→client frame.
    pub fn new(
        listener: Listener,
        welcome: WelcomeInfo,
        net: NetPolicy,
        wire: Option<WireInjector>,
    ) -> Self {
        SocketTransport {
            listener,
            conns: BTreeMap::new(),
            welcome,
            net,
            wire,
        }
    }

    /// The printable bound address (for clients to join).
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Number of currently registered clients.
    pub fn connected(&self) -> usize {
        self.conns.len()
    }

    /// Performs the server half of one handshake on a fresh connection:
    /// read `Hello`, validate the id, reply `Welcome`, store the conn.
    fn handshake(&mut self, mut conn: Conn) {
        let timeout = Duration::from_millis(self.net.read_timeout_ms.max(1));
        if conn.set_read_timeout(Some(timeout)).is_err() {
            return;
        }
        let client = match Msg::read_from(&mut conn) {
            Ok(Msg::Hello { client }) => client,
            _ => return,
        };
        if client >= u64::from(self.welcome.population) {
            let _ = Msg::Bye.write_to(&mut conn);
            return;
        }
        let welcome = Msg::Welcome {
            client,
            seed: self.welcome.seed,
            rounds: self.welcome.rounds,
            dim: self.welcome.dim,
            population: self.welcome.population,
            churn_prob: self.welcome.churn_prob,
            churn_seed: self.welcome.churn_seed,
        };
        if welcome.write_to(&mut conn).is_ok() {
            // Latest registration wins: a reconnecting client replaces its
            // dead predecessor.
            self.conns.insert(client as usize, conn);
            metrics::gauge_set(
                "calibre_net_clients_connected",
                &[],
                self.conns.len() as f64,
            );
        }
    }

    /// Drains pending connections (registrations and reconnects) without
    /// blocking.
    fn pump(&mut self) {
        while let Some(conn) = self.listener.try_accept() {
            self.handshake(conn);
        }
    }

    /// Blocks (in bounded polls) until all `population` clients have
    /// registered.
    ///
    /// # Errors
    ///
    /// [`TransportError::Registration`] when patience runs out first.
    pub fn register(&mut self) -> Result<(), TransportError> {
        let want = self.welcome.population as usize;
        for _ in 0..self.net.register_patience.max(1) {
            self.pump();
            if self.conns.len() >= want {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(self.net.accept_poll_ms.max(1)));
        }
        Err(TransportError::Registration(format!(
            "only {} of {want} clients registered",
            self.conns.len()
        )))
    }

    /// Sends one `Assign` frame, applying any decided wire fault. Returns
    /// whether the frame actually left intact (a dropped or truncated
    /// delivery returns false so the caller knows not to expect a reply
    /// from this attempt — though it retries by re-reading regardless).
    fn send_assign(
        &mut self,
        round: usize,
        slot: WaveSlot,
        attempt: usize,
        global: &[f32],
    ) -> bool {
        let fault = self
            .wire
            .as_ref()
            .and_then(|w| w.decide(round, slot.client, attempt));
        if let Some(f) = fault {
            metrics::counter_add(
                "calibre_net_wire_faults_total",
                &[("kind", f.kind_tag())],
                1,
            );
        }
        let msg = Msg::Assign {
            round: round as u32,
            slot: slot.slot as u32,
            attempt: attempt as u32,
            model: global.to_vec(),
        };
        match fault {
            Some(WireFault::Drop) => false,
            Some(WireFault::Truncate) => {
                // Write half a frame, then reset the connection: the client
                // sees a short read / checksum failure and reconnects.
                if let Some(conn) = self.conns.get_mut(&slot.client) {
                    let frame = msg.encode();
                    let half = frame.len() / 2;
                    let _ = conn.write_all(frame.get(..half).unwrap_or(&frame));
                    let _ = conn.flush();
                }
                self.conns.remove(&slot.client);
                false
            }
            Some(WireFault::Delay { delay_ms }) => {
                std::thread::sleep(Duration::from_millis(delay_ms));
                self.write_assign(slot.client, &msg)
            }
            None => self.write_assign(slot.client, &msg),
        }
    }

    fn write_assign(&mut self, client: usize, msg: &Msg) -> bool {
        match self.conns.get_mut(&client) {
            Some(conn) => match msg.write_to(conn) {
                Ok(_) => true,
                Err(_) => {
                    self.conns.remove(&client);
                    false
                }
            },
            None => false,
        }
    }

    /// Reads frames from one client until its `Update` for `(round, slot)`
    /// arrives, the read times out, or the connection dies. Stale replies
    /// (earlier rounds or attempts) are discarded — deduplication by
    /// `(round, slot)` is what makes duplicate deliveries harmless.
    fn read_reply(&mut self, round: usize, slot: WaveSlot) -> Option<StreamUpdate> {
        // Bound the number of discarded frames per call so a babbling peer
        // cannot stall the wave forever.
        for _ in 0..64 {
            let conn = self.conns.get_mut(&slot.client)?;
            match Msg::read_from(conn) {
                Ok(Msg::Update {
                    round: r,
                    slot: s,
                    client,
                    weight,
                    loss,
                    update,
                }) => {
                    if r as usize == round
                        && s as usize == slot.slot
                        && client as usize == slot.client
                    {
                        return Some(StreamUpdate {
                            update,
                            weight,
                            loss,
                            divergence: 0.0,
                        });
                    }
                    // Stale duplicate from an earlier attempt or round.
                }
                Ok(Msg::Bye) => {
                    self.conns.remove(&slot.client);
                    return None;
                }
                Ok(_) => {}
                Err(e) if e.is_timeout() => return None,
                Err(_) => {
                    self.conns.remove(&slot.client);
                    return None;
                }
            }
        }
        None
    }
}

impl Transport for SocketTransport {
    fn wave(
        &mut self,
        round: usize,
        slots: &[WaveSlot],
        global: &[f32],
    ) -> Result<Vec<Option<StreamUpdate>>, TransportError> {
        let _wave_timer = metrics::start_timer("calibre_net_wave_ms", &[]);
        let mut results: Vec<Option<StreamUpdate>> = slots.iter().map(|_| None).collect();
        for attempt in 0..self.net.max_attempts.max(1) {
            // Pick up reconnects (churned or reset clients) before retrying.
            self.pump();
            let pending: Vec<usize> = results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.is_none().then_some(i))
                .collect();
            if pending.is_empty() {
                break;
            }
            if attempt > 0 {
                metrics::counter_add("calibre_net_retries_total", &[], pending.len() as u64);
            }
            for &i in &pending {
                if let Some(slot) = slots.get(i).copied() {
                    self.send_assign(round, slot, attempt, global);
                }
            }
            for &i in &pending {
                if let Some(slot) = slots.get(i).copied() {
                    if let Some(reply) = self.read_reply(round, slot) {
                        if let Some(entry) = results.get_mut(i) {
                            *entry = Some(reply);
                        }
                    }
                }
            }
        }
        Ok(results)
    }

    fn finish(&mut self, rounds: usize, checksum: u64) -> Result<(), TransportError> {
        self.pump();
        let msg = Msg::Finish {
            rounds: rounds as u32,
            checksum,
        };
        let mut reached = 0usize;
        for conn in self.conns.values_mut() {
            if msg.write_to(conn).is_ok() {
                reached += 1;
            }
        }
        if reached == 0 && !self.conns.is_empty() {
            return Err(TransportError::Protocol(
                "finish broadcast reached no client".to_string(),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The client runtime.
// ---------------------------------------------------------------------------

/// Where a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAddr {
    /// A TCP `host:port` address.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Uds(std::path::PathBuf),
}

impl ClientAddr {
    fn connect(&self) -> Result<Conn, TransportError> {
        match self {
            ClientAddr::Tcp(addr) => Conn::connect_tcp(addr),
            #[cfg(unix)]
            ClientAddr::Uds(path) => Conn::connect_uds(path),
        }
    }
}

/// Bounded patience knobs for the client runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOptions {
    /// Per-read timeout, milliseconds (idle waits are re-checked against
    /// `idle_patience`, they do not abort immediately).
    pub read_timeout_ms: u64,
    /// Consecutive idle read timeouts before the client gives up on the
    /// server.
    pub idle_patience: usize,
    /// Connection attempts (per (re)connect) before giving up.
    pub connect_attempts: usize,
    /// Sleep between connection attempts, milliseconds.
    pub connect_backoff_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            read_timeout_ms: 500,
            idle_patience: 240,
            connect_attempts: 100,
            connect_backoff_ms: 50,
        }
    }
}

/// What a client saw over its run — printed by `calibre-client` and
/// asserted by the loopback tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// This client's id.
    pub client: u64,
    /// Updates computed and sent (retries recompute, so this can exceed
    /// the number of rounds the client was selected in).
    pub updates_sent: usize,
    /// Times the client re-established its connection (wire chaos churn or
    /// server-side resets).
    pub reconnects: usize,
    /// Rounds the server reported in its `Finish`.
    pub rounds: u32,
    /// Final model fingerprint from the server's `Finish`.
    pub final_checksum: u64,
}

fn connect_and_hello(
    addr: &ClientAddr,
    client: u64,
    opts: &ClientOptions,
) -> Result<(Conn, WelcomeInfo), TransportError> {
    let mut last: Option<TransportError> = None;
    for _ in 0..opts.connect_attempts.max(1) {
        match addr.connect() {
            Ok(mut conn) => {
                conn.set_read_timeout(Some(Duration::from_millis(opts.read_timeout_ms.max(1))))
                    .map_err(|e| TransportError::Wire(WireError::Io(e)))?;
                Msg::Hello { client }.write_to(&mut conn)?;
                match Msg::read_from(&mut conn) {
                    Ok(Msg::Welcome {
                        client: echoed,
                        seed,
                        rounds,
                        dim,
                        population,
                        churn_prob,
                        churn_seed,
                    }) => {
                        if echoed != client {
                            return Err(TransportError::Protocol(format!(
                                "welcome echoed client {echoed}, expected {client}"
                            )));
                        }
                        return Ok((
                            conn,
                            WelcomeInfo {
                                seed,
                                rounds,
                                dim,
                                population,
                                churn_prob,
                                churn_seed,
                            },
                        ));
                    }
                    Ok(Msg::Bye) => {
                        return Err(TransportError::Registration(format!(
                            "server rejected client {client}"
                        )))
                    }
                    Ok(other) => {
                        last = Some(TransportError::Protocol(format!(
                            "expected welcome, got {}",
                            other.tag_name()
                        )));
                    }
                    Err(e) => last = Some(TransportError::Wire(e)),
                }
            }
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(opts.connect_backoff_ms.max(1)));
    }
    Err(last.unwrap_or_else(|| {
        TransportError::Registration(format!("client {client}: no connection attempts made"))
    }))
}

/// Runs the full client lifecycle against a server: register, answer
/// `Assign`s with `work`'s deterministic updates, survive reconnects
/// (including seeded churn, decided from the `Welcome`'s churn seed), and
/// return once the server's `Finish` arrives.
///
/// `work` must be a pure function of `(round, global)` — retries and
/// reconnects recompute, and bit-identity across transports relies on the
/// recomputed bytes being identical.
///
/// # Errors
///
/// [`TransportError::Registration`] when the server can never be reached,
/// [`TransportError::Protocol`] on handshake violations, or a wire error
/// once idle/connect patience is exhausted.
pub fn run_client<F>(
    addr: &ClientAddr,
    client: u64,
    opts: &ClientOptions,
    work: F,
) -> Result<ClientReport, TransportError>
where
    F: FnMut(usize, &[f32]) -> StreamUpdate,
{
    let mut work = work;
    let (mut conn, welcome) = connect_and_hello(addr, client, opts)?;
    let churn = crate::chaos::WireFaultPlan {
        churn_prob: welcome.churn_prob,
        seed: welcome.churn_seed,
        ..crate::chaos::WireFaultPlan::default()
    };
    let churn = WireInjector::new(churn);
    let mut report = ClientReport {
        client,
        updates_sent: 0,
        reconnects: 0,
        rounds: 0,
        final_checksum: 0,
    };
    let mut idle = 0usize;
    loop {
        match Msg::read_from(&mut conn) {
            Ok(Msg::Assign {
                round,
                slot,
                attempt: _,
                model,
            }) => {
                idle = 0;
                let su = work(round as usize, &model);
                let update = Msg::Update {
                    round,
                    slot,
                    client,
                    weight: su.weight,
                    loss: su.loss,
                    update: su.update,
                };
                let sent = update.write_to(&mut conn).is_ok();
                if sent {
                    report.updates_sent += 1;
                }
                // Seeded reconnect churn (or a failed send): drop the
                // connection and re-register. The server re-delivers
                // anything it still needs on its next attempt.
                if !sent || churn.churns(round as usize, client as usize) {
                    let (c, _) = connect_and_hello(addr, client, opts)?;
                    conn = c;
                    report.reconnects += 1;
                    metrics::counter_add("calibre_net_reconnects_total", &[], 1);
                }
            }
            Ok(Msg::Finish { rounds, checksum }) => {
                report.rounds = rounds;
                report.final_checksum = checksum;
                let _ = Msg::Bye.write_to(&mut conn);
                return Ok(report);
            }
            Ok(_) => {}
            Err(e) if e.is_timeout() => {
                idle += 1;
                if idle > opts.idle_patience {
                    return Err(TransportError::Wire(e));
                }
            }
            Err(_) => {
                // Broken or desynced stream (e.g. a truncated frame):
                // re-register and wait for re-delivery.
                let (c, _) = connect_and_hello(addr, client, opts)?;
                conn = c;
                report.reconnects += 1;
                metrics::counter_add("calibre_net_reconnects_total", &[], 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_transport_replies_in_slot_order() {
        let mut t = InProcessTransport::new(|round, client, global: &[f32]| StreamUpdate {
            // analyze:allow(lossy-cast) -- toy ids in tests.
            update: vec![client as f32 + round as f32 + global.iter().sum::<f32>()],
            weight: 1.0,
            loss: 0.0,
            divergence: 0.0,
        });
        let slots: Vec<WaveSlot> = (0..5)
            .map(|i| WaveSlot {
                slot: i,
                client: 10 + i,
            })
            .collect();
        let replies = t.wave(2, &slots, &[1.0, 2.0]).unwrap();
        assert_eq!(replies.len(), 5);
        for (i, r) in replies.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert_eq!(r.update, vec![(10 + i) as f32 + 2.0 + 3.0]);
        }
        assert!(t.finish(3, 42).is_ok());
    }

    #[test]
    fn loopback_handshake_and_round_trip() {
        let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let welcome = WelcomeInfo {
            seed: 7,
            rounds: 1,
            dim: 2,
            population: 1,
            churn_prob: 0.0,
            churn_seed: 0,
        };
        let mut server = SocketTransport::new(listener, welcome, NetPolicy::default(), None);
        let client = std::thread::spawn(move || {
            run_client(
                &ClientAddr::Tcp(addr),
                0,
                &ClientOptions::default(),
                |round, global| StreamUpdate {
                    update: global.iter().map(|g| g + round as f32 + 1.0).collect(),
                    weight: 2.0,
                    loss: 0.5,
                    divergence: 0.0,
                },
            )
        });
        server.register().unwrap();
        let slots = [WaveSlot { slot: 0, client: 0 }];
        let replies = server.wave(0, &slots, &[1.0, -1.0]).unwrap();
        let reply = replies.first().unwrap().as_ref().unwrap();
        assert_eq!(reply.update, vec![2.0, 0.0]);
        assert_eq!(reply.weight, 2.0);
        server.finish(1, 99).unwrap();
        let report = client.join().unwrap().unwrap();
        assert_eq!(report.final_checksum, 99);
        assert_eq!(report.updates_sent, 1);
    }

    #[test]
    fn rejects_out_of_population_clients() {
        let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let welcome = WelcomeInfo {
            seed: 7,
            rounds: 1,
            dim: 2,
            population: 1,
            churn_prob: 0.0,
            churn_seed: 0,
        };
        let mut server = SocketTransport::new(
            listener,
            welcome,
            NetPolicy {
                register_patience: 30,
                ..NetPolicy::default()
            },
            None,
        );
        let opts = ClientOptions {
            connect_attempts: 3,
            ..ClientOptions::default()
        };
        let client = std::thread::spawn(move || {
            run_client(&ClientAddr::Tcp(addr), 5, &opts, |_, _| StreamUpdate {
                update: vec![0.0],
                weight: 1.0,
                loss: 0.0,
                divergence: 0.0,
            })
        });
        // The lone valid slot never registers, so registration times out.
        assert!(matches!(
            server.register(),
            Err(TransportError::Registration(_))
        ));
        assert!(matches!(
            client.join().unwrap(),
            Err(TransportError::Registration(_))
        ));
    }

    #[cfg(unix)]
    #[test]
    fn uds_loopback_round_trip() {
        let dir = std::env::temp_dir().join(format!("calibre-uds-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("serve.sock");
        let listener = Listener::bind_uds(&path).unwrap();
        let welcome = WelcomeInfo {
            seed: 1,
            rounds: 1,
            dim: 1,
            population: 1,
            churn_prob: 0.0,
            churn_seed: 0,
        };
        let mut server = SocketTransport::new(listener, welcome, NetPolicy::default(), None);
        let client_path = path.clone();
        let client = std::thread::spawn(move || {
            run_client(
                &ClientAddr::Uds(client_path),
                0,
                &ClientOptions::default(),
                |_, global| StreamUpdate {
                    update: global.to_vec(),
                    weight: 1.0,
                    loss: 0.0,
                    divergence: 0.0,
                },
            )
        });
        server.register().unwrap();
        let replies = server
            .wave(0, &[WaveSlot { slot: 0, client: 0 }], &[4.5])
            .unwrap();
        assert_eq!(replies.first().unwrap().as_ref().unwrap().update, vec![4.5]);
        server.finish(1, 7).unwrap();
        client.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
