//! Hand-rolled wire protocol for the `calibre-serve`/`calibre-client` pair.
//!
//! The transport seam (DESIGN.md §13) speaks a small length-prefixed binary
//! protocol over TCP or Unix-domain sockets — no serialization crates, in
//! the same spirit as `calibre-telemetry`'s hand-rolled JSON. Every frame
//! carries a version byte, a message tag, a little-endian payload length,
//! and an FNV-1a checksum over the header and payload:
//!
//! ```text
//! +---------+---------+-------------+-----------------+----------------+
//! | version |   tag   |  len (u32)  |     payload     | checksum (u64) |
//! |  1 byte |  1 byte | 4 bytes LE  |   `len` bytes   |  8 bytes LE    |
//! +---------+---------+-------------+-----------------+----------------+
//!            checksum = FNV-1a(version ‖ tag ‖ len ‖ payload)
//! ```
//!
//! Model vectors travel as raw IEEE-754 bit patterns (`f32::to_bits`, LE),
//! so a value survives the wire **bit-identically** — the foundation of the
//! cross-transport golden test: same seeds ⇒ byte-identical final model
//! whether rounds run in-process or over a loopback socket.
//!
//! Decoding is total: arbitrary junk, truncated frames, bad versions, bad
//! tags, and flipped bits all surface as typed [`WireError`]s, never as
//! panics (a proptest pins this).

use std::io::{Read, Write};

use calibre_telemetry::metrics;

/// Current protocol version, first byte of every frame.
pub const PROTO_VERSION: u8 = 1;

/// Bytes of frame framing around a payload: version, tag, length, checksum.
pub const FRAME_OVERHEAD_BYTES: usize = 1 + 1 + 4 + 8;

/// Upper bound on a payload length (64 MiB). Anything larger is rejected
/// before allocation — a desynced or hostile stream cannot OOM the peer.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the checksum shared by wire frames,
/// checkpoints, and the serve-path model fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a model vector's IEEE-754 bit patterns (LE) — the
/// fingerprint the identity tests and `calibre-serve` print and compare.
pub fn model_checksum(model: &[f32]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in model {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// A decode or I/O failure on the wire. Every malformed input maps to one
/// of these — frame decoding never panics.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket read or write failed (includes timeouts).
    Io(std::io::Error),
    /// The input ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The version byte is not [`PROTO_VERSION`].
    BadVersion(u8),
    /// The tag byte names no known message.
    BadTag(u8),
    /// The payload length exceeds [`MAX_PAYLOAD_BYTES`].
    Oversize(u32),
    /// The checksum does not match the frame contents.
    BadChecksum {
        /// Checksum recomputed from the received bytes.
        expected: u64,
        /// Checksum carried by the frame.
        got: u64,
    },
    /// The payload decoded but left unconsumed trailing bytes.
    TrailingBytes(usize),
}

impl WireError {
    /// Whether this is a read timeout (the peer is merely idle, not gone).
    /// Both `WouldBlock` and `TimedOut` occur in practice depending on the
    /// platform's socket timeout errno.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }

    /// Short tag for metrics labels.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            WireError::Io(e) if self.is_timeout() => {
                let _ = e;
                "timeout"
            }
            WireError::Io(_) => "io",
            WireError::Truncated { .. } => "truncated",
            WireError::BadVersion(_) => "bad_version",
            WireError::BadTag(_) => "bad_tag",
            WireError::Oversize(_) => "oversize",
            WireError::BadChecksum { .. } => "bad_checksum",
            WireError::TrailingBytes(_) => "trailing",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::BadVersion(v) => {
                write!(f, "bad protocol version {v} (expected {PROTO_VERSION})")
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Oversize(len) => {
                write!(f, "payload length {len} exceeds {MAX_PAYLOAD_BYTES}")
            }
            WireError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {expected:#018x}, frame carried {got:#018x}"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// The messages of the serve protocol.
///
/// Handshake: client sends [`Msg::Hello`], server replies [`Msg::Welcome`]
/// (also after every reconnect). Rounds: server sends [`Msg::Assign`] per
/// delivery attempt, client replies [`Msg::Update`]. Shutdown: server
/// broadcasts [`Msg::Finish`] with the final model fingerprint; either side
/// may send [`Msg::Bye`] before closing.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → server: registration / re-registration with its id.
    Hello {
        /// The client's stable id in `0..population`.
        client: u64,
    },
    /// Server → client: run parameters the client needs to compute
    /// deterministically and to decide its own (seeded) reconnect churn.
    Welcome {
        /// Echo of the registered client id.
        client: u64,
        /// Run seed — the client derives its local RNG streams from it.
        seed: u64,
        /// Total rounds in the run.
        rounds: u32,
        /// Model dimension.
        dim: u32,
        /// Registered population size.
        population: u32,
        /// Per-round reconnect-churn probability (wire chaos, client side).
        churn_prob: f32,
        /// Seed for the client's churn decisions.
        churn_seed: u64,
    },
    /// Server → client: one delivery attempt of a round's global model.
    Assign {
        /// Round index.
        round: u32,
        /// The client's selection slot this round (fold position).
        slot: u32,
        /// Delivery attempt (retries re-send with attempt + 1).
        attempt: u32,
        /// The global model at the start of the round.
        model: Vec<f32>,
    },
    /// Client → server: the computed local update for one assignment.
    Update {
        /// Round index (echoed; stale replies are discarded by it).
        round: u32,
        /// Selection slot (echoed).
        slot: u32,
        /// Client id (echoed, for cross-checking the connection map).
        client: u64,
        /// Aggregation weight.
        weight: f32,
        /// Local training loss, for round summaries.
        loss: f32,
        /// The update vector, bit-exact.
        update: Vec<f32>,
    },
    /// Server → client: the run is over.
    Finish {
        /// Rounds completed.
        rounds: u32,
        /// FNV-1a fingerprint of the final model ([`model_checksum`]).
        checksum: u64,
    },
    /// Either side: clean goodbye before closing the connection.
    Bye,
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 1,
            Msg::Welcome { .. } => 2,
            Msg::Assign { .. } => 3,
            Msg::Update { .. } => 4,
            Msg::Finish { .. } => 5,
            Msg::Bye => 6,
        }
    }

    /// Human/metrics name of this message's tag.
    pub fn tag_name(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "hello",
            Msg::Welcome { .. } => "welcome",
            Msg::Assign { .. } => "assign",
            Msg::Update { .. } => "update",
            Msg::Finish { .. } => "finish",
            Msg::Bye => "bye",
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Hello { client } => put_u64(out, *client),
            Msg::Welcome {
                client,
                seed,
                rounds,
                dim,
                population,
                churn_prob,
                churn_seed,
            } => {
                put_u64(out, *client);
                put_u64(out, *seed);
                put_u32(out, *rounds);
                put_u32(out, *dim);
                put_u32(out, *population);
                put_f32(out, *churn_prob);
                put_u64(out, *churn_seed);
            }
            Msg::Assign {
                round,
                slot,
                attempt,
                model,
            } => {
                put_u32(out, *round);
                put_u32(out, *slot);
                put_u32(out, *attempt);
                put_vec_f32(out, model);
            }
            Msg::Update {
                round,
                slot,
                client,
                weight,
                loss,
                update,
            } => {
                put_u32(out, *round);
                put_u32(out, *slot);
                put_u64(out, *client);
                put_f32(out, *weight);
                put_f32(out, *loss);
                put_vec_f32(out, update);
            }
            Msg::Finish { rounds, checksum } => {
                put_u32(out, *rounds);
                put_u64(out, *checksum);
            }
            Msg::Bye => {}
        }
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Msg, WireError> {
        let mut c = Cursor::new(payload);
        let msg = match tag {
            1 => Msg::Hello {
                client: c.take_u64()?,
            },
            2 => Msg::Welcome {
                client: c.take_u64()?,
                seed: c.take_u64()?,
                rounds: c.take_u32()?,
                dim: c.take_u32()?,
                population: c.take_u32()?,
                churn_prob: c.take_f32()?,
                churn_seed: c.take_u64()?,
            },
            3 => Msg::Assign {
                round: c.take_u32()?,
                slot: c.take_u32()?,
                attempt: c.take_u32()?,
                model: c.take_vec_f32()?,
            },
            4 => Msg::Update {
                round: c.take_u32()?,
                slot: c.take_u32()?,
                client: c.take_u64()?,
                weight: c.take_f32()?,
                loss: c.take_f32()?,
                update: c.take_vec_f32()?,
            },
            5 => Msg::Finish {
                rounds: c.take_u32()?,
                checksum: c.take_u64()?,
            },
            6 => Msg::Bye,
            other => return Err(WireError::BadTag(other)),
        };
        let left = c.remaining();
        if left > 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(msg)
    }

    /// Encodes this message into a complete frame (header + payload +
    /// checksum), ready to write to a socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD_BYTES + payload.len());
        frame.push(PROTO_VERSION);
        frame.push(self.tag());
        // Payload length is bounded by message construction well below
        // u32::MAX; the cast cannot truncate in practice, and the decoder
        // enforces MAX_PAYLOAD_BYTES regardless.
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        let checksum = fnv1a(&frame);
        put_u64(&mut frame, checksum);
        frame
    }

    /// Decodes one frame from the front of `buf`, returning the message and
    /// the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Any malformed input — truncation, wrong version, unknown tag,
    /// oversize length, checksum mismatch, trailing payload bytes —
    /// returns the matching [`WireError`]; this function never panics.
    pub fn decode(buf: &[u8]) -> Result<(Msg, usize), WireError> {
        let header = buf.get(..6).ok_or(WireError::Truncated {
            needed: 6,
            got: buf.len(),
        })?;
        let mut h = Cursor::new(header);
        let version = h.take_u8()?;
        if version != PROTO_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let tag = h.take_u8()?;
        let len = h.take_u32()?;
        if len > MAX_PAYLOAD_BYTES {
            return Err(WireError::Oversize(len));
        }
        let total = 6 + len as usize + 8;
        let frame = buf.get(..total).ok_or(WireError::Truncated {
            needed: total,
            got: buf.len(),
        })?;
        let (body, sum_bytes) = frame.split_at(6 + len as usize);
        let mut s = Cursor::new(sum_bytes);
        let got = s.take_u64()?;
        let expected = fnv1a(body);
        if got != expected {
            return Err(WireError::BadChecksum { expected, got });
        }
        let payload = body.get(6..).unwrap_or(&[]);
        let msg = Msg::decode_payload(tag, payload)?;
        Ok((msg, total))
    }

    /// Writes this message as one frame to `w` and returns the frame size.
    /// Records `calibre_net_frames_sent_total` / `calibre_net_bytes_sent_total`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the write fails.
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<usize, WireError> {
        let frame = self.encode();
        w.write_all(&frame)?;
        w.flush()?;
        metrics::counter_add(
            "calibre_net_frames_sent_total",
            &[("tag", self.tag_name())],
            1,
        );
        metrics::counter_add("calibre_net_bytes_sent_total", &[], frame.len() as u64);
        Ok(frame.len())
    }

    /// Reads exactly one frame from `r`.
    ///
    /// Respects the stream's read timeout: an idle timeout surfaces as a
    /// [`WireError::Io`] for which [`WireError::is_timeout`] is true.
    /// Records receive/error metrics.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on read failures; the decode errors of
    /// [`Msg::decode`] on malformed frames.
    pub fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Msg, WireError> {
        match Self::read_from_inner(r) {
            Ok((msg, bytes)) => {
                metrics::counter_add(
                    "calibre_net_frames_received_total",
                    &[("tag", msg.tag_name())],
                    1,
                );
                metrics::counter_add("calibre_net_bytes_received_total", &[], bytes as u64);
                Ok(msg)
            }
            Err(e) => {
                if !e.is_timeout() {
                    metrics::counter_add(
                        "calibre_net_frame_errors_total",
                        &[("kind", e.kind_tag())],
                        1,
                    );
                }
                Err(e)
            }
        }
    }

    fn read_from_inner<R: Read + ?Sized>(r: &mut R) -> Result<(Msg, usize), WireError> {
        let mut header = [0u8; 6];
        r.read_exact(&mut header)?;
        let mut h = Cursor::new(&header);
        let version = h.take_u8()?;
        if version != PROTO_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let tag = h.take_u8()?;
        let len = h.take_u32()?;
        if len > MAX_PAYLOAD_BYTES {
            return Err(WireError::Oversize(len));
        }
        let mut rest = vec![0u8; len as usize + 8];
        r.read_exact(&mut rest)?;
        let (payload, sum_bytes) = rest.split_at(len as usize);
        let mut expected = fnv1a(&header);
        for &b in payload {
            expected ^= u64::from(b);
            expected = expected.wrapping_mul(FNV_PRIME);
        }
        let mut s = Cursor::new(sum_bytes);
        let got = s.take_u64()?;
        if got != expected {
            return Err(WireError::BadChecksum { expected, got });
        }
        let msg = Msg::decode_payload(tag, payload)?;
        Ok((msg, 6 + rest.len()))
    }
}

// ---------------------------------------------------------------------------
// Little-endian primitives.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_vec_f32(out: &mut Vec<u8>, v: &[f32]) {
    // Length bounded by MAX_PAYLOAD_BYTES / 4 on decode; encode mirrors it.
    put_u32(out, v.len() as u32);
    for x in v {
        put_f32(out, *x);
    }
}

/// A bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: self.remaining(),
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or(WireError::Truncated { needed: 1, got: 0 })
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn take_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    fn take_vec_f32(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.take_u32()? as usize;
        // Each element needs 4 payload bytes; an absurd count is caught
        // here before any allocation.
        if n > self.remaining() / 4 {
            return Err(WireError::Truncated {
                needed: n.saturating_mul(4),
                got: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello { client: 3 },
            Msg::Welcome {
                client: 3,
                seed: 0xDEAD_BEEF,
                rounds: 12,
                dim: 64,
                population: 8,
                churn_prob: 0.25,
                churn_seed: 99,
            },
            Msg::Assign {
                round: 2,
                slot: 1,
                attempt: 0,
                model: vec![1.0, -2.5, f32::MIN_POSITIVE, 3.25e-7],
            },
            Msg::Update {
                round: 2,
                slot: 1,
                client: 3,
                weight: 4.0,
                loss: 0.125,
                update: vec![0.5; 17],
            },
            Msg::Finish {
                rounds: 12,
                checksum: 0x0123_4567_89AB_CDEF,
            },
            Msg::Bye,
        ]
    }

    #[test]
    fn every_message_roundtrips_bit_exactly() {
        for msg in sample_msgs() {
            let frame = msg.encode();
            let (decoded, consumed) = Msg::decode(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn streams_of_frames_roundtrip_through_read_write() {
        let mut buf = Vec::new();
        for msg in sample_msgs() {
            msg.write_to(&mut buf).unwrap();
        }
        let mut r = std::io::Cursor::new(buf);
        for msg in sample_msgs() {
            assert_eq!(Msg::read_from(&mut r).unwrap(), msg);
        }
    }

    #[test]
    fn model_vectors_survive_bit_identically() {
        let model = vec![f32::NAN, -0.0, 1.0 + f32::EPSILON, 1e-40];
        let frame = Msg::Assign {
            round: 0,
            slot: 0,
            attempt: 0,
            model: model.clone(),
        }
        .encode();
        let (decoded, _) = Msg::decode(&frame).unwrap();
        match decoded {
            Msg::Assign { model: got, .. } => {
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&got), bits(&model));
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn every_truncation_of_a_valid_frame_is_a_typed_error() {
        let frame = sample_msgs()
            .into_iter()
            .nth(2)
            .map(|m| m.encode())
            .unwrap();
        for cut in 0..frame.len() {
            let err = Msg::decode(frame.get(..cut).unwrap_or(&[])).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn any_single_flipped_bit_is_detected() {
        let frame = Msg::Finish {
            rounds: 3,
            checksum: 42,
        }
        .encode();
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            if let Some(b) = bad.get_mut(byte) {
                *b ^= 0x10;
            }
            assert!(Msg::decode(&bad).is_err(), "flip at byte {byte} undetected");
        }
    }

    #[test]
    fn wrong_version_tag_and_oversize_are_typed() {
        let mut frame = Msg::Bye.encode();
        if let Some(b) = frame.first_mut() {
            *b = 9;
        }
        assert!(matches!(Msg::decode(&frame), Err(WireError::BadVersion(9))));

        // A frame with an unknown tag, re-checksummed so only the tag is bad.
        let mut body = vec![PROTO_VERSION, 200, 0, 0, 0, 0];
        let sum = fnv1a(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(Msg::decode(&body), Err(WireError::BadTag(200))));

        let mut huge = vec![PROTO_VERSION, 6];
        huge.extend_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
        assert!(matches!(Msg::decode(&huge), Err(WireError::Oversize(_))));
    }

    #[test]
    fn oversized_element_counts_do_not_allocate() {
        // An Assign payload claiming u32::MAX model elements but carrying
        // none: decode must fail without attempting the allocation.
        let mut payload = Vec::new();
        put_u32(&mut payload, 0); // round
        put_u32(&mut payload, 0); // slot
        put_u32(&mut payload, 0); // attempt
        put_u32(&mut payload, u32::MAX); // claimed element count
        let mut frame = vec![PROTO_VERSION, 3];
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        let sum = fnv1a(&frame);
        put_u64(&mut frame, sum);
        assert!(matches!(
            Msg::decode(&frame),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn model_checksum_matches_bytewise_fnv() {
        let model = vec![0.5f32, -1.25, 3.0];
        let mut bytes = Vec::new();
        for v in &model {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(model_checksum(&model), fnv1a(&bytes));
        assert_ne!(model_checksum(&model), model_checksum(&[0.5, -1.25]));
    }
}
