//! pFL-SSL: the paper's preliminary design (§III-B) — train the global
//! encoder with *any* self-supervised method in the federated training
//! stage, then personalize with a linear probe.
//!
//! "One only needs to change the SSL method in the training stage to obtain
//! a new approach. For example, one can directly implement pFL-BYOL,
//! pFL-SimCLR, pFL-SimSiam, and pFL-MoCoV2." This module is exactly that
//! factory, and it is also the chassis Calibre builds on (the `calibre`
//! crate swaps in a calibrated local update and a divergence-aware
//! aggregation).

use crate::aggregate::{sample_count_weights, StreamingWeightedSink};
use crate::baselines::{client_round_seed, BaselineResult};
use crate::checkpoint::{self, CheckpointStore, TrainerCheckpoint};
use crate::comm::CommReport;
use crate::config::FlConfig;
use crate::personalize::personalize_cohort_observed;
use crate::resilient::ClientOutcome;
use crate::scheduler::{RoundContext, RoundScheduler};
use crate::transport::StreamUpdate;
use calibre_data::batch::batches;
use calibre_data::{AugmentConfig, ClientData, SynthVision};
use calibre_ssl::{create_method, ssl_step_in, SslKind, SslMethod, TwoViewBatch};
use calibre_telemetry::{ClientLosses, NullRecorder, Recorder};
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::pool::report_arena_stats;
use calibre_tensor::{rng, StepArena};
use rand::Rng;

/// Runs `epochs` of two-view SSL training over a client's SSL pool
/// (labeled + unlabeled samples, labels unused). Returns the mean loss of
/// the final epoch.
///
/// Batches with fewer than 2 samples are skipped (contrastive losses need a
/// negative).
#[allow(clippy::too_many_arguments)] // mirrors the paper's local-update signature
pub fn ssl_local_update<R: Rng + ?Sized>(
    method: &mut dyn SslMethod,
    data: &ClientData,
    generator: &SynthVision,
    aug: &AugmentConfig,
    epochs: usize,
    batch_size: usize,
    opt: &mut Sgd,
    rng_: &mut R,
) -> f32 {
    let pool = data.ssl_pool();
    if pool.len() < 2 {
        return 0.0;
    }
    let mut last_epoch_loss = 0.0;
    let mut arena = StepArena::new();
    for _ in 0..epochs {
        let mut epoch_loss = 0.0;
        let mut seen = 0;
        for batch in batches(pool.len(), batch_size, true, rng_) {
            let samples = batch.iter().map(|&i| pool[i]);
            let (view_e, view_o) = generator.render_two_views(samples, aug, rng_);
            epoch_loss += ssl_step_in(
                method,
                &TwoViewBatch::new(&view_e, &view_o),
                opt,
                &mut arena,
            );
            seen += 1;
        }
        last_epoch_loss = epoch_loss / seen.max(1) as f32;
    }
    report_arena_stats(&arena);
    last_epoch_loss
}

/// Observer invoked after every aggregation with `(round, global_encoder)`.
pub type RoundObserver<'a> = &'a mut dyn FnMut(usize, &calibre_tensor::nn::Mlp);

/// Trains a global encoder with federated SSL (the pFL-SSL training stage)
/// and returns it with the round-loss history.
pub fn train_pfl_ssl_encoder(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
) -> (calibre_tensor::nn::Mlp, Vec<f32>) {
    train_pfl_ssl_encoder_with(fed, cfg, kind, aug, None)
}

/// Like [`train_pfl_ssl_encoder`], with an optional observer invoked after
/// every aggregation with `(round, global_encoder)`.
pub fn train_pfl_ssl_encoder_with(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
    round_observer: Option<RoundObserver<'_>>,
) -> (calibre_tensor::nn::Mlp, Vec<f32>) {
    train_pfl_ssl_encoder_observed(fed, cfg, kind, aug, round_observer, &NullRecorder)
}

/// Like [`train_pfl_ssl_encoder_with`], additionally reporting the round
/// lifecycle to a telemetry [`Recorder`].
///
/// Per round the recorder sees: `round_start` with the selection, one
/// `client_update` per accepted client carrying the wall-clock time measured
/// inside the worker thread that ran the update (via the resilient executor,
/// [`crate::resilient::run_round_resilient`]) and the final local loss, an
/// `aggregate` event, and a `round_end` event with the per-client
/// wall-clock/loss vectors plus planned vs observed communication bytes.
/// Under active chaos ([`FlConfig::chaos`]) additional `fault` and
/// `round_resilience` events surface injected faults; nominal rounds emit
/// the exact legacy event sequence.
pub fn train_pfl_ssl_encoder_observed(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
    round_observer: Option<RoundObserver<'_>>,
    recorder: &dyn Recorder,
) -> (calibre_tensor::nn::Mlp, Vec<f32>) {
    train_pfl_ssl_encoder_resumable(fed, cfg, kind, aug, round_observer, recorder, None)
}

/// Creates a client's SSL method with its deterministic per-client seed.
fn fresh_method(cfg: &FlConfig, kind: SslKind, id: usize) -> Box<dyn SslMethod> {
    create_method(kind, cfg.ssl.clone().with_seed(cfg.seed ^ (id as u64) << 8))
}

/// Restores per-client SSL state and the global encoder from a
/// [`TrainerCheckpoint`], returning the round to resume from. Any client
/// entry that fails shape checks is dropped (it will be recreated fresh).
fn restore_from_checkpoint(
    ckpt: &TrainerCheckpoint,
    cfg: &FlConfig,
    kind: SslKind,
    global_encoder: &mut calibre_tensor::nn::Mlp,
    states: &mut [Option<Box<dyn SslMethod>>],
    round_losses: &mut Vec<f32>,
    total_rounds: usize,
) -> usize {
    if checkpoint::restore(global_encoder, &ckpt.global).is_err() {
        return 0;
    }
    for (id, tensors) in &ckpt.clients {
        if *id >= states.len() {
            continue;
        }
        let mut method = fresh_method(cfg, kind, *id);
        if checkpoint::restore(method.as_mut(), tensors).is_ok() {
            states[*id] = Some(method);
        }
    }
    let start = ckpt.round.min(total_rounds);
    *round_losses = ckpt.round_losses.clone();
    round_losses.truncate(start);
    start
}

/// Like [`train_pfl_ssl_encoder_observed`], with runtime fault handling and
/// optional crash-safe resume.
///
/// The round loop runs through [`RoundScheduler::run_round`]: faults from
/// `cfg.chaos` are injected per `(round, client, attempt)`, panicked
/// clients are retried per `cfg.policy`, non-finite updates are rejected,
/// and rounds missing the minimum quorum are skipped (the skipped round
/// repeats the previous mean loss so histories stay finite). With an
/// inactive chaos plan and the default policy this is bit-identical to the
/// nominal training path.
///
/// When `store` is given, a [`TrainerCheckpoint`] is written after every
/// round (atomic write + previous-generation rotation), and training
/// resumes from the newest loadable checkpoint — continuing bit-identically
/// for parameter-backed SSL methods like SimCLR, because client selection,
/// per-round RNGs, and optimizers are all re-derived from `cfg.seed`.
/// Methods with non-parameter state (BYOL/MoCo EMA targets, queues) resume
/// with that auxiliary state rebuilt fresh. Checkpoint write failures are
/// ignored (training continues; the previous generation stays loadable).
#[allow(clippy::too_many_arguments)] // superset of the observed signature
pub fn train_pfl_ssl_encoder_resumable(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
    mut round_observer: Option<RoundObserver<'_>>,
    recorder: &dyn Recorder,
    store: Option<&CheckpointStore>,
) -> (calibre_tensor::nn::Mlp, Vec<f32>) {
    // The global encoder starts from the seed-0 reference model.
    let reference = create_method(kind, cfg.ssl.clone());
    let mut global_encoder = reference.encoder().clone();

    // Lazily-created persistent per-client SSL state (projectors, EMA
    // targets, queues survive across rounds; the encoder is overwritten by
    // the global at the start of every round).
    let mut states: Vec<Option<Box<dyn SslMethod>>> =
        (0..fed.num_clients()).map(|_| None).collect();
    let scheduler = RoundScheduler::from_config(cfg, fed.num_clients());
    let mut round_losses = Vec::with_capacity(scheduler.rounds());

    let start_round = store
        .and_then(|s| s.load_with(TrainerCheckpoint::parse).ok())
        .map(|ckpt| {
            restore_from_checkpoint(
                &ckpt,
                cfg,
                kind,
                &mut global_encoder,
                &mut states,
                &mut round_losses,
                scheduler.rounds(),
            )
        })
        .unwrap_or(0);

    for round in start_round..scheduler.rounds() {
        let selected = scheduler.select(round, None);
        let round_span = calibre_telemetry::span("round");
        round_span.add_items(selected.len() as u64);
        let global_flat = global_encoder.to_flat();

        // Above the streaming threshold (or when forced via
        // `--round-path streaming`) the round folds wave by wave into a
        // constant-memory sink. Per-client SSL state is rebuilt fresh each
        // round on this path — at streaming cohort sizes caching every
        // client's projector is exactly the memory blow-up being avoided.
        if cfg.streaming.use_streaming(selected.len()) {
            recorder.round_start(round, &selected);
            let mut sink = StreamingWeightedSink::new();
            let streamed = scheduler.run_round_streaming_with(
                round,
                &selected,
                cfg.streaming.wave,
                &mut sink,
                |id| {
                    let mut method = fresh_method(cfg, kind, id);
                    method.encoder_mut().load_flat(&global_flat);
                    let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                        cfg.local_lr,
                        cfg.local_momentum,
                    ));
                    let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
                    let data = fed.client(id);
                    let loss = ssl_local_update(
                        method.as_mut(),
                        data,
                        fed.generator(),
                        aug,
                        cfg.local_epochs,
                        cfg.batch_size,
                        &mut opt,
                        &mut r,
                    );
                    StreamUpdate {
                        update: method.encoder().to_flat(),
                        // Raw sample counts: the deferred-normalization sink
                        // divides by the folded weight sum, matching the
                        // collect path's `sample_count_weights` transform.
                        weight: data.ssl_pool().len().max(1) as f32,
                        loss,
                        divergence: 0.0,
                    }
                },
                recorder,
            );
            if let Some(aggregated) = &streamed.aggregated {
                global_encoder.load_flat(aggregated);
            }
            round_losses.push(if streamed.skipped {
                round_losses.last().copied().unwrap_or(0.0)
            } else {
                streamed.mean_loss
            });
            if let Some(observer) = round_observer.as_deref_mut() {
                observer(round, &global_encoder);
            }
            if let Some(store) = store {
                let ckpt = TrainerCheckpoint {
                    round: round + 1,
                    global: global_encoder.parameters().into_iter().cloned().collect(),
                    clients: Vec::new(), // fresh state per round on this path
                    round_losses: round_losses.clone(),
                    reputation: scheduler.reputation(),
                };
                let _ = store.save_text(&ckpt.to_text());
            }
            continue;
        }

        let ctx = RoundContext {
            recorder,
            downlink_params: global_flat.len(),
            // Shape-derived, so computable before the aggregate lands.
            planned_bytes: CommReport::for_module(&global_encoder, 1, selected.len()).total as u64,
            // Skipped round: repeat the last known loss so the history
            // stays finite and plottable.
            fallback_loss: round_losses.last().copied().unwrap_or(0.0),
            fallback_divergence: 0.0,
        };

        let outcome = scheduler.run_round(
            round,
            &selected,
            &ctx,
            |id| {
                states[id]
                    .take()
                    .unwrap_or_else(|| fresh_method(cfg, kind, id))
            },
            |id, mut method: Box<dyn SslMethod>| {
                method.encoder_mut().load_flat(&global_flat);
                let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                    cfg.local_lr,
                    cfg.local_momentum,
                ));
                let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
                let data = fed.client(id);
                let loss = ssl_local_update(
                    method.as_mut(),
                    data,
                    fed.generator(),
                    aug,
                    cfg.local_epochs,
                    cfg.batch_size,
                    &mut opt,
                    &mut r,
                );
                let flat = method.encoder().to_flat();
                let count = data.ssl_pool().len();
                ClientOutcome {
                    state: method,
                    flat,
                    count,
                    payload: loss,
                }
            },
            |accepted| {
                let counts: Vec<usize> = accepted.iter().map(|a| a.count).collect();
                sample_count_weights(&counts)
            },
            |&loss| {
                (
                    ClientLosses {
                        total: loss,
                        ssl: loss,
                        l_n: 0.0,
                        l_p: 0.0,
                    },
                    0.0,
                )
            },
        );

        if let Some(aggregated) = &outcome.round.aggregated {
            global_encoder.load_flat(aggregated);
        }
        for a in outcome.round.accepted {
            states[a.id] = Some(a.state);
        }
        for (id, state) in outcome.round.rejected_states {
            states[id] = Some(state);
        }
        round_losses.push(outcome.mean_loss);
        if let Some(observer) = round_observer.as_deref_mut() {
            observer(round, &global_encoder);
        }
        if let Some(store) = store {
            let ckpt = TrainerCheckpoint {
                round: round + 1,
                global: global_encoder.parameters().into_iter().cloned().collect(),
                clients: states
                    .iter()
                    .enumerate()
                    .filter_map(|(id, s)| {
                        s.as_ref()
                            .map(|m| (id, m.parameters().into_iter().cloned().collect()))
                    })
                    .collect(),
                round_losses: round_losses.clone(),
                reputation: scheduler.reputation(),
            };
            let _ = store.save_text(&ckpt.to_text());
        }
    }
    (global_encoder, round_losses)
}

/// Runs a pFL-SSL method end to end: federated SSL training stage followed
/// by per-client linear-probe personalization.
pub fn run_pfl_ssl(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
) -> BaselineResult {
    run_pfl_ssl_observed(fed, cfg, kind, aug, &NullRecorder)
}

/// Like [`run_pfl_ssl`], reporting both stages to a telemetry [`Recorder`].
pub fn run_pfl_ssl_observed(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
    recorder: &dyn Recorder,
) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let (encoder, round_losses) =
        train_pfl_ssl_encoder_observed(fed, cfg, kind, aug, None, recorder);
    let seen = personalize_cohort_observed(&encoder, fed, num_classes, &cfg.probe, recorder);
    BaselineResult {
        name: format!("pFL-{}", kind.name()),
        seen,
        encoder,
        round_losses,
    }
}

/// Like [`run_pfl_ssl_observed`], checkpointing every round into `store`
/// and resuming from the newest loadable checkpoint — the crash-safe entry
/// point. A killed run restarted with the same config and store continues
/// where it left off (bit-identically for parameter-backed methods like
/// SimCLR).
pub fn run_pfl_ssl_resumable(
    fed: &calibre_data::FederatedDataset,
    cfg: &FlConfig,
    kind: SslKind,
    aug: &AugmentConfig,
    recorder: &dyn Recorder,
    store: &CheckpointStore,
) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let (encoder, round_losses) =
        train_pfl_ssl_encoder_resumable(fed, cfg, kind, aug, None, recorder, Some(store));
    let seen = personalize_cohort_observed(&encoder, fed, num_classes, &cfg.probe, recorder);
    BaselineResult {
        name: format!("pFL-{}", kind.name()),
        seen,
        encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};

    fn tiny_fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 47,
            },
        )
    }

    fn tiny_cfg() -> FlConfig {
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 5;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 1;
        cfg.batch_size = 16;
        cfg
    }

    #[test]
    fn pfl_simclr_trains_and_personalizes() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let result = run_pfl_ssl(&fed, &cfg, SslKind::SimClr, &AugmentConfig::default());
        assert_eq!(result.name, "pFL-SimCLR");
        assert_eq!(result.seen.accuracies.len(), 4);
        // 2-way personalization on any non-degenerate representation beats
        // coin flipping.
        assert!(
            result.stats().mean > 0.5,
            "pFL-SimCLR accuracy {:?}",
            result.stats()
        );
        assert!(result.round_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn ssl_local_update_skips_degenerate_pools() {
        let fed = tiny_fed();
        let mut method = create_method(SslKind::SimClr, cfg_for_test());
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let mut r = rng::seeded(0);
        let empty = ClientData::default();
        let loss = ssl_local_update(
            method.as_mut(),
            &empty,
            fed.generator(),
            &AugmentConfig::default(),
            1,
            16,
            &mut opt,
            &mut r,
        );
        assert_eq!(loss, 0.0);
    }

    fn cfg_for_test() -> calibre_ssl::SslConfig {
        calibre_ssl::SslConfig::for_input(64)
    }

    #[test]
    fn forced_streaming_path_trains_deterministically() {
        let fed = tiny_fed();
        let mut cfg = tiny_cfg();
        cfg.streaming.path = crate::config::RoundPath::Streaming;
        cfg.streaming.wave = 2;
        let aug = AugmentConfig::default();
        let (a, losses_a) = train_pfl_ssl_encoder(&fed, &cfg, SslKind::SimClr, &aug);
        let (b, losses_b) = train_pfl_ssl_encoder(&fed, &cfg, SslKind::SimClr, &aug);
        assert_eq!(a.to_flat(), b.to_flat(), "streaming path must replay");
        assert_eq!(losses_a, losses_b);
        assert!(losses_a.iter().all(|l| l.is_finite()));

        // The paths aggregate the same statistic but cache state
        // differently, so they train — both produce finite, non-degenerate
        // encoders — without being bit-coupled.
        let collect = FlConfig {
            streaming: crate::config::StreamingConfig {
                path: crate::config::RoundPath::Collect,
                ..cfg.streaming
            },
            ..cfg
        };
        let (c, _) = train_pfl_ssl_encoder(&fed, &collect, SslKind::SimClr, &aug);
        assert!(c.to_flat().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encoder_training_is_deterministic() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let aug = AugmentConfig::default();
        let (a, _) = train_pfl_ssl_encoder(&fed, &cfg, SslKind::SimClr, &aug);
        let (b, _) = train_pfl_ssl_encoder(&fed, &cfg, SslKind::SimClr, &aug);
        assert_eq!(a.to_flat(), b.to_flat());
    }
}
