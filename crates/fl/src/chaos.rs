//! Deterministic fault injection for federated rounds.
//!
//! Cross-device federated learning (SSFL, He et al.) is a best-effort
//! regime: per round, some clients drop out, some straggle, some crash
//! mid-update, and some return garbage. This module simulates all four
//! fault classes **deterministically**: every decision is a pure function of
//! `(plan seed, run seed, round, client, attempt)`, so any failure a test or
//! a chaos run observes can be replayed bit-for-bit by re-running with the
//! same seeds.
//!
//! The chaos layer only *decides and applies* faults. Surviving them is the
//! resilient round executor's job ([`crate::resilient`]): bounded retries,
//! update validation, minimum-quorum partial aggregation, and crash-safe
//! checkpoints.
//!
//! # Spec strings
//!
//! Bench binaries accept `--chaos <spec>` where `<spec>` is a comma list of
//! `key=value` pairs, e.g. `drop=0.3,corrupt=0.1,panic=0.05,straggle=0.2`:
//!
//! | key           | meaning                                   | default |
//! |---------------|-------------------------------------------|---------|
//! | `drop`        | per-client dropout probability            | 0       |
//! | `straggle`    | per-client straggler probability          | 0       |
//! | `straggle-ms` | straggler delay in milliseconds           | 10      |
//! | `panic`       | per-client mid-update panic probability   | 0       |
//! | `corrupt`     | per-client update-corruption probability  | 0       |
//! | `seed`        | chaos seed (mixed with the run seed)      | 0       |
//!
//! The transport layer (DESIGN.md §13) adds *wire* faults under `net-`
//! prefixed keys, parsed from the same spec string by
//! [`parse_combined_spec`]:
//!
//! | key             | meaning                                         | default |
//! |-----------------|-------------------------------------------------|---------|
//! | `net-drop`      | per-frame server→client drop probability        | 0       |
//! | `net-delay`     | per-frame delay probability                     | 0       |
//! | `net-delay-ms`  | injected frame delay in milliseconds            | 5       |
//! | `net-truncate`  | per-frame truncate-and-reset probability        | 0       |
//! | `net-partition` | per-(round, client) partition probability       | 0       |
//! | `net-churn`     | per-round client reconnect-churn probability    | 0       |
//! | `net-seed`      | wire chaos seed (mixed with the run seed)       | 0       |

use calibre_tensor::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The ways an injected corruption can mangle a client's update vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Poisons a slice of coordinates with NaN (detectable by validation).
    NaN,
    /// Poisons a slice of coordinates with ±∞ (detectable by validation).
    Inf,
    /// Scales the whole update by a large factor (finite, so it slips past
    /// validation; norm clipping or robust aggregation must absorb it).
    NormBlowup,
    /// Negates the whole update (finite and norm-preserving; only robust
    /// aggregators can absorb it).
    SignFlip,
}

impl Corruption {
    /// Telemetry tag for this corruption kind.
    pub fn kind_tag(self) -> &'static str {
        match self {
            Corruption::NaN => "corrupt_nan",
            Corruption::Inf => "corrupt_inf",
            Corruption::NormBlowup => "corrupt_norm",
            Corruption::SignFlip => "corrupt_sign",
        }
    }
}

/// One fault assigned to one `(round, client, attempt)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// The client never responds this attempt (no compute happens).
    Dropout,
    /// The client completes, but only after an artificial delay.
    Straggle {
        /// Injected delay in milliseconds, slept inside the worker thread.
        delay_ms: u64,
    },
    /// The client's worker panics partway through its local update.
    PanicMidUpdate,
    /// The client completes but its reported update is corrupted.
    Corrupt(Corruption),
}

impl ClientFault {
    /// Telemetry tag for this fault.
    pub fn kind_tag(self) -> &'static str {
        match self {
            ClientFault::Dropout => "dropout",
            ClientFault::Straggle { .. } => "straggle",
            ClientFault::PanicMidUpdate => "panic",
            ClientFault::Corrupt(c) => c.kind_tag(),
        }
    }
}

/// Per-round, per-client fault probabilities for a chaos run.
///
/// The default plan is inactive (all probabilities zero); training behaves
/// exactly as if the chaos layer did not exist, which is what the golden
/// bit-identity tests pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a selected client drops out of an attempt.
    pub drop_prob: f32,
    /// Probability a client straggles (completes after `straggle_ms`).
    pub straggle_prob: f32,
    /// Injected straggler delay, milliseconds.
    pub straggle_ms: u64,
    /// Probability a client's worker panics mid-update.
    pub panic_prob: f32,
    /// Probability a client's reported update is corrupted.
    pub corrupt_prob: f32,
    /// Chaos seed, mixed with the run seed by [`FaultInjector::for_run`].
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            straggle_prob: 0.0,
            straggle_ms: 10,
            panic_prob: 0.0,
            corrupt_prob: 0.0,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// Whether any fault has a nonzero probability. An inactive plan means
    /// the round loop takes the exact nominal path.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.straggle_prob > 0.0
            || self.panic_prob > 0.0
            || self.corrupt_prob > 0.0
    }

    /// Parses a `--chaos` spec string (see the module docs for the table).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pair on unknown keys,
    /// malformed numbers, or probabilities outside `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use calibre_fl::chaos::FaultPlan;
    ///
    /// let plan = FaultPlan::parse("drop=0.3,corrupt=0.1,seed=7").unwrap();
    /// assert_eq!(plan.drop_prob, 0.3);
    /// assert_eq!(plan.corrupt_prob, 0.1);
    /// assert_eq!(plan.seed, 7);
    /// assert!(plan.is_active());
    /// assert!(FaultPlan::parse("drop=1.5").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: expected key=value, got {pair:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f32, String> {
                let p: f32 = v
                    .parse()
                    .map_err(|_| format!("chaos spec: bad number {v:?} for {key}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos spec: {key}={p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "drop" => plan.drop_prob = prob(value)?,
                "straggle" => plan.straggle_prob = prob(value)?,
                "panic" => plan.panic_prob = prob(value)?,
                "corrupt" => plan.corrupt_prob = prob(value)?,
                "straggle-ms" => {
                    plan.straggle_ms = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad straggle-ms {value:?}"))?
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad seed {value:?}"))?
                }
                other => return Err(format!("chaos spec: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Seeded fault oracle: maps `(round, client, attempt)` to an optional
/// [`ClientFault`], reproducibly.
///
/// Internally each cell gets its own short-lived RNG seeded by mixing the
/// injector seed with the cell coordinates (SplitMix-style odd constants),
/// so decisions are independent across cells and replay identically
/// regardless of scheduling or iteration order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    /// Builds an injector whose decisions depend only on `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        let seed = plan.seed;
        FaultInjector { plan, seed }
    }

    /// Builds an injector for a training run, folding the run seed into the
    /// chaos seed so two runs with different `FlConfig::seed`s see
    /// different (but individually reproducible) fault sequences.
    pub fn for_run(plan: FaultPlan, run_seed: u64) -> Self {
        let seed = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ run_seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        FaultInjector { plan, seed }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn cell_rng(&self, round: usize, client: usize, attempt: usize) -> rand::rngs::StdRng {
        let mixed = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((client as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add((attempt as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        rng::seeded(mixed)
    }

    /// Decides the fault (if any) for one delivery attempt of one client in
    /// one round. Pure: same inputs, same answer, forever.
    ///
    /// The draws are ordered dropout → panic → corruption → straggle, so at
    /// most one fault fires per cell and the earlier (harsher) classes win
    /// ties.
    pub fn decide(&self, round: usize, client: usize, attempt: usize) -> Option<ClientFault> {
        if !self.plan.is_active() {
            return None;
        }
        let mut r = self.cell_rng(round, client, attempt);
        if r.gen::<f32>() < self.plan.drop_prob {
            return Some(ClientFault::Dropout);
        }
        if r.gen::<f32>() < self.plan.panic_prob {
            return Some(ClientFault::PanicMidUpdate);
        }
        if r.gen::<f32>() < self.plan.corrupt_prob {
            let kind = match r.gen_range(0usize..4) {
                0 => Corruption::NaN,
                1 => Corruption::Inf,
                2 => Corruption::NormBlowup,
                _ => Corruption::SignFlip,
            };
            return Some(ClientFault::Corrupt(kind));
        }
        if r.gen::<f32>() < self.plan.straggle_prob {
            return Some(ClientFault::Straggle {
                delay_ms: self.plan.straggle_ms,
            });
        }
        None
    }

    /// Applies a corruption to an update vector in place, deterministically
    /// for the `(round, client, attempt)` cell that decided it.
    pub fn corrupt(
        &self,
        round: usize,
        client: usize,
        attempt: usize,
        kind: Corruption,
        update: &mut [f32],
    ) {
        let mut r = self.cell_rng(round ^ 0x5EED, client, attempt);
        apply_corruption(kind, update, &mut r);
    }
}

/// Mangles `update` in place according to `kind`.
///
/// NaN/Inf poison roughly one in eight coordinates (at least one) so the
/// corruption survives any later averaging; blow-up scales by 10⁶; sign flip
/// negates everything.
pub fn apply_corruption<R: Rng + ?Sized>(kind: Corruption, update: &mut [f32], r: &mut R) {
    if update.is_empty() {
        return;
    }
    match kind {
        Corruption::NaN | Corruption::Inf => {
            let poison = if kind == Corruption::NaN {
                f32::NAN
            } else {
                f32::INFINITY
            };
            let stride = 8.min(update.len());
            let offset = r.gen_range(0..stride);
            for slot in update.iter_mut().skip(offset).step_by(stride) {
                *slot = poison;
            }
        }
        Corruption::NormBlowup => {
            for v in update.iter_mut() {
                *v *= 1e6;
            }
        }
        Corruption::SignFlip => {
            for v in update.iter_mut() {
                *v = -*v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wire faults: the transport layer's chaos (DESIGN.md §13).
// ---------------------------------------------------------------------------

/// One fault assigned to one server→client frame delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The frame is silently lost; the receiver sees only a read timeout.
    Drop,
    /// The frame arrives intact, but late.
    Delay {
        /// Injected delay in milliseconds, slept before the send.
        delay_ms: u64,
    },
    /// Only a prefix of the frame is written and the connection is then
    /// reset — the receiver sees a short read / checksum failure and must
    /// reconnect.
    Truncate,
}

impl WireFault {
    /// Telemetry/metrics tag for this wire fault.
    pub fn kind_tag(self) -> &'static str {
        match self {
            WireFault::Drop => "net_drop",
            WireFault::Delay { .. } => "net_delay",
            WireFault::Truncate => "net_truncate",
        }
    }
}

/// Per-frame wire-fault probabilities for a transport chaos run.
///
/// The default plan is inactive: the socket transport behaves exactly like
/// a perfect network, which is what the cross-transport identity test pins
/// for its nominal run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireFaultPlan {
    /// Probability a server→client frame is dropped.
    pub drop_prob: f32,
    /// Probability a frame is delayed by [`WireFaultPlan::delay_ms`].
    pub delay_prob: f32,
    /// Injected frame delay, milliseconds.
    pub delay_ms: u64,
    /// Probability a frame is truncated mid-write and the connection reset.
    pub truncate_prob: f32,
    /// Probability a `(round, client)` pair is partitioned: early delivery
    /// attempts are dropped wholesale until the partition "heals"
    /// (attempt ≥ [`PARTITION_HEAL_ATTEMPT`]).
    pub partition_prob: f32,
    /// Probability a client churns (drops its connection and reconnects)
    /// after reporting each round. Decided client-side from the seed the
    /// server hands out in its `Welcome`.
    pub churn_prob: f32,
    /// Wire chaos seed, mixed with the run seed by [`WireInjector::for_run`].
    pub seed: u64,
}

/// The delivery attempt at which a partitioned `(round, client)` pair heals.
/// Retries up to this attempt see [`WireFault::Drop`]; later attempts go
/// through — so any transport with `max_attempts > PARTITION_HEAL_ATTEMPT`
/// still converges and the identity tests stay deterministic.
pub const PARTITION_HEAL_ATTEMPT: usize = 2;

impl Default for WireFaultPlan {
    fn default() -> Self {
        WireFaultPlan {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 5,
            truncate_prob: 0.0,
            partition_prob: 0.0,
            churn_prob: 0.0,
            seed: 0,
        }
    }
}

impl WireFaultPlan {
    /// Whether any wire fault has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.delay_prob > 0.0
            || self.truncate_prob > 0.0
            || self.partition_prob > 0.0
            || self.churn_prob > 0.0
    }

    /// Parses the `net-` prefixed pairs of a chaos spec (see the module
    /// docs table). Non-`net-` keys are rejected; use
    /// [`parse_combined_spec`] for mixed specs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pair on unknown keys,
    /// malformed numbers, or probabilities outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<WireFaultPlan, String> {
        let mut plan = WireFaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: expected key=value, got {pair:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f32, String> {
                let p: f32 = v
                    .parse()
                    .map_err(|_| format!("chaos spec: bad number {v:?} for {key}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos spec: {key}={p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "net-drop" => plan.drop_prob = prob(value)?,
                "net-delay" => plan.delay_prob = prob(value)?,
                "net-truncate" => plan.truncate_prob = prob(value)?,
                "net-partition" => plan.partition_prob = prob(value)?,
                "net-churn" => plan.churn_prob = prob(value)?,
                "net-delay-ms" => {
                    plan.delay_ms = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad net-delay-ms {value:?}"))?
                }
                "net-seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad net-seed {value:?}"))?
                }
                other => return Err(format!("chaos spec: unknown wire key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Splits one `--chaos` spec into its client-fault and wire-fault halves:
/// `net-` prefixed keys go to [`WireFaultPlan::parse`], everything else to
/// [`FaultPlan::parse`]. This is what the serve binaries use, so one flag
/// configures both layers:
/// `--chaos drop=0.1,net-drop=0.2,net-churn=0.3`.
///
/// # Errors
///
/// Propagates the first parse error from either half.
///
/// # Examples
///
/// ```
/// use calibre_fl::chaos::parse_combined_spec;
///
/// let (clients, wire) = parse_combined_spec("drop=0.1,net-drop=0.2,seed=7").unwrap();
/// assert_eq!(clients.drop_prob, 0.1);
/// assert_eq!(clients.seed, 7);
/// assert_eq!(wire.drop_prob, 0.2);
/// assert!(parse_combined_spec("net-warp=1").is_err());
/// ```
pub fn parse_combined_spec(spec: &str) -> Result<(FaultPlan, WireFaultPlan), String> {
    let mut client_pairs = Vec::new();
    let mut wire_pairs = Vec::new();
    for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
        if pair.trim().starts_with("net-") {
            wire_pairs.push(pair.trim());
        } else {
            client_pairs.push(pair.trim());
        }
    }
    let clients = FaultPlan::parse(&client_pairs.join(","))?;
    let wire = WireFaultPlan::parse(&wire_pairs.join(","))?;
    Ok((clients, wire))
}

/// Seeded wire-fault oracle: maps each frame delivery
/// `(round, client, attempt)` to an optional [`WireFault`], reproducibly —
/// the transport twin of [`FaultInjector`].
///
/// Because decisions are per *attempt*, a fault that kills attempt 0 does
/// not automatically kill attempt 1: bounded retries eventually deliver,
/// so a chaos run that meets quorum still produces the byte-identical
/// final model (recovered faults are invisible to aggregation).
#[derive(Debug, Clone)]
pub struct WireInjector {
    plan: WireFaultPlan,
    seed: u64,
}

impl WireInjector {
    /// Builds an injector whose decisions depend only on `plan.seed`.
    pub fn new(plan: WireFaultPlan) -> Self {
        let seed = plan.seed;
        WireInjector { plan, seed }
    }

    /// Builds an injector for a run, folding the run seed into the wire
    /// chaos seed (distinct mixing constants from [`FaultInjector::for_run`]
    /// so the two layers draw independent fault sequences).
    pub fn for_run(plan: WireFaultPlan, run_seed: u64) -> Self {
        let seed = plan.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93)
            ^ run_seed.wrapping_mul(0xA5A5_B0F8_7D3B_7C95);
        WireInjector { plan, seed }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &WireFaultPlan {
        &self.plan
    }

    /// The fully mixed seed driving this injector's decisions. A server
    /// puts this in its `Welcome` as the churn seed, so clients replay the
    /// same decision stream via [`WireInjector::new`] without re-deriving
    /// the run mixing.
    pub fn mixed_seed(&self) -> u64 {
        self.seed
    }

    fn cell_rng(&self, round: usize, client: usize, attempt: usize) -> rand::rngs::StdRng {
        let mixed = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25))
            .wrapping_add((client as u64).wrapping_mul(0xC6A4_A793_5BD1_E995))
            .wrapping_add((attempt as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
        rng::seeded(mixed)
    }

    /// Whether the `(round, client)` pair is partitioned this round
    /// (attempt-independent, so the partition spans early retries).
    pub fn partitioned(&self, round: usize, client: usize) -> bool {
        if self.plan.partition_prob <= 0.0 {
            return false;
        }
        let mut r = self.cell_rng(round ^ 0x0A17, client, usize::MAX >> 1);
        r.gen::<f32>() < self.plan.partition_prob
    }

    /// Decides the wire fault (if any) for one frame delivery. Pure: same
    /// inputs, same answer, forever.
    ///
    /// A partition wins over per-frame draws and drops every attempt below
    /// [`PARTITION_HEAL_ATTEMPT`]; after healing, and otherwise, the draws
    /// are ordered drop → truncate → delay.
    pub fn decide(&self, round: usize, client: usize, attempt: usize) -> Option<WireFault> {
        if !self.plan.is_active() {
            return None;
        }
        if attempt < PARTITION_HEAL_ATTEMPT && self.partitioned(round, client) {
            return Some(WireFault::Drop);
        }
        let mut r = self.cell_rng(round, client, attempt);
        if r.gen::<f32>() < self.plan.drop_prob {
            return Some(WireFault::Drop);
        }
        if r.gen::<f32>() < self.plan.truncate_prob {
            return Some(WireFault::Truncate);
        }
        if r.gen::<f32>() < self.plan.delay_prob {
            return Some(WireFault::Delay {
                delay_ms: self.plan.delay_ms,
            });
        }
        None
    }

    /// Client-side churn decision: whether the client should drop and
    /// re-establish its connection after reporting `round`. Computed from
    /// the seed carried in the server's `Welcome`, so the server never has
    /// to coordinate it.
    pub fn churns(&self, round: usize, client: usize) -> bool {
        if self.plan.churn_prob <= 0.0 {
            return false;
        }
        let mut r = self.cell_rng(round ^ 0xC4A2, client, 0);
        r.gen::<f32>() < self.plan.churn_prob
    }
}

/// Panics with a recognizable message — the injected "client crashed
/// mid-update" fault. Always caught by `parallel_map_resilient`'s
/// `catch_unwind`; never escapes the resilient executor.
pub fn panic_injected(round: usize, client: usize) -> ! {
    // analyze:allow(no-panic) -- this *is* the injected fault: the chaos
    // harness exists to throw this panic at the resilient executor.
    panic!("chaos: injected mid-update panic (round {round}, client {client})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            drop_prob: 0.3,
            straggle_prob: 0.2,
            straggle_ms: 1,
            panic_prob: 0.1,
            corrupt_prob: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn default_plan_is_inactive_and_decides_nothing() {
        let inj = FaultInjector::new(FaultPlan::default());
        for round in 0..10 {
            for client in 0..10 {
                assert_eq!(inj.decide(round, client, 0), None);
            }
        }
    }

    #[test]
    fn decisions_replay_identically_from_the_same_seed() {
        let a = FaultInjector::for_run(busy_plan(), 7);
        let b = FaultInjector::for_run(busy_plan(), 7);
        for round in 0..20 {
            for client in 0..8 {
                for attempt in 0..3 {
                    assert_eq!(
                        a.decide(round, client, attempt),
                        b.decide(round, client, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn different_run_seeds_give_different_fault_sequences() {
        let a = FaultInjector::for_run(busy_plan(), 1);
        let b = FaultInjector::for_run(busy_plan(), 2);
        let seq = |inj: &FaultInjector| -> Vec<Option<ClientFault>> {
            (0..40).map(|i| inj.decide(i / 4, i % 4, 0)).collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn fault_rates_track_the_plan() {
        let inj = FaultInjector::new(busy_plan());
        let mut drops = 0usize;
        let n = 4000;
        for i in 0..n {
            if inj.decide(i, 0, 0) == Some(ClientFault::Dropout) {
                drops += 1;
            }
        }
        let rate = drops as f32 / n as f32;
        assert!((rate - 0.3).abs() < 0.05, "dropout rate {rate}");
    }

    #[test]
    fn all_fault_kinds_eventually_fire() {
        let inj = FaultInjector::new(busy_plan());
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2000 {
            if let Some(f) = inj.decide(i, i % 5, 0) {
                seen.insert(f.kind_tag());
            }
        }
        for tag in [
            "dropout",
            "straggle",
            "panic",
            "corrupt_nan",
            "corrupt_inf",
            "corrupt_norm",
            "corrupt_sign",
        ] {
            assert!(seen.contains(tag), "never saw {tag}: {seen:?}");
        }
    }

    #[test]
    fn spec_parsing_roundtrips_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("drop=0.25,straggle=0.1,straggle-ms=25,panic=0.05,corrupt=0.2,seed=9")
                .unwrap();
        assert_eq!(plan.drop_prob, 0.25);
        assert_eq!(plan.straggle_prob, 0.1);
        assert_eq!(plan.straggle_ms, 25);
        assert_eq!(plan.panic_prob, 0.05);
        assert_eq!(plan.corrupt_prob, 0.2);
        assert_eq!(plan.seed, 9);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("warp=0.5").is_err());
        assert!(FaultPlan::parse("panic=2.0").is_err());
        assert!(FaultPlan::parse("straggle-ms=fast").is_err());
    }

    #[test]
    fn nan_and_inf_corruption_is_detectable() {
        let mut r = rng::seeded(3);
        for kind in [Corruption::NaN, Corruption::Inf] {
            let mut update = vec![1.0f32; 37];
            apply_corruption(kind, &mut update, &mut r);
            assert!(update.iter().any(|v| !v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn silent_corruptions_stay_finite() {
        let mut r = rng::seeded(4);
        let mut blown = vec![1.0f32, -2.0, 3.0];
        apply_corruption(Corruption::NormBlowup, &mut blown, &mut r);
        assert!(blown.iter().all(|v| v.is_finite()));
        assert!(blown[0] > 1e5);
        let mut flipped = vec![1.0f32, -2.0];
        apply_corruption(Corruption::SignFlip, &mut flipped, &mut r);
        assert_eq!(flipped, vec![-1.0, 2.0]);
    }

    fn busy_wire_plan() -> WireFaultPlan {
        WireFaultPlan {
            drop_prob: 0.2,
            delay_prob: 0.2,
            delay_ms: 1,
            truncate_prob: 0.1,
            partition_prob: 0.1,
            churn_prob: 0.2,
            seed: 5,
        }
    }

    #[test]
    fn wire_spec_parsing_roundtrips_and_rejects_garbage() {
        let plan = WireFaultPlan::parse(
            "net-drop=0.2,net-delay=0.1,net-delay-ms=3,net-truncate=0.05,\
             net-partition=0.1,net-churn=0.25,net-seed=11",
        )
        .unwrap();
        assert_eq!(plan.drop_prob, 0.2);
        assert_eq!(plan.delay_prob, 0.1);
        assert_eq!(plan.delay_ms, 3);
        assert_eq!(plan.truncate_prob, 0.05);
        assert_eq!(plan.partition_prob, 0.1);
        assert_eq!(plan.churn_prob, 0.25);
        assert_eq!(plan.seed, 11);
        assert!(plan.is_active());
        assert_eq!(WireFaultPlan::parse("").unwrap(), WireFaultPlan::default());
        assert!(WireFaultPlan::parse("net-drop=1.5").is_err());
        assert!(WireFaultPlan::parse("drop=0.5").is_err());
        assert!(WireFaultPlan::parse("net-warp=0.5").is_err());
    }

    #[test]
    fn combined_spec_splits_by_prefix() {
        let (clients, wire) =
            parse_combined_spec("drop=0.3,net-drop=0.2,seed=7,net-seed=9,net-churn=0.1").unwrap();
        assert_eq!(clients.drop_prob, 0.3);
        assert_eq!(clients.seed, 7);
        assert_eq!(wire.drop_prob, 0.2);
        assert_eq!(wire.seed, 9);
        assert_eq!(wire.churn_prob, 0.1);
        assert!(parse_combined_spec("warp=1").is_err());
        assert!(parse_combined_spec("net-warp=1").is_err());
    }

    #[test]
    fn wire_decisions_replay_identically_from_the_same_seed() {
        let a = WireInjector::for_run(busy_wire_plan(), 7);
        let b = WireInjector::for_run(busy_wire_plan(), 7);
        for round in 0..20 {
            for client in 0..8 {
                for attempt in 0..4 {
                    assert_eq!(
                        a.decide(round, client, attempt),
                        b.decide(round, client, attempt)
                    );
                    assert_eq!(a.churns(round, client), b.churns(round, client));
                }
            }
        }
        let c = WireInjector::for_run(busy_wire_plan(), 8);
        let seq = |inj: &WireInjector| -> Vec<Option<WireFault>> {
            (0..60).map(|i| inj.decide(i / 4, i % 4, 0)).collect()
        };
        assert_ne!(seq(&a), seq(&c), "different run seeds differ");
    }

    #[test]
    fn partitions_heal_after_the_documented_attempt() {
        let inj = WireInjector::new(WireFaultPlan {
            partition_prob: 1.0,
            ..WireFaultPlan::default()
        });
        for attempt in 0..PARTITION_HEAL_ATTEMPT {
            assert_eq!(inj.decide(0, 0, attempt), Some(WireFault::Drop));
        }
        assert_eq!(inj.decide(0, 0, PARTITION_HEAL_ATTEMPT), None);
    }

    #[test]
    fn every_wire_fault_kind_eventually_fires_and_retries_recover() {
        let inj = WireInjector::new(busy_wire_plan());
        let mut seen = std::collections::BTreeSet::new();
        let mut recovered = 0usize;
        for round in 0..200 {
            for client in 0..4 {
                let mut delivered = false;
                for attempt in 0..6 {
                    match inj.decide(round, client, attempt) {
                        // A delayed frame still arrives; only drops and
                        // truncations force a retry.
                        None | Some(WireFault::Delay { .. }) => {
                            if let Some(f) = inj.decide(round, client, attempt) {
                                seen.insert(f.kind_tag());
                            }
                            delivered = true;
                            break;
                        }
                        Some(f) => {
                            seen.insert(f.kind_tag());
                        }
                    }
                }
                if delivered {
                    recovered += 1;
                }
            }
        }
        for tag in ["net_drop", "net_delay", "net_truncate"] {
            assert!(seen.contains(tag), "never saw {tag}: {seen:?}");
        }
        assert!(
            recovered >= 790,
            "6 attempts recover essentially every frame at these rates, got {recovered}/800"
        );
    }

    #[test]
    fn inactive_wire_plan_decides_nothing() {
        let inj = WireInjector::new(WireFaultPlan::default());
        for round in 0..10 {
            for client in 0..10 {
                assert_eq!(inj.decide(round, client, 0), None);
                assert!(!inj.churns(round, client));
                assert!(!inj.partitioned(round, client));
            }
        }
    }

    #[test]
    fn corruption_application_is_deterministic() {
        let inj = FaultInjector::new(busy_plan());
        let mut a = vec![1.0f32; 64];
        let mut b = vec![1.0f32; 64];
        inj.corrupt(3, 2, 0, Corruption::NaN, &mut a);
        inj.corrupt(3, 2, 0, Corruption::NaN, &mut b);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
